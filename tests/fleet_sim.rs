//! Repo-level integration tests for the fleet subsystem, driven through
//! the `lens` facade: the determinism contract, the contention axis, and
//! the dynamic-vs-fixed policy ordering at (small) population scale.

use lens::prelude::*;

fn congested(population: usize, policy: FleetPolicy, metric: Metric, shards: usize) -> FleetReport {
    let scenario = FleetScenario::builder()
        .population(population)
        .horizon(Millis::new(1_200_000.0)) // 20 minutes
        .trace_interval(Millis::new(60_000.0))
        .cloud(CloudCapacity::new(2, 250.0)) // 480 inferences/min drain
        .policy(policy)
        .metric(metric)
        .seed(7)
        .shards(shards)
        .build()
        .expect("valid scenario");
    FleetEngine::new(scenario)
        .expect("engine builds")
        .run()
        .expect("run succeeds")
}

#[test]
fn reports_are_reproducible_bit_for_bit() {
    let a = congested(1500, FleetPolicy::Dynamic, Metric::Energy, 3);
    let b = congested(1500, FleetPolicy::Dynamic, Metric::Energy, 3);
    assert_eq!(a, b);
    assert_eq!(a.digest(), b.digest());
    // 1500 devices x 20 one-minute periods.
    assert_eq!(a.inferences(), 30_000);
}

#[test]
fn integer_aggregates_are_shard_count_invariant() {
    let a = congested(1500, FleetPolicy::Dynamic, Metric::Energy, 1);
    let b = congested(1500, FleetPolicy::Dynamic, Metric::Energy, 5);
    assert_eq!(a.inferences(), b.inferences());
    assert_eq!(a.offloaded(), b.offloaded());
    assert_eq!(a.switches(), b.switches());
    assert_eq!(a.latency().percentile(50.0), b.latency().percentile(50.0));
    assert_eq!(a.energy().percentile(99.0), b.energy().percentile(99.0));
}

/// A congested batched multi-backend scenario with deadline admission and
/// sibling failover — every serving-tier feature at once.
fn batched_scenario(shards: usize) -> FleetScenario {
    batched_scenario_at(shards, CloudSimFidelity::Fluid)
}

fn batched_scenario_at(shards: usize, fidelity: CloudSimFidelity) -> FleetScenario {
    // Per-region peak drain ≈ 987 jobs/min (gpu 827 + cpu 160) against an
    // eager energy-dynamic fleet whose busiest regions offload well above
    // that — so backlogs build, batches close full, and the deadline
    // controller sheds into failover and local fallback.
    let serving = CloudServing::new(vec![
        BackendConfig::new("gpu", 1, 2000.0, 10.0).with_batching(32, 500.0),
        BackendConfig::new("cpu", 1, 500.0, 250.0).with_batching(4, 250.0),
    ])
    .with_priority(0.2)
    .with_admission(AdmissionPolicy::Deadline {
        max_wait_ms: 10_000.0,
    })
    .with_failover(FailoverPolicy::SiblingRegion { penalty_ms: 80.0 });
    FleetScenario::builder()
        .population(6000)
        .horizon(Millis::new(1_200_000.0)) // 20 minutes
        .trace_interval(Millis::new(60_000.0))
        .serving(serving)
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Energy)
        .seed(23)
        .shards(shards)
        .fidelity(fidelity)
        .build()
        .expect("valid scenario")
}

#[test]
fn batched_multi_backend_report_is_bit_identical_across_1_2_4_shards() {
    // Stronger than the headline contract (which fixes the shard count):
    // integer event counts plus fixed-point value sums make the merged
    // report independent of how the population is sharded.
    let one = FleetEngine::new(batched_scenario(1))
        .expect("engine builds")
        .run()
        .expect("run succeeds");
    for shards in [2, 4] {
        let other = FleetEngine::new(batched_scenario(shards))
            .expect("engine builds")
            .run()
            .expect("run succeeds");
        assert_eq!(one, other, "report differs at {shards} shards");
        assert_eq!(one.digest(), other.digest());
    }
    // And the scenario actually exercises the serving tier: batches close
    // on both backends, and the admission controller sheds under load.
    assert_eq!(one.backends().len(), 6, "3 regions x 2 backends");
    assert!(one.backends().iter().any(|b| b.mean_batch() > 1.5));
    assert!(
        one.shed_to_local() + one.failed_over() > 0,
        "deadline admission should trigger under congestion"
    );
}

#[test]
fn per_request_batched_report_is_bit_identical_across_1_2_4_shards() {
    // Extends the 1/2/4 pinning to the per-request microsimulation: the
    // barrier merges every region's offloads from all shards and sorts
    // them by the shard-count-invariant (arrival µs, device id) key
    // before replaying the epoch, so the cloud schedule — and with it the
    // exact per-request tail histograms — cannot depend on sharding.
    let per_request = |shards: usize| {
        FleetEngine::new(batched_scenario_at(shards, CloudSimFidelity::PerRequest))
            .expect("engine builds")
            .run()
            .expect("run succeeds")
    };
    let one = per_request(1);
    for shards in [2, 4] {
        let other = per_request(shards);
        assert_eq!(one, other, "per-request report differs at {shards} shards");
        assert_eq!(one.digest(), other.digest());
    }
    // The microsim actually served per-request traffic with tails.
    let sojourns: u64 = one.cloud_sojourn().iter().map(|h| h.count()).sum();
    assert_eq!(sojourns, one.offloaded());
    assert!(one.offloaded() > 0);
    for region in 0..one.regions().len() {
        assert!(one.region_tail(region).is_monotone());
    }
    assert!(one.backends().iter().any(|b| b.sojourn_ms.count() > 0));
}

/// A diurnal-ish congested scenario exercising every PR 5 feature at
/// once: priced, autoscaled backends (utilization + queue-depth signals),
/// cost-aware dispatch, deadline admission, and sibling failover.
fn autoscaled_scenario(shards: usize, fidelity: CloudSimFidelity) -> FleetScenario {
    let serving = CloudServing::new(vec![
        BackendConfig::new("gpu", 2, 2000.0, 10.0)
            .with_batching(32, 500.0)
            .with_price(4.0)
            .with_energy(2.0)
            .with_autoscaler(
                Autoscaler::new(ScalingSignal::Utilization, 0.7, 0.25, 1, 8)
                    .with_step(2)
                    .with_cooldown(1),
            ),
        BackendConfig::new("cpu", 2, 500.0, 250.0)
            .with_batching(4, 250.0)
            .with_price(1.0)
            .with_energy(1.0)
            .with_autoscaler(
                Autoscaler::new(ScalingSignal::QueueDepth, 8.0, 0.5, 1, 12).with_alpha(0.6),
            ),
    ])
    .with_priority(0.2)
    .with_dispatch(DispatchPolicy::CostAware)
    .with_admission(AdmissionPolicy::Deadline {
        max_wait_ms: 10_000.0,
    })
    .with_failover(FailoverPolicy::SiblingRegion { penalty_ms: 80.0 });
    FleetScenario::builder()
        .population(6000)
        .horizon(Millis::new(1_200_000.0)) // 20 minutes
        .trace_interval(Millis::new(60_000.0))
        .serving(serving)
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Energy)
        .seed(23)
        .shards(shards)
        .fidelity(fidelity)
        .build()
        .expect("valid scenario")
}

#[test]
fn autoscaled_cost_aware_report_is_bit_identical_across_1_2_4_shards() {
    // The PR 5 extension of the shard-invariance pin: autoscaler state
    // (slot timelines, scaling events) and fixed-point cost totals are
    // barrier-side functions of merged integer demand, so the full report
    // — timelines included — cannot depend on sharding, in either
    // fidelity mode.
    for fidelity in [CloudSimFidelity::Fluid, CloudSimFidelity::PerRequest] {
        let one = FleetEngine::new(autoscaled_scenario(1, fidelity))
            .expect("engine builds")
            .run()
            .expect("run succeeds");
        for shards in [2, 4] {
            let other = FleetEngine::new(autoscaled_scenario(shards, fidelity))
                .expect("engine builds")
                .run()
                .expect("run succeeds");
            assert_eq!(one, other, "{fidelity:?} report differs at {shards} shards");
            assert_eq!(one.digest(), other.digest());
        }
        // The scenario genuinely scales and prices the tier.
        assert!(one.scaling_events() > 0, "{fidelity:?} never scaled");
        assert!(one.provision_cost() > 0.0);
        assert!(one.cloud_energy_mj() > 0.0);
        for b in one.backends() {
            assert_eq!(b.slot_timeline.len(), 20, "one entry per epoch");
        }
        assert!(
            one.backends()
                .iter()
                .any(|b| b.slot_timeline.iter().max() != b.slot_timeline.iter().min()),
            "{fidelity:?}: some slot timeline should move with demand"
        );
    }
}

#[test]
fn flight_recorder_trace_is_bit_identical_across_1_2_4_shards() {
    // The observability extension of the shard-invariance pin: the
    // barrier merges every shard's trace events on the same
    // (time µs, device id) key the microsim uses — a stable sort, so one
    // device's same-key events keep their emission order — which makes
    // the flight-recorder digest and the per-epoch metrics timelines a
    // pure function of the scenario, in either fidelity mode.
    for fidelity in [CloudSimFidelity::Fluid, CloudSimFidelity::PerRequest] {
        let (one_report, one) = FleetEngine::new(batched_scenario_at(1, fidelity))
            .expect("engine builds")
            .run_traced()
            .expect("run succeeds");
        for shards in [2, 4] {
            let (report, telemetry) = FleetEngine::new(batched_scenario_at(shards, fidelity))
                .expect("engine builds")
                .run_traced()
                .expect("run succeeds");
            assert_eq!(one_report.digest(), report.digest());
            assert_eq!(
                one.trace_digest(),
                telemetry.trace_digest(),
                "{fidelity:?} trace differs at {shards} shards"
            );
            assert_eq!(
                one.metrics_digest(),
                telemetry.metrics_digest(),
                "{fidelity:?} metrics timeline differs at {shards} shards"
            );
            // The work profile is merged from per-shard counters, so the
            // totals cannot depend on sharding either.
            assert_eq!(one.profile.total(), telemetry.profile.total());
        }
        // The pin is not vacuous: the congested scenario records real
        // traffic in every section.
        assert!(one.recorder.recorded() > 0, "{fidelity:?} recorded nothing");
        assert!(one.recorder.dropped() == 0 || one.recorder.len() == one.recorder.capacity());
        assert!(!one.metrics.is_empty());
        assert_eq!(one.profile.epochs(), 20);
    }
}

#[test]
fn telemetry_does_not_perturb_the_run() {
    // run() and run_traced() must produce bit-identical reports: the
    // recorder observes the simulation, it does not participate in it.
    // Pinned on the autoscaled scenario so the scale phase is live too.
    for fidelity in [CloudSimFidelity::Fluid, CloudSimFidelity::PerRequest] {
        let engine = FleetEngine::new(autoscaled_scenario(2, fidelity)).expect("engine builds");
        let untraced = engine.run().expect("run succeeds");
        let (traced, telemetry) = engine.run_traced().expect("run succeeds");
        assert_eq!(
            untraced, traced,
            "{fidelity:?}: telemetry perturbed the run"
        );
        assert_eq!(untraced.digest(), traced.digest());
        assert!(telemetry.recorder.recorded() > 0);
        // Scaling activity shows up in the trace, not just the report.
        assert!(
            telemetry
                .recorder
                .events()
                .any(|e| e.kind() == "scaling_step"),
            "{fidelity:?}: autoscaler steps must be traced"
        );
    }
}

/// Fluid-vs-discrete cross-check: on the same congested scenario with
/// open admission and a wait-blind policy (dynamic on energy), both
/// fidelities make bit-identical device decisions, so all decision-driven
/// aggregates must agree *exactly*; the latency accounting is the only
/// difference, and its means must agree within a documented tolerance
/// while only the per-request run exposes a tail.
#[test]
fn fluid_vs_per_request_cross_check() {
    let run = |fidelity: CloudSimFidelity, cloud: CloudCapacity| {
        let scenario = FleetScenario::builder()
            .population(1500)
            .horizon(Millis::new(1_200_000.0)) // 20 minutes
            .trace_interval(Millis::new(60_000.0))
            .cloud(cloud)
            .policy(FleetPolicy::Dynamic)
            .metric(Metric::Energy)
            .seed(7)
            .shards(2)
            .fidelity(fidelity)
            .build()
            .expect("valid scenario");
        FleetEngine::new(scenario)
            .expect("engine builds")
            .run()
            .expect("run succeeds")
    };

    // Uncongested cross-check first: with ample capacity the fluid wait
    // is ~0 and the discrete sojourn is essentially the 8 ms service
    // time, so the means must sit within one single-item service time of
    // each other.
    let calm_cloud = || CloudCapacity::new(64, 8.0);
    let calm_fluid = run(CloudSimFidelity::Fluid, calm_cloud());
    let calm_discrete = run(CloudSimFidelity::PerRequest, calm_cloud());
    assert_eq!(
        calm_fluid.total_energy_mj(),
        calm_discrete.total_energy_mj()
    );
    assert!(
        (calm_fluid.latency().mean() - calm_discrete.latency().mean()).abs() <= 8.0,
        "uncongested means must agree within one service time: {} vs {}",
        calm_fluid.latency().mean(),
        calm_discrete.latency().mean()
    );

    // Congested cross-check: 1500 devices against a 480/min drain.
    let hot_cloud = || CloudCapacity::new(2, 250.0);
    let fluid = run(CloudSimFidelity::Fluid, hot_cloud());
    let discrete = run(CloudSimFidelity::PerRequest, hot_cloud());

    // Decision-driven aggregates: exact agreement (integer counts and
    // fixed-point sums on identical serve() decisions).
    assert_eq!(fluid.inferences(), discrete.inferences());
    assert_eq!(fluid.offloaded(), discrete.offloaded());
    assert_eq!(fluid.switches(), discrete.switches());
    assert_eq!(fluid.total_energy_mj(), discrete.total_energy_mj());
    for (f, d) in fluid.regions().iter().zip(discrete.regions()) {
        assert_eq!(f.inferences, d.inferences);
        assert_eq!(f.offloaded, d.offloaded);
        assert_eq!(f.energy_sum_mj(), d.energy_sum_mj());
    }

    // Latency accounting: the models price cloud time differently (the
    // fluid wait estimate vs. exact queueing + the request's own batch
    // service, which the fluid model never charges). Documented bound:
    // means agree within 20% relative plus one single-item service time
    // (250 ms) absolute slack; the observed gap on this scenario is
    // ~5.7% (fluid ≈ 154.2 s vs per-request ≈ 163.1 s of overload).
    let fluid_mean = fluid.latency().mean();
    let discrete_mean = discrete.latency().mean();
    let bound = 0.20 * fluid_mean + 250.0;
    assert!(
        (fluid_mean - discrete_mean).abs() <= bound,
        "means diverged beyond tolerance: fluid {fluid_mean} vs per-request {discrete_mean} (bound {bound})"
    );

    // The per-request run is strictly richer: it has a cloud tail story,
    // the fluid run has none.
    assert!(fluid.cloud_sojourn().iter().all(|h| h.count() == 0));
    let sojourns: u64 = discrete.cloud_sojourn().iter().map(|h| h.count()).sum();
    assert_eq!(sojourns, discrete.offloaded());
    for h in discrete.cloud_sojourn() {
        assert!(h.tail_summary().is_monotone());
    }
    // In at least one (stable) region the discrete tail visibly spreads;
    // a hopelessly diverging region collapses into the overflow bucket
    // (p50 = p99 = max), which is itself tail information fluid lacks.
    assert!(
        discrete.cloud_sojourn().iter().any(|h| {
            let tail = h.tail_summary();
            h.count() > 0 && tail.p99 > tail.p50
        }),
        "some per-request region tail must spread beyond its median"
    );
}

#[test]
fn dynamic_beats_every_fixed_policy_on_energy_under_congestion() {
    let dynamic = congested(1500, FleetPolicy::Dynamic, Metric::Energy, 2);
    assert!(
        dynamic.switches() > 0,
        "fleet should switch under bursty traces"
    );
    let kinds = {
        let scenario = FleetScenario::builder()
            .population(1)
            .build()
            .expect("valid scenario");
        let engine = FleetEngine::new(scenario).expect("engine builds");
        let kinds: Vec<DeploymentKind> = engine.cohorts()[0]
            .options
            .iter()
            .map(|o| o.kind().clone())
            .collect();
        kinds
    };
    assert!(kinds.len() >= 3, "AlexNet should enumerate several options");
    for kind in kinds {
        let fixed = congested(1500, FleetPolicy::Fixed(kind.clone()), Metric::Energy, 2);
        assert!(
            dynamic.total_energy_mj() < fixed.total_energy_mj(),
            "dynamic ({}) must beat fixed {kind} ({})",
            dynamic.total_energy_mj(),
            fixed.total_energy_mj()
        );
    }
}

#[test]
fn all_cloud_fleet_saturates_the_queue_and_congestion_aware_dodges_it() {
    let flood = congested(
        1500,
        FleetPolicy::Fixed(DeploymentKind::AllCloud),
        Metric::Latency,
        2,
    );
    let peak: f64 = flood
        .queue_depth()
        .iter()
        .flat_map(|r| r.iter())
        .fold(0.0, |a, &b| a.max(b));
    assert!(
        peak > 100.0,
        "1500 all-cloud devices must congest 480/min, peak {peak}"
    );

    let aware = congested(
        1500,
        FleetPolicy::DynamicCongestionAware,
        Metric::Latency,
        2,
    );
    assert!(
        aware.latency().mean() < flood.latency().mean(),
        "congestion-aware ({}) must beat all-cloud ({}) on mean latency",
        aware.latency().mean(),
        flood.latency().mean()
    );
}

#[test]
fn per_region_breakdown_reflects_the_mix() {
    let report = congested(2000, FleetPolicy::Dynamic, Metric::Energy, 2);
    let regions = report.regions();
    assert_eq!(regions.len(), 3);
    let by_name = |n: &str| regions.iter().find(|r| r.region == n).expect("region");
    // Default mix: USA 50%, S. Korea 30%, Afghanistan 20%.
    assert!(by_name("USA").inferences > by_name("S. Korea").inferences);
    assert!(by_name("S. Korea").inferences > by_name("Afghanistan").inferences);
    // Afghanistan (0.7 Mbps) should mostly stay on-device for energy;
    // S. Korea (16.1 Mbps) should offload far more eagerly.
    let offload_share = |n: &str| {
        let r = by_name(n);
        r.offloaded as f64 / r.inferences as f64
    };
    assert!(
        offload_share("S. Korea") > offload_share("Afghanistan"),
        "fast region should offload more: {} vs {}",
        offload_share("S. Korea"),
        offload_share("Afghanistan")
    );
}
