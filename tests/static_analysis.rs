//! Regression tests for the determinism auditor itself.
//!
//! Three contracts: (1) today's workspace is clean — zero unallowed
//! violations, so the CI `static-analysis` job is a meaningful gate, not
//! a broken one everyone ignores; (2) every rule actually fires — each
//! seeded fixture under `crates/analyzer/fixtures/<rule>/` carries
//! exactly one violation of exactly its rule; (3) the allowlist
//! round-trips — a justified annotation suppresses a finding (and keeps
//! the reason), a malformed one fails the scan loudly.

use lens_analyzer::{scan_root, scan_str, RuleId};
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // Registered on the `lens` facade at crates/lens, so the workspace
    // root is two levels up from its manifest dir.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lens has a grandparent")
        .to_path_buf()
}

#[test]
fn workspace_has_zero_unallowed_violations() {
    let report = scan_root(&repo_root()).expect("workspace scans");
    // If the walker silently scanned nothing, a "clean" verdict would be
    // vacuous — pin a floor on coverage (82 files at the time of writing).
    assert!(
        report.files_scanned >= 70,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    let offenders: Vec<String> = report
        .unallowed()
        .map(|f| format!("{}:{} [{}] {}", f.path, f.line, f.rule.id(), f.snippet))
        .collect();
    assert!(
        offenders.is_empty(),
        "determinism violations on the clean workspace:\n{}",
        offenders.join("\n")
    );
    assert!(
        report.annotation_issues.is_empty(),
        "malformed allow annotations: {:?}",
        report.annotation_issues
    );
    assert_eq!(report.exit_code(), 0);
    // Per-rule unallowed counts are all zero (allowed findings — the
    // justified engine-construction folds — are fine).
    for (rule, (unallowed, _)) in report.rule_counts() {
        assert_eq!(unallowed, 0, "rule {rule} fired on the clean workspace");
    }
}

#[test]
fn each_rule_fires_exactly_once_on_its_fixture() {
    for rule in RuleId::ALL {
        let fixture_root = repo_root().join("crates/analyzer/fixtures").join(rule.id());
        let report = scan_root(&fixture_root)
            .unwrap_or_else(|e| panic!("fixture tree for {} scans: {e}", rule.id()));
        assert_eq!(report.files_scanned, 1, "one fixture file per rule");
        assert_eq!(
            report.findings.len(),
            1,
            "fixture for {} must trip exactly its one seeded violation, got {:?}",
            rule.id(),
            report.findings
        );
        let finding = &report.findings[0];
        assert_eq!(finding.rule, rule, "fixture fired the wrong rule");
        assert!(finding.allowed.is_none());
        assert_ne!(
            report.exit_code(),
            0,
            "analyzer must exit nonzero on the {} fixture",
            rule.id()
        );
    }
}

#[test]
fn allow_annotation_round_trips() {
    let fixture = repo_root()
        .join("crates/analyzer/fixtures/unordered-collections/crates/fleet/src/merge.rs");
    let source = fs::read_to_string(&fixture).expect("fixture readable");
    let rel = "crates/fleet/src/merge.rs";

    // Unannotated: one unallowed finding.
    let before = scan_str(rel, &source);
    assert_eq!(before.findings.len(), 1);
    let line = before.findings[0].line;
    assert!(before.findings[0].allowed.is_none());
    assert_eq!(before.exit_code(), 1);

    // Insert a justified allow directly above the violation: the finding
    // stays visible but is suppressed, and the reason survives into the
    // JSON summary.
    let reason = "scratch map is drained via sorted keys before anything reads it";
    let mut lines: Vec<&str> = source.lines().collect();
    let annotation = format!("    // lens-analyzer: allow(unordered-collections): {reason}");
    lines.insert(line - 1, &annotation);
    let annotated = lines.join("\n");
    let after = scan_str(rel, &annotated);
    assert_eq!(after.findings.len(), 1);
    assert_eq!(after.findings[0].allowed.as_deref(), Some(reason));
    assert_eq!(
        after.exit_code(),
        0,
        "allowed finding must not fail the scan"
    );
    let json = after.to_json();
    assert!(json.contains("\"total_unallowed\": 0"));
    assert!(json.contains(reason), "reason must survive into JSON");
    assert!(json.contains("\"unordered-collections\": {\"unallowed\": 0, \"allowed\": 1}"));

    // A reason-less annotation is a loud error, not a silent waiver.
    let bare = annotated.replace(&format!(": {reason}"), "");
    let broken = scan_str(rel, &bare);
    assert_eq!(broken.findings.len(), 1);
    assert!(broken.findings[0].allowed.is_none(), "no reason, no waiver");
    assert_eq!(broken.annotation_issues.len(), 1);
    assert_eq!(broken.exit_code(), 1);
}

#[test]
fn json_summary_reports_per_rule_counts_for_every_rule() {
    let report = scan_root(&repo_root()).expect("workspace scans");
    let json = report.to_json();
    for rule in RuleId::ALL {
        assert!(
            json.contains(&format!("\"{}\"", rule.id())),
            "JSON summary must carry a count for {}",
            rule.id()
        );
    }
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("\"findings\""));
}

/// The telemetry crate sits inside the rule surface: wall-clock reads
/// still fire in its sources, and the digest-bearing numeric rules
/// (float accumulation, truncating casts) cover every telemetry file —
/// not just `report.rs` — because the trace and metrics digests feed the
/// cross-shard bit-identity pins.
#[test]
fn telemetry_sources_are_inside_the_rule_surface() {
    // Seeded fixture: a SystemTime stamp in a telemetry export path must
    // trip wall-clock exactly once.
    let fixture_root = repo_root().join("crates/analyzer/fixtures/telemetry-wall-clock");
    let report = scan_root(&fixture_root).expect("telemetry fixture tree scans");
    assert_eq!(report.files_scanned, 1, "one seeded telemetry fixture file");
    assert_eq!(report.findings.len(), 1, "exactly the seeded violation");
    assert_eq!(report.findings[0].rule, RuleId::WallClock);
    assert!(report.findings[0].allowed.is_none());
    assert_ne!(report.exit_code(), 0);

    // Scope checks: the same snippet fires the numeric rules at a
    // telemetry path but stays clean in an unscoped module.
    let snippet = "pub fn digest_points(points: &[f64]) -> u64 {\n\
                   \x20   let total: f64 = points.iter().sum();\n\
                   \x20   (total * 1e6) as u32 as u64\n\
                   }\n";
    let inside = scan_str("crates/telemetry/src/metrics.rs", snippet);
    let rules: Vec<RuleId> = inside.findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&RuleId::FloatAccumulation), "got {rules:?}");
    assert!(rules.contains(&RuleId::TruncatingCast), "got {rules:?}");
    let outside = scan_str("crates/core/src/search.rs", snippet);
    assert!(
        outside.findings.is_empty(),
        "numeric rules must not fire outside their scope: {:?}",
        outside.findings
    );
}

/// Scenario code is inside the float-accumulation scope: workload-curve
/// multipliers gate every offload draw, so a raw `f64` accumulated in
/// `crates/fleet/src/scenario.rs` perturbs the digest. The seeded
/// curve-shaped fixture must trip exactly that rule, exactly once.
#[test]
fn workload_curve_fixture_fires_float_accumulation_in_scenario_scope() {
    let fixture_root = repo_root().join("crates/analyzer/fixtures/workload-curve");
    let report = scan_root(&fixture_root).expect("workload-curve fixture tree scans");
    assert_eq!(report.files_scanned, 1, "one seeded fixture file");
    assert_eq!(
        report.findings.len(),
        1,
        "exactly the seeded violation, got {:?}",
        report.findings
    );
    assert_eq!(report.findings[0].rule, RuleId::FloatAccumulation);
    assert_eq!(report.findings[0].path, "crates/fleet/src/scenario.rs");
    assert!(report.findings[0].allowed.is_none());
    assert_ne!(report.exit_code(), 0);
}

/// Staged-pipeline transfer pricing is inside the float-accumulation
/// scope: an inter-stage hop priced through accumulated floats would
/// shift integer arrival stamps and break the cross-shard bit-identity
/// pins. The seeded fixture (a pricer totalling raw `f64` hop costs in
/// `crates/wireless/src/transfer.rs`) must trip exactly that rule,
/// exactly once — and the same goes for `crates/fleet/src/pipeline.rs`,
/// while the rest of the wireless crate stays out of scope.
#[test]
fn transfer_pricing_fixture_fires_float_accumulation_in_its_scope() {
    let fixture_root = repo_root().join("crates/analyzer/fixtures/transfer-pricing");
    let report = scan_root(&fixture_root).expect("transfer-pricing fixture tree scans");
    assert_eq!(report.files_scanned, 1, "one seeded fixture file");
    assert_eq!(
        report.findings.len(),
        1,
        "exactly the seeded violation, got {:?}",
        report.findings
    );
    assert_eq!(report.findings[0].rule, RuleId::FloatAccumulation);
    assert_eq!(report.findings[0].path, "crates/wireless/src/transfer.rs");
    assert!(report.findings[0].allowed.is_none());
    assert_ne!(report.exit_code(), 0);

    // Scope checks: the same snippet fires in the pipeline-pricing
    // module but stays clean in the design-time wireless link model.
    let snippet = "pub fn total_transfer(hops: &[f64]) -> f64 {\n\
                   \x20   let mut total: f64 = 0.0;\n\
                   \x20   for hop in hops { total += hop; }\n\
                   \x20   total\n\
                   }\n";
    let inside = scan_str("crates/fleet/src/pipeline.rs", snippet);
    assert_eq!(inside.findings.len(), 1, "got {:?}", inside.findings);
    assert_eq!(inside.findings[0].rule, RuleId::FloatAccumulation);
    let outside = scan_str("crates/wireless/src/link.rs", snippet);
    assert!(
        outside.findings.is_empty(),
        "float-accumulation must not fire outside its scope: {:?}",
        outside.findings
    );
}

/// The barrier replay pool (`crates/fleet/src/replay.rs`) is the second
/// sanctioned concurrency site next to the engine's shard step: its
/// scoped threads are joined in fixed region order, so thread-confinement
/// stays silent there — and only there. The seeded two-file fixture pins
/// both halves: the replay-path file scans clean, the sibling still fires.
#[test]
fn replay_module_sits_inside_the_thread_confinement_carve_out() {
    let fixture_root = repo_root().join("crates/analyzer/fixtures/thread-confinement-replay");
    let report = scan_root(&fixture_root).expect("replay fixture tree scans");
    assert_eq!(report.files_scanned, 2, "replay file plus one sibling");
    assert_eq!(
        report.findings.len(),
        1,
        "exactly the sibling's seeded violation, got {:?}",
        report.findings
    );
    let finding = &report.findings[0];
    assert_eq!(finding.rule, RuleId::ThreadConfinement);
    assert_eq!(finding.path, "crates/fleet/src/cloud.rs");
    assert!(finding.allowed.is_none());
    assert_ne!(report.exit_code(), 0);
}

/// The three engine-construction allows are the only waivers on today's
/// workspace — pin them so new allows get reviewed rather than slipping
/// in silently alongside.
#[test]
fn workspace_allowlist_is_exactly_the_engine_construction_folds() {
    let report = scan_root(&repo_root()).expect("workspace scans");
    let allowed: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.allowed.is_some())
        .map(|f| f.path.as_str())
        .collect();
    assert_eq!(
        allowed,
        vec!["crates/fleet/src/engine.rs"; 3],
        "unexpected allowlist drift: {allowed:?}"
    );
    assert!(report
        .findings
        .iter()
        .filter(|f| f.allowed.is_some())
        .all(|f| f.rule == RuleId::FloatAccumulation));
}
