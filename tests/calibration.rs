//! Calibration tests: the simulated testbed must reproduce the paper's
//! motivational analysis — Fig 1 (AlexNet per-layer structure), Fig 2 (the
//! effect of `t_u` on the best deployment option), and **all twelve cells
//! of Table I** (region × device/radio × metric → preferred option).
//!
//! These tests pin the behaviour that DESIGN.md substitution #1 promises;
//! if the device profiles are retuned, these are the tests that must stay
//! green.

use lens::prelude::*;

/// Enumerate AlexNet's deployment options on a device/technology pair.
fn alexnet_options(
    profile: &DeviceProfile,
    tech: WirelessTechnology,
) -> Vec<lens::runtime::DeploymentOption> {
    let analysis = zoo::alexnet().analyze().expect("alexnet analyzes");
    let perf = profile_network(&analysis, profile);
    let planner = DeploymentPlanner::new(WirelessLink::new(tech, Mbps::new(3.0)));
    planner
        .enumerate(&analysis, &perf)
        .expect("options enumerate")
}

/// The label of the best option for a metric at a throughput.
fn best(profile: &DeviceProfile, tech: WirelessTechnology, metric: Metric, tu: f64) -> String {
    let options = alexnet_options(profile, tech);
    let (opt, _) = DeploymentPlanner::best_at(&options, metric, Mbps::new(tu)).expect("non-empty");
    opt.to_string()
}

/// Table I, GPU/WiFi column pair: latency prefers All-Edge in all three
/// regions; energy prefers Pool5 in S. Korea and the USA but All-Edge in
/// Afghanistan.
#[test]
fn table1_gpu_wifi_cells() {
    let gpu = DeviceProfile::jetson_tx2_gpu();
    let wifi = WirelessTechnology::Wifi;
    for region in Region::opensignal_2020() {
        let tu = region.uplink().get();
        assert_eq!(
            best(&gpu, wifi, Metric::Latency, tu),
            "All-Edge",
            "GPU/WiFi latency in {region}"
        );
        let expected_energy = if region.name() == "Afghanistan" {
            "All-Edge"
        } else {
            "Split@pool5"
        };
        assert_eq!(
            best(&gpu, wifi, Metric::Energy, tu),
            expected_energy,
            "GPU/WiFi energy in {region}"
        );
    }
}

/// Table I, CPU/LTE column pair: latency All-Cloud (16.1) / Pool5 (7.5) /
/// All-Edge (0.7); energy All-Cloud / All-Cloud / Pool5.
#[test]
fn table1_cpu_lte_cells() {
    let cpu = DeviceProfile::jetson_tx2_cpu();
    let lte = WirelessTechnology::Lte;
    let expectations = [
        ("S. Korea", "All-Cloud", "All-Cloud"),
        ("USA", "Split@pool5", "All-Cloud"),
        ("Afghanistan", "All-Edge", "Split@pool5"),
    ];
    for (name, latency_expected, energy_expected) in expectations {
        let region = Region::opensignal_2020()
            .into_iter()
            .find(|r| r.name() == name)
            .expect("region exists");
        let tu = region.uplink().get();
        assert_eq!(
            best(&cpu, lte, Metric::Latency, tu),
            latency_expected,
            "CPU/LTE latency in {name}"
        );
        assert_eq!(
            best(&cpu, lte, Metric::Energy, tu),
            energy_expected,
            "CPU/LTE energy in {name}"
        );
    }
}

/// Fig 2's headline crossover: for GPU/WiFi *latency*, 30 Mbps prefers the
/// Pool5 split, "contrary to other cases which prefer the All-Edge option".
#[test]
fn fig2_gpu_wifi_latency_crossover_at_high_throughput() {
    let gpu = DeviceProfile::jetson_tx2_gpu();
    let wifi = WirelessTechnology::Wifi;
    assert_eq!(best(&gpu, wifi, Metric::Latency, 30.0), "Split@pool5");
    for tu in [0.5, 1.0, 3.0, 7.5, 16.1] {
        assert_eq!(best(&gpu, wifi, Metric::Latency, tu), "All-Edge", "tu={tu}");
    }
}

/// Fig 1 structure: FC layers are ~50% of AlexNet latency on the TX2 GPU,
/// feature maps shrink below the input only from pool5 onward, and pool5's
/// output is ~4x smaller than the 147 kB input.
#[test]
fn fig1_alexnet_structure() {
    let analysis = zoo::alexnet().analyze().unwrap();
    assert_eq!(analysis.input_bytes().get(), 150_528);

    let pool5 = analysis.layer("pool5").unwrap();
    let ratio = analysis.input_bytes().get() as f64 / pool5.output_bytes.get() as f64;
    assert!((3.5..4.5).contains(&ratio), "pool5 shrink ratio {ratio}");

    let viable = analysis.viable_partition_indices();
    assert_eq!(
        viable.first(),
        Some(&pool5.index),
        "pool5 is the first viable split"
    );

    let perf = profile_network(&analysis, &DeviceProfile::jetson_tx2_gpu());
    let fc_share = perf.latency_share(|n| n.starts_with("fc"));
    assert!(
        (0.40..0.60).contains(&fc_share),
        "FC latency share {fc_share}"
    );
}

/// The dominance-map thresholds are consistent with the per-point bests:
/// sweeping Table I's throughputs through the precomputed map gives the
/// same answers as brute-force minimization.
#[test]
fn dominance_map_consistent_with_pointwise_best() {
    let cpu = DeviceProfile::jetson_tx2_cpu();
    let options = alexnet_options(&cpu, WirelessTechnology::Lte);
    for metric in [Metric::Latency, Metric::Energy] {
        let map = DominanceMap::build(&options, metric).unwrap();
        for tu in [0.7, 3.0, 7.5, 16.1, 22.8, 30.0] {
            let by_map = &options[map.best_at(Mbps::new(tu))];
            let (by_scan, _) = DeploymentPlanner::best_at(&options, metric, Mbps::new(tu)).unwrap();
            assert_eq!(by_map.to_string(), by_scan.to_string(), "{metric} at {tu}");
        }
    }
}

/// The trained regression predictors preserve every Table I preference —
/// the search sees predictions, not ground truth, so the preferences must
/// survive the modelling error.
#[test]
fn table1_survives_the_performance_predictors() {
    let analysis = zoo::alexnet().analyze().unwrap();
    for (profile, tech, metric, tu, expected) in [
        (
            DeviceProfile::jetson_tx2_gpu(),
            WirelessTechnology::Wifi,
            Metric::Energy,
            7.5,
            "Split@pool5",
        ),
        (
            DeviceProfile::jetson_tx2_gpu(),
            WirelessTechnology::Wifi,
            Metric::Latency,
            7.5,
            "All-Edge",
        ),
        (
            DeviceProfile::jetson_tx2_cpu(),
            WirelessTechnology::Lte,
            Metric::Energy,
            16.1,
            "All-Cloud",
        ),
        (
            DeviceProfile::jetson_tx2_cpu(),
            WirelessTechnology::Lte,
            Metric::Latency,
            0.7,
            "All-Edge",
        ),
    ] {
        let predictor = PerformancePredictor::train(&profile, 0.05, 7).unwrap();
        let perf = profile_network(&analysis, &predictor);
        let planner = DeploymentPlanner::new(WirelessLink::new(tech, Mbps::new(3.0)));
        let options = planner.enumerate(&analysis, &perf).unwrap();
        let (opt, _) = DeploymentPlanner::best_at(&options, metric, Mbps::new(tu)).unwrap();
        assert_eq!(
            opt.to_string(),
            expected,
            "{tech} {metric} at {tu} (predicted)"
        );
    }
}
