//! Robustness and failure-injection tests: the pipeline must degrade
//! gracefully — not panic, not produce NaNs, not invert physical
//! monotonicities — when its inputs get ugly.

use lens::core::{PartitionPolicy, PerfEvaluator};
use lens::prelude::*;
use std::sync::Arc;

/// Even with brutal (±50 %-scale) measurement noise, the fitted predictors
/// must preserve the physical monotonicity the search depends on: strictly
/// more MACs at the same shape class never predicts meaningfully *less*
/// latency.
#[test]
fn noisy_predictors_keep_macs_monotonicity() {
    let gpu = DeviceProfile::jetson_tx2_gpu();
    let predictor = PerformancePredictor::train(&gpu, 0.5, 123).expect("training survives noise");
    let widths = [24u32, 64, 128, 256];
    let mut last = 0.0;
    for &w in &widths {
        let net = NetworkBuilder::new("probe", TensorShape::new(3, 56, 56))
            .layer(lens::nn::Layer::conv("c", w, 3, 1))
            .build()
            .expect("probe builds");
        let a = net.analyze().expect("probe analyzes");
        let t = predictor.layer_latency(&a.layers()[0]).get();
        assert!(t.is_finite() && t >= 0.0);
        assert!(
            t >= last * 0.8,
            "latency dropped hard with more filters: {last} -> {t} at width {w}"
        );
        last = t;
    }
}

/// A search at pathological throughputs (dial-up and fiber-grade uplinks)
/// completes and produces finite objectives.
#[test]
fn search_survives_extreme_throughputs() {
    for tu in [0.06, 500.0] {
        let lens = Lens::builder()
            .technology(WirelessTechnology::ThreeG)
            .expected_throughput(Mbps::new(tu))
            .use_predictor(false)
            .iterations(2)
            .initial_samples(3)
            .seed(8)
            .build()
            .expect("builds");
        let outcome = lens.search().expect("search runs");
        for c in outcome.explored() {
            let v = c.objectives.to_vec();
            assert!(v.iter().all(|x| x.is_finite()), "{v:?} at tu={tu}");
        }
    }
}

/// Algorithm 1 on a degenerate single-layer network still produces a valid
/// comparison set (All-Cloud + All-Edge at minimum).
#[test]
fn alg1_handles_single_layer_networks() {
    let net = NetworkBuilder::new("one-layer", TensorShape::new(3, 32, 32))
        .layer(lens::nn::Layer::conv("only", 8, 3, 1))
        .build()
        .expect("builds");
    let evaluator = PerfEvaluator::new(
        WirelessLink::new(WirelessTechnology::Wifi, Mbps::new(3.0)),
        Arc::new(DeviceProfile::jetson_tx2_gpu()),
        PartitionPolicy::WithinOptimization,
    );
    let eval = evaluator
        .evaluate(&net.analyze().expect("analyzes"))
        .expect("evaluates");
    assert!(eval.options.len() >= 2);
    assert!(eval.latency.get().is_finite());
}

/// The GAP-headed NiN model (tiny feature-map tail, zero FC layers) flows
/// through the full Algorithm 1 analysis, and its late layers — not its
/// bulky early convolutions — are the viable partition points.
#[test]
fn nin_partition_analysis_end_to_end() {
    let analysis = zoo::nin().analyze().expect("nin analyzes");
    let evaluator = PerfEvaluator::new(
        WirelessLink::new(WirelessTechnology::Wifi, Mbps::new(7.5)),
        Arc::new(DeviceProfile::jetson_tx2_gpu()),
        PartitionPolicy::WithinOptimization,
    );
    let eval = evaluator.evaluate(&analysis).expect("evaluates");
    // The GAP output (≈3.9 kB) must be among the candidate split points.
    assert!(
        eval.options.iter().any(|o| o.to_string() == "Split@gap"),
        "options: {:?}",
        eval.options
            .iter()
            .map(|o| o.to_string())
            .collect::<Vec<_>>()
    );
    // And the best options never pick an early, bigger-than-input layer.
    for kind in [&eval.best_latency_option, &eval.best_energy_option] {
        if let DeploymentKind::Split { layer_name, .. } = kind {
            assert!(
                !layer_name.starts_with("conv1") && !layer_name.starts_with("cccp1"),
                "split at early layer {layer_name}"
            );
        }
    }
}

/// Simulating over a single-sample trace works, and the dynamic policy
/// equals the best fixed option there.
#[test]
fn simulator_handles_single_sample_trace() {
    let analysis = zoo::alexnet().analyze().expect("analyzes");
    let perf = profile_network(&analysis, &DeviceProfile::jetson_tx2_cpu());
    let planner =
        DeploymentPlanner::new(WirelessLink::new(WirelessTechnology::Lte, Mbps::new(8.0)));
    let options = planner.enumerate(&analysis, &perf).expect("enumerates");
    let sim = RuntimeSimulator::new(options).expect("simulator builds");
    let trace = ThroughputTrace::new(vec![Mbps::new(9.0)], lens::nn::Millis::new(1000.0))
        .expect("trace builds");
    let report = sim
        .run(&trace, Metric::Energy, ThroughputTracker::last_sample())
        .expect("runs");
    assert_eq!(report.dynamic().cumulative.len(), 1);
    assert_eq!(report.switches(), 0);
    let best = report.best_fixed();
    assert!((report.dynamic().total() - report.fixed()[best].total()).abs() < 1e-9);
}

/// The CNN trainer stays numerically sane under an absurd learning rate:
/// gradient clipping must prevent NaN weights (accuracy may be garbage).
#[test]
fn cnn_trainer_survives_huge_learning_rate() {
    use lens::accuracy::cnn::{synthetic_images, Cnn};
    let net = NetworkBuilder::new("t", TensorShape::new(3, 8, 8))
        .layer(lens::nn::Layer::conv("c", 4, 3, 1))
        .layer(lens::nn::Layer::max_pool2("p"))
        .flatten()
        .layer(lens::nn::Layer::dense("fc", 8))
        .layer(lens::nn::Layer::new(
            "cls",
            lens::nn::LayerKind::Dense {
                out_features: 2,
                activation: lens::nn::Activation::Softmax,
            },
        ))
        .build()
        .expect("builds");
    let mut cnn = Cnn::from_network(&net, 8, 0).expect("cnn builds");
    let (train, test) = synthetic_images(1, TensorShape::new(3, 8, 8), 2, 4, 2);
    for (x, y) in &train {
        let loss = cnn.train_step(x, *y, 10.0, 0.99);
        assert!(loss.is_finite(), "loss diverged to {loss}");
    }
    // Predictions still produce a valid class index.
    for (x, _) in &test {
        assert!(cnn.predict(x) < 2);
    }
}

/// Every estimator backend gives the same architecture a deterministic,
/// in-range error — interchangeability of the AccuracyEstimator trait.
#[test]
fn all_three_estimator_backends_agree_on_contract() {
    use lens::accuracy::{AccuracyEstimator, CnnTrainedAccuracy};
    let space = VggSpace::for_cifar10();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(6);
    let net = space.decode(&space.sample(&mut rng)).expect("decodes");
    let backends: Vec<Box<dyn AccuracyEstimator>> = vec![
        Box::new(SurrogateAccuracy::cifar10()),
        Box::new(TrainedAccuracy::new(3, 2)),
        Box::new(
            CnnTrainedAccuracy::new(3, 1)
                .with_channel_cap(3)
                .with_dataset_size(2, 2),
        ),
    ];
    for (i, backend) in backends.iter().enumerate() {
        let a = backend.test_error(&net).expect("estimates");
        let b = backend.test_error(&net).expect("estimates again");
        assert_eq!(a, b, "backend {i} is not deterministic");
        assert!((0.0..=100.0).contains(&a), "backend {i} out of range: {a}");
    }
}
