//! Guards the build system itself: every crate under `crates/` must be a
//! workspace member, every repo-level test/example must be registered on the
//! facade, and the four criterion benches must be wired with
//! `harness = false`. A new crate or test file that is silently left out of
//! the workspace would otherwise never be compiled by CI.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // This test is registered on the `lens` facade at crates/lens, so the
    // workspace root is two levels up from its manifest dir.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lens has a grandparent")
        .to_path_buf()
}

fn list_dir(dir: &Path) -> Vec<PathBuf> {
    fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.expect("dir entry").path())
        .collect()
}

#[test]
fn every_crate_dir_is_a_workspace_member() {
    let root = repo_root();
    let root_manifest =
        fs::read_to_string(root.join("Cargo.toml")).expect("root Cargo.toml exists");
    assert!(
        root_manifest.contains("\"crates/*\""),
        "root manifest must glob crates/* as workspace members"
    );
    assert!(
        root_manifest.contains("\"shims/*\""),
        "root manifest must glob shims/* (offline dependency shims)"
    );

    // The glob only picks up directories that contain a manifest; make sure
    // no crate directory is silently skipped for lacking one.
    for crate_dir in list_dir(&root.join("crates")) {
        if !crate_dir.is_dir() {
            continue;
        }
        let manifest = crate_dir.join("Cargo.toml");
        assert!(
            manifest.is_file(),
            "{} has no Cargo.toml — it would be silently excluded from the workspace",
            crate_dir.display()
        );
        let body = fs::read_to_string(&manifest).expect("crate manifest readable");
        let dir_name = crate_dir.file_name().unwrap().to_string_lossy().to_string();
        let expected = if dir_name == "lens" {
            "name = \"lens\"".to_string()
        } else {
            format!("name = \"lens-{dir_name}\"")
        };
        assert!(
            body.contains(&expected),
            "{} should declare package {expected}",
            manifest.display()
        );
    }
}

#[test]
fn workspace_dependency_table_covers_all_crates() {
    let root = repo_root();
    let root_manifest =
        fs::read_to_string(root.join("Cargo.toml")).expect("root Cargo.toml exists");
    for crate_dir in list_dir(&root.join("crates")) {
        if !crate_dir.is_dir() {
            continue;
        }
        let dir_name = crate_dir.file_name().unwrap().to_string_lossy().to_string();
        let pkg = if dir_name == "lens" {
            "lens".to_string()
        } else {
            format!("lens-{dir_name}")
        };
        if pkg == "lens-bench" {
            // Leaf crate: nothing depends on it, so no workspace.dependencies
            // entry is required.
            continue;
        }
        assert!(
            root_manifest.contains(&format!("{pkg} = {{ path = \"crates/{dir_name}\"")),
            "[workspace.dependencies] is missing {pkg}"
        );
    }
}

#[test]
fn repo_level_tests_and_examples_are_registered() {
    let root = repo_root();
    let facade_manifest =
        fs::read_to_string(root.join("crates/lens/Cargo.toml")).expect("facade manifest");

    let stems = |dir: &str| -> BTreeSet<String> {
        list_dir(&root.join(dir))
            .into_iter()
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .map(|p| p.file_stem().unwrap().to_string_lossy().to_string())
            .collect()
    };

    // Match on the registered path, not the target name: a [[test]] and a
    // [[example]] sharing a stem must not mask each other.
    for test in stems("tests") {
        assert!(
            facade_manifest.contains(&format!("path = \"../../tests/{test}.rs\"")),
            "tests/{test}.rs is not registered as a [[test]] on the lens facade"
        );
    }
    for example in stems("examples") {
        assert!(
            facade_manifest.contains(&format!("path = \"../../examples/{example}.rs\"")),
            "examples/{example}.rs is not registered as a [[example]] on the lens facade"
        );
    }
}

#[test]
fn criterion_benches_are_registered_without_default_harness() {
    let root = repo_root();
    let bench_manifest =
        fs::read_to_string(root.join("crates/bench/Cargo.toml")).expect("bench manifest");
    for bench in list_dir(&root.join("crates/bench/benches")) {
        if bench.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let stem = bench.file_stem().unwrap().to_string_lossy().to_string();
        let needle = format!("name = \"{stem}\"");
        let idx = bench_manifest
            .find(&needle)
            .unwrap_or_else(|| panic!("bench {stem} missing from [[bench]] entries"));
        let after = &bench_manifest[idx..];
        let entry_end = after[1..].find("[[").map(|i| i + 1).unwrap_or(after.len());
        assert!(
            after[..entry_end].contains("harness = false"),
            "bench {stem} must set harness = false for criterion"
        );
    }
}

/// The generic stem-scanning tests above catch *unregistered* files; this
/// pins the fleet subsystem's surface by name so a rename or accidental
/// deletion of any piece (crate, facade re-export, bench, example, test)
/// fails loudly rather than silently shrinking coverage.
#[test]
fn fleet_subsystem_is_fully_registered() {
    let root = repo_root();
    let read = |p: &str| fs::read_to_string(root.join(p)).unwrap_or_else(|e| panic!("{p}: {e}"));

    let root_manifest = read("Cargo.toml");
    assert!(
        root_manifest.contains("lens-fleet = { path = \"crates/fleet\""),
        "[workspace.dependencies] must carry lens-fleet"
    );

    let facade_manifest = read("crates/lens/Cargo.toml");
    assert!(
        facade_manifest.contains("lens-fleet = { workspace = true }"),
        "the facade must depend on lens-fleet"
    );
    assert!(
        facade_manifest.contains("path = \"../../examples/fleet_scaleout.rs\""),
        "fleet_scaleout example must be registered on the facade"
    );
    assert!(
        facade_manifest.contains("path = \"../../tests/fleet_sim.rs\""),
        "fleet_sim test must be registered on the facade"
    );

    let facade_lib = read("crates/lens/src/lib.rs");
    assert!(
        facade_lib.contains("pub use lens_fleet as fleet;"),
        "the facade must re-export lens-fleet"
    );

    let bench_manifest = read("crates/bench/Cargo.toml");
    assert!(
        bench_manifest.contains("name = \"fleet_step\""),
        "fleet_step bench must be registered"
    );
}

/// Pins the batched-serving-tier surface added with the docs pass: the
/// `docs/` directory, its README links, and the `cloud_batching` example.
#[test]
fn docs_and_cloud_batching_example_are_pinned() {
    let root = repo_root();
    let read = |p: &str| fs::read_to_string(root.join(p)).unwrap_or_else(|e| panic!("{p}: {e}"));

    let architecture = read("docs/ARCHITECTURE.md");
    assert!(
        architecture.contains("Determinism contract"),
        "docs/ARCHITECTURE.md must document the determinism contract"
    );
    assert!(
        architecture.contains("batch-close"),
        "docs/ARCHITECTURE.md must walk through the serving tier's batch-close events"
    );
    let paper_map = read("docs/PAPER_MAP.md");
    for crate_name in [
        "lens-num",
        "lens-nn",
        "lens-space",
        "lens-wireless",
        "lens-device",
        "lens-gp",
        "lens-pareto",
        "lens-accuracy",
        "lens-runtime",
        "lens-fleet",
        "lens-core",
        "lens-bench",
    ] {
        assert!(
            paper_map.contains(crate_name),
            "docs/PAPER_MAP.md must cover {crate_name}"
        );
    }

    let readme = read("README.md");
    assert!(
        readme.contains("docs/ARCHITECTURE.md") && readme.contains("docs/PAPER_MAP.md"),
        "README must link both docs"
    );
    let fleet_lib = read("crates/fleet/src/lib.rs");
    assert!(
        fleet_lib.contains("docs/ARCHITECTURE.md"),
        "lens-fleet rustdoc must point at docs/ARCHITECTURE.md"
    );

    let facade_manifest = read("crates/lens/Cargo.toml");
    assert!(
        facade_manifest.contains("path = \"../../examples/cloud_batching.rs\""),
        "cloud_batching example must be registered on the facade"
    );
    let bench_json = read("crates/bench/benches/BENCH_fleet.json");
    assert!(
        bench_json.contains("batch_close"),
        "BENCH_fleet.json must record the batch_close bench"
    );
}

/// Pins the per-request microsimulation surface: the fidelity knob, the
/// tail-reporting docs, the `tail_latency` example, the `per_request`
/// bench record, and its CI smoke-run.
#[test]
fn per_request_microsim_surface_is_pinned() {
    let root = repo_root();
    let read = |p: &str| fs::read_to_string(root.join(p)).unwrap_or_else(|e| panic!("{p}: {e}"));

    let architecture = read("docs/ARCHITECTURE.md");
    assert!(
        architecture.contains("Cloud fidelity modes"),
        "docs/ARCHITECTURE.md must document the fidelity modes"
    );
    assert!(
        architecture.contains("PerRequest"),
        "docs/ARCHITECTURE.md must cover CloudSimFidelity::PerRequest"
    );
    assert!(
        architecture.contains("slot-free events run first"),
        "docs/ARCHITECTURE.md must document intra-epoch event ordering"
    );
    let paper_map = read("docs/PAPER_MAP.md");
    assert!(
        paper_map.contains("RegionMicrosim"),
        "docs/PAPER_MAP.md must map the latency model to the per-request microsim"
    );

    let facade_manifest = read("crates/lens/Cargo.toml");
    assert!(
        facade_manifest.contains("path = \"../../examples/tail_latency.rs\""),
        "tail_latency example must be registered on the facade"
    );

    let bench_source = read("crates/bench/benches/fleet_step.rs");
    assert!(
        bench_source.contains("per_request/10000"),
        "fleet_step bench must measure the per-request path"
    );
    let bench_json = read("crates/bench/benches/BENCH_fleet.json");
    assert!(
        bench_json.contains("per_request/10000"),
        "BENCH_fleet.json must record the per_request bench"
    );

    let ci = read(".github/workflows/ci.yml");
    assert!(
        ci.contains("examples/*.rs"),
        "CI must smoke-run tail_latency via the matrixed examples step"
    );
}

#[test]
fn ci_gates_docs_and_fleet_smoke_run() {
    let root = repo_root();
    let ci = fs::read_to_string(root.join(".github/workflows/ci.yml")).expect("ci.yml exists");
    assert!(
        ci.contains("cargo doc --workspace --no-deps"),
        "CI must build rustdoc for the workspace"
    );
    assert!(
        ci.contains("RUSTDOCFLAGS: \"-D warnings\""),
        "CI rustdoc step must deny warnings (broken intra-doc links fail)"
    );
    assert!(
        ci.contains("cargo test --doc --workspace"),
        "CI must run doctests explicitly"
    );
    // The four copy-pasted per-example steps collapsed into one matrixed
    // loop: every file under examples/ is smoke-run in release, so new
    // examples (fleet_scaleout, cloud_batching, autoscale_cost, …) are
    // covered without editing the workflow.
    assert!(
        ci.contains("for src in examples/*.rs")
            && ci.contains("cargo run --example \"$example\" --release --locked"),
        "CI must smoke-run every example via the matrixed loop step"
    );
}

#[test]
fn ci_workflow_is_structured_for_scale() {
    let root = repo_root();
    let ci = fs::read_to_string(root.join(".github/workflows/ci.yml")).expect("ci.yml exists");
    assert!(
        ci.contains("concurrency:") && ci.contains("cancel-in-progress: true"),
        "CI must cancel superseded runs per ref"
    );
    // Every job carries a timeout so a hung step cannot pin a runner for
    // the default six hours.
    let jobs = ci.matches("runs-on:").count();
    let timeouts = ci.matches("timeout-minutes:").count();
    assert!(jobs >= 3, "expected the three-job workflow, found {jobs}");
    assert_eq!(
        jobs, timeouts,
        "every CI job must set timeout-minutes ({jobs} jobs, {timeouts} timeouts)"
    );
}

/// Pins the autoscaling, cost-aware serving surface (PR 5): the doc
/// sections, the `autoscale_cost` example, the bench-regression gate (bin
/// + CI job + baselines), and the release-mode determinism job.
#[test]
fn autoscaling_and_bench_gate_surface_is_pinned() {
    let root = repo_root();
    let read = |p: &str| fs::read_to_string(root.join(p)).unwrap_or_else(|e| panic!("{p}: {e}"));

    let architecture = read("docs/ARCHITECTURE.md");
    assert!(
        architecture.contains("Autoscaling"),
        "docs/ARCHITECTURE.md must document the autoscaler state machine"
    );
    assert!(
        architecture.contains("drain → scale → publish"),
        "docs/ARCHITECTURE.md must document the barrier-phase ordering"
    );
    assert!(
        architecture.contains("CostAware"),
        "docs/ARCHITECTURE.md must document cost-aware dispatch"
    );
    let paper_map = read("docs/PAPER_MAP.md");
    assert!(
        paper_map.contains("price × energy"),
        "docs/PAPER_MAP.md must map L_cloud to the price × energy objective"
    );

    let facade_manifest = read("crates/lens/Cargo.toml");
    assert!(
        facade_manifest.contains("path = \"../../examples/autoscale_cost.rs\""),
        "autoscale_cost example must be registered on the facade"
    );

    // The bench-regression gate: the in-process gate binary exists, CI
    // runs it as its own job, and the fleet baselines carry the records
    // it reads plus the new autoscaled bench.
    let gate = read("crates/bench/src/bin/bench_gate.rs");
    for needle in ["run/10000", "per_request/10000", "hypervolume_3d"] {
        assert!(gate.contains(needle), "bench_gate must gate {needle}");
    }
    let bench_source = read("crates/bench/benches/fleet_step.rs");
    assert!(
        bench_source.contains("run_autoscaled/10000"),
        "fleet_step bench must measure the autoscaled path"
    );
    // Gate and benches must build their workloads from the one shared
    // module — measuring a drifted copy would gate the wrong thing.
    for (path, source) in [
        ("bench_gate", &gate),
        ("fleet_step", &bench_source),
        (
            "pareto_update",
            &read("crates/bench/benches/pareto_update.rs"),
        ),
    ] {
        assert!(
            source.contains("lens_bench::workloads") || source.contains("workloads::"),
            "{path} must use the shared lens_bench::workloads definitions"
        );
    }
    let bench_json = read("crates/bench/benches/BENCH_fleet.json");
    assert!(
        bench_json.contains("run_autoscaled/10000"),
        "BENCH_fleet.json must record the autoscaled bench"
    );
    for (section, key) in [
        ("run/10000", "after_ns_per_inference_event"),
        ("per_request/10000", "after_ns_per_inference_event"),
    ] {
        let at = bench_json
            .find(&format!("\"{section}\""))
            .unwrap_or_else(|| panic!("BENCH_fleet.json missing {section}"));
        assert!(
            bench_json[at..bench_json[at..].find('}').unwrap() + at].contains(key),
            "BENCH_fleet.json {section} must record {key} for the gate"
        );
    }

    let ci = read(".github/workflows/ci.yml");
    assert!(
        ci.contains("cargo run --release -p lens-bench --bin bench_gate"),
        "CI must run the bench-regression gate"
    );
    assert!(
        ci.contains("cargo test --release -q --locked -p lens --test fleet_sim"),
        "CI must run the fleet determinism tests in release mode"
    );
}

/// Pins the determinism-auditor surface (PR 6): the `lens-analyzer`
/// crate, its CI job, the workspace-lints table, the forbid(unsafe_code)
/// attribute in every non-bench crate root, the per-rule fixture trees,
/// the docs section, and the extended bench-gate paths.
#[test]
fn static_analysis_surface_is_pinned() {
    let root = repo_root();
    let read = |p: &str| fs::read_to_string(root.join(p)).unwrap_or_else(|e| panic!("{p}: {e}"));

    // CI runs the analyzer as its own job, in JSON mode so the log is
    // grep-able.
    let ci = read(".github/workflows/ci.yml");
    assert!(
        ci.contains("cargo run -p lens-analyzer --locked -- --format json"),
        "CI must run the determinism audit"
    );

    // Workspace lints exist and every crate (and shim) opts in.
    let root_manifest = read("Cargo.toml");
    assert!(
        root_manifest.contains("[workspace.lints.rust]")
            && root_manifest.contains("unsafe_code = \"deny\""),
        "root manifest must deny unsafe_code via [workspace.lints]"
    );
    assert!(
        root_manifest.contains("lens-analyzer = { path = \"crates/analyzer\""),
        "[workspace.dependencies] must carry lens-analyzer"
    );
    for crate_dir in list_dir(&root.join("crates")) {
        if !crate_dir.is_dir() {
            continue;
        }
        let manifest = fs::read_to_string(crate_dir.join("Cargo.toml")).expect("crate manifest");
        assert!(
            manifest.contains("[lints]") && manifest.contains("workspace = true"),
            "{} must opt into [workspace.lints]",
            crate_dir.display()
        );
        // Belt and braces on top of the lint table: the attribute form is
        // what rule `forbid-unsafe` checks, so a crate cannot re-allow
        // unsafe locally without tripping the audit.
        let dir_name = crate_dir.file_name().unwrap().to_string_lossy().to_string();
        if dir_name != "bench" {
            let lib = fs::read_to_string(crate_dir.join("src/lib.rs")).expect("crate root");
            assert!(
                lib.contains("#![forbid(unsafe_code)]"),
                "crates/{dir_name}/src/lib.rs must carry #![forbid(unsafe_code)]"
            );
        }
    }

    // One fixture tree per rule, and the analyzer's own test surface.
    for rule in [
        "unordered-collections",
        "wall-clock",
        "float-accumulation",
        "truncating-cast",
        "forbid-unsafe",
        "thread-confinement",
        "ambient-entropy",
    ] {
        assert!(
            root.join("crates/analyzer/fixtures").join(rule).is_dir(),
            "fixture tree for rule {rule} is missing"
        );
    }
    let facade_manifest = read("crates/lens/Cargo.toml");
    assert!(
        facade_manifest.contains("path = \"../../tests/static_analysis.rs\""),
        "static_analysis test must be registered on the facade"
    );
    assert!(
        facade_manifest.contains("lens-analyzer = { workspace = true }"),
        "the facade must dev-depend on lens-analyzer"
    );

    // Docs: the rules are user-facing contract, not analyzer trivia.
    let architecture = read("docs/ARCHITECTURE.md");
    assert!(
        architecture.contains("Determinism rules"),
        "docs/ARCHITECTURE.md must document the audited rules"
    );
    assert!(
        architecture.contains("lens-analyzer: allow("),
        "docs/ARCHITECTURE.md must document the allowlist syntax"
    );
    assert!(
        read("README.md").contains("lens-analyzer"),
        "README must point at the determinism auditor"
    );

    // The extended bench-gate surface: search-side paths are gated too.
    let gate = read("crates/bench/src/bin/bench_gate.rs");
    let bench_json = read("crates/bench/benches/BENCH_pareto.json");
    for needle in ["build_front/5000", "gp/fit/300"] {
        assert!(gate.contains(needle), "bench_gate must gate {needle}");
        assert!(
            bench_json.contains(needle),
            "BENCH_pareto.json must record a baseline for {needle}"
        );
    }
}

/// Pins the observability surface (PR 7): the `lens-telemetry` crate,
/// its wiring through the fleet engine, the `flight_recorder` example,
/// the analyzer's extended rule scope + fixture, the traced bench-gate
/// entry, the docs section, and the CI trace-validation step.
#[test]
fn observability_surface_is_pinned() {
    let root = repo_root();
    let read = |p: &str| fs::read_to_string(root.join(p)).unwrap_or_else(|e| panic!("{p}: {e}"));

    // The crate exists, is dependency-free, and is wired into the fleet.
    let telemetry_manifest = read("crates/telemetry/Cargo.toml");
    assert!(
        telemetry_manifest.contains("name = \"lens-telemetry\""),
        "crates/telemetry must declare package lens-telemetry"
    );
    assert!(
        read("Cargo.toml").contains("lens-telemetry = { path = \"crates/telemetry\""),
        "[workspace.dependencies] must carry lens-telemetry"
    );
    assert!(
        read("crates/fleet/Cargo.toml").contains("lens-telemetry = { workspace = true }"),
        "lens-fleet must depend on lens-telemetry"
    );
    let fleet_lib = read("crates/fleet/src/lib.rs");
    assert!(
        fleet_lib.contains("pub use lens_telemetry::"),
        "lens-fleet must re-export the telemetry surface"
    );
    let facade_lib = read("crates/lens/src/lib.rs");
    assert!(
        facade_lib.contains("pub use lens_telemetry as telemetry;"),
        "the facade must re-export lens-telemetry"
    );

    // The example records a run and dumps both export formats.
    let facade_manifest = read("crates/lens/Cargo.toml");
    assert!(
        facade_manifest.contains("path = \"../../examples/flight_recorder.rs\""),
        "flight_recorder example must be registered on the facade"
    );
    let example = read("examples/flight_recorder.rs");
    assert!(
        example.contains("run_traced") && example.contains("to_chrome_trace"),
        "flight_recorder must exercise run_traced and the Chrome export"
    );

    // The analyzer's rule surface covers the telemetry crate, with its
    // own seeded fixture proving wall-clock still fires there.
    assert!(
        read("crates/analyzer/src/rules.rs").contains("loc.crate_dir == \"telemetry\""),
        "the numeric analyzer rules must scope to crates/telemetry"
    );
    assert!(
        root.join("crates/analyzer/fixtures/telemetry-wall-clock")
            .is_dir(),
        "telemetry wall-clock fixture tree is missing"
    );

    // Benches: the traced run is measured and gated, and the untraced
    // run keeps its (disabled-sink) baseline entry.
    assert!(
        read("crates/bench/benches/fleet_step.rs").contains("run_traced/10000"),
        "fleet_step bench must measure the traced path"
    );
    let gate = read("crates/bench/src/bin/bench_gate.rs");
    assert!(
        gate.contains("fleet/run_traced/10000"),
        "bench_gate must gate the traced run"
    );
    let bench_json = read("crates/bench/benches/BENCH_fleet.json");
    for section in ["run/10000", "run_traced/10000"] {
        let at = bench_json
            .find(&format!("\"{section}\""))
            .unwrap_or_else(|| panic!("BENCH_fleet.json missing {section}"));
        assert!(
            bench_json[at..bench_json[at..].find('}').unwrap() + at]
                .contains("after_ns_per_inference_event"),
            "BENCH_fleet.json {section} must carry the gate's ns/event key"
        );
    }

    // Docs and the shard-invariance pins.
    let architecture = read("docs/ARCHITECTURE.md");
    assert!(
        architecture.contains("## Observability"),
        "docs/ARCHITECTURE.md must document the observability layer"
    );
    for needle in ["Sink", "FlightRecorder", "trace_event", "PhaseProbe"] {
        assert!(
            architecture.contains(needle),
            "docs/ARCHITECTURE.md Observability section must mention {needle}"
        );
    }
    assert!(
        read("README.md").contains("lens-telemetry"),
        "README must point at the telemetry crate"
    );
    assert!(
        read("docs/PAPER_MAP.md").contains("lens-telemetry"),
        "docs/PAPER_MAP.md must cover lens-telemetry"
    );
    let fleet_sim = read("tests/fleet_sim.rs");
    assert!(
        fleet_sim.contains("trace_digest") && fleet_sim.contains("metrics_digest"),
        "tests/fleet_sim.rs must pin the trace and metrics digests"
    );

    // CI validates the emitted Chrome trace after the example loop.
    let ci = read(".github/workflows/ci.yml");
    assert!(
        ci.contains("target/flight_recorder/trace.json"),
        "CI must validate the flight_recorder Chrome trace output"
    );
}

/// Pins the closed tail-latency loop surface (PR 8): the workload-curve
/// scenario knob, the tail-targeting scaling signal, the published p99 +
/// device retreat path, the `closed_loop` regression suite, the
/// `flash_crowd` example, the bench + gate entries, the analyzer scope
/// extension, the docs sections, and the CI release-determinism step.
#[test]
fn closed_loop_surface_is_pinned() {
    let root = repo_root();
    let read = |p: &str| fs::read_to_string(root.join(p)).unwrap_or_else(|e| panic!("{p}: {e}"));

    // The three pieces of the loop live where the map says they do.
    let scenario = read("crates/fleet/src/scenario.rs");
    assert!(
        scenario.contains("pub struct WorkloadCurve") && scenario.contains("CURVE_FP_SCALE"),
        "crates/fleet/src/scenario.rs must define the fixed-point WorkloadCurve"
    );
    assert!(
        read("crates/fleet/src/cloud.rs").contains("TailLatency"),
        "crates/fleet/src/cloud.rs must define ScalingSignal::TailLatency"
    );
    let device = read("crates/fleet/src/device.rs");
    assert!(
        device.contains("RETREAT_SALT") && device.contains("CURVE_SALT"),
        "device-side curve/retreat draws must use their own salted hash streams"
    );

    // Regression suite + example are registered and CI runs both.
    let facade_manifest = read("crates/lens/Cargo.toml");
    assert!(
        facade_manifest.contains("path = \"../../tests/closed_loop.rs\""),
        "closed_loop test must be registered on the facade"
    );
    assert!(
        facade_manifest.contains("path = \"../../examples/flash_crowd.rs\""),
        "flash_crowd example must be registered on the facade"
    );
    let ci = read(".github/workflows/ci.yml");
    assert!(
        ci.contains("cargo test --release -q --locked -p lens --test closed_loop"),
        "CI must run the closed-loop suite in release mode"
    );

    // Bench + gate price the loop against a checked-in baseline.
    assert!(
        read("crates/bench/benches/fleet_step.rs").contains("run_flash_crowd/10000"),
        "fleet_step bench must measure the closed loop"
    );
    assert!(
        read("crates/bench/src/bin/bench_gate.rs").contains("run_flash_crowd/10000"),
        "bench_gate must gate the closed loop"
    );
    let bench_json = read("crates/bench/benches/BENCH_fleet.json");
    let at = bench_json
        .find("\"run_flash_crowd/10000\"")
        .expect("BENCH_fleet.json missing run_flash_crowd/10000");
    assert!(
        bench_json[at..bench_json[at..].find('}').unwrap() + at]
            .contains("after_ns_per_inference_event"),
        "BENCH_fleet.json run_flash_crowd/10000 must carry the gate's ns/event key"
    );

    // The analyzer's float-accumulation scope covers the curve code.
    assert!(
        read("crates/analyzer/src/rules.rs").contains("crates/fleet/src/scenario.rs"),
        "the float-accumulation rule must scope to crates/fleet/src/scenario.rs"
    );
    assert!(
        root.join("crates/analyzer/fixtures/workload-curve")
            .is_dir(),
        "workload-curve fixture tree is missing"
    );

    // Docs walk the loop end to end.
    let architecture = read("docs/ARCHITECTURE.md");
    assert!(
        architecture.contains("The closed tail-latency loop"),
        "docs/ARCHITECTURE.md must document the closed loop"
    );
    for needle in ["WorkloadCurve", "TailLatency", "p99_ms", "retreat"] {
        assert!(
            architecture.contains(needle),
            "docs/ARCHITECTURE.md closed-loop section must mention {needle}"
        );
    }
    assert!(
        read("docs/PAPER_MAP.md").contains("WorkloadCurve"),
        "docs/PAPER_MAP.md must map the closed loop"
    );
}

#[test]
fn release_profile_is_tuned_for_benchmarking() {
    let root = repo_root();
    let root_manifest =
        fs::read_to_string(root.join("Cargo.toml")).expect("root Cargo.toml exists");
    assert!(
        root_manifest.contains("[profile.release]"),
        "release profile tuning missing"
    );
    assert!(
        root_manifest.contains("codegen-units = 1"),
        "release profile should pin codegen-units = 1"
    );
    assert!(
        root_manifest.contains("lto"),
        "release profile should enable LTO"
    );
}

/// Pins the parallel-barrier-replay / million-device-scale surface
/// (PR 9): the replay module and its doc section, the `ReplayMode`
/// knob, the scale row in the paper map, the `million_fleet` example
/// (CI smoke at 100 k devices rides the matrixed examples loop), and
/// the bench gate's single-retry policy.
#[test]
fn parallel_replay_and_scale_surface_is_pinned() {
    let root = repo_root();
    let read = |p: &str| fs::read_to_string(root.join(p)).unwrap_or_else(|e| panic!("{p}: {e}"));

    // The replay worker module exists and owns the scoped fan-out.
    let replay = read("crates/fleet/src/replay.rs");
    assert!(
        replay.contains("std::thread::scope"),
        "replay.rs must fan regions out over a scoped thread pool"
    );
    assert!(
        read("crates/fleet/src/scenario.rs").contains("pub enum ReplayMode"),
        "the ReplayMode knob must live on the scenario"
    );

    // Docs: the ARCHITECTURE section and the PAPER_MAP scale row.
    let architecture = read("docs/ARCHITECTURE.md");
    assert!(
        architecture.contains("Parallel barrier replay"),
        "docs/ARCHITECTURE.md must document the parallel barrier replay"
    );
    for needle in [
        "ReplayMode",
        "fixed region order",
        "crates/fleet/src/replay.rs",
    ] {
        assert!(
            architecture.contains(needle),
            "docs/ARCHITECTURE.md replay section must mention {needle}"
        );
    }
    let paper_map = read("docs/PAPER_MAP.md");
    assert!(
        paper_map.contains("million devices") && paper_map.contains("ReplayMode"),
        "docs/PAPER_MAP.md must carry the million-device scale row"
    );

    // The analyzer admits exactly the two sanctioned concurrency sites.
    let rules = read("crates/analyzer/src/rules.rs");
    assert!(
        rules.contains("crates/fleet/src/engine.rs")
            && rules.contains("crates/fleet/src/replay.rs"),
        "thread-confinement must carve out engine.rs and replay.rs"
    );

    // The flagship scale example is registered and self-describing.
    assert!(
        read("crates/lens/Cargo.toml").contains("path = \"../../examples/million_fleet.rs\""),
        "million_fleet example must be registered on the facade"
    );
    let example = read("examples/million_fleet.rs");
    assert!(
        example.contains("LENS_MILLION_FLEET_POP"),
        "million_fleet must scale its population via LENS_MILLION_FLEET_POP"
    );

    // The proptest pin: parallel replay ≡ sequential replay.
    assert!(
        read("tests/cross_crate_props.rs").contains("ReplayMode::Sequential"),
        "cross_crate_props must pin parallel vs sequential replay"
    );

    // bench_gate earns one re-measure before failing.
    assert!(
        read("crates/bench/src/bin/bench_gate.rs").contains("re-measured"),
        "bench_gate must re-measure once before declaring a regression"
    );
}

/// Pins the staged split-inference pipeline surface (PR 10): the three
/// implementing modules, the `PIPELINES.md` walkthrough and its links,
/// the paper-map split-decision rows, the `split_pipeline` test/example
/// registrations, the `pipeline/10000` bench + gate + baseline, the
/// analyzer's transfer-pricing scope + fixture, and the CI
/// release-determinism step.
#[test]
fn staged_pipeline_surface_is_pinned() {
    let root = repo_root();
    let read = |p: &str| fs::read_to_string(root.join(p)).unwrap_or_else(|e| panic!("{p}: {e}"));

    // The three implementing modules live where the docs say they do.
    assert!(
        read("crates/space/src/staged.rs").contains("pub struct StagedPlan"),
        "crates/space/src/staged.rs must define StagedPlan"
    );
    assert!(
        read("crates/wireless/src/transfer.rs").contains("pub struct TransferModel"),
        "crates/wireless/src/transfer.rs must define TransferModel"
    );
    let pipeline = read("crates/fleet/src/pipeline.rs");
    assert!(
        pipeline.contains("pub struct PipelineSpec") && pipeline.contains("MAX_PIPELINE_DEPTH"),
        "crates/fleet/src/pipeline.rs must define PipelineSpec and its depth cap"
    );

    // The walkthrough document exists, covers the load-bearing pieces,
    // and is linked from the README, ARCHITECTURE, and the fleet landing.
    let pipelines_doc = read("docs/PIPELINES.md");
    for needle in [
        "StagedPlan",
        "TransferModel",
        "PipelineSpec",
        "(arrival_us, device_id, stage)",
        "one epoch later at the same epoch offset",
        "split_pipeline",
    ] {
        assert!(
            pipelines_doc.contains(needle),
            "docs/PIPELINES.md must cover {needle}"
        );
    }
    assert!(
        read("README.md").contains("docs/PIPELINES.md"),
        "README must link docs/PIPELINES.md"
    );
    let architecture = read("docs/ARCHITECTURE.md");
    assert!(
        architecture.contains("## Staged pipelines")
            && architecture.contains("PIPELINES.md")
            && architecture.contains("PipelineSpec"),
        "docs/ARCHITECTURE.md must carry the staged-pipelines section"
    );
    let fleet_lib = read("crates/fleet/src/lib.rs");
    assert!(
        fleet_lib.contains("Staged pipelines") && fleet_lib.contains("PIPELINES.md"),
        "the lens-fleet landing page must document staged pipelines"
    );

    // Paper map: the split-decision rows cite the related work that
    // motivates multi-cut placement.
    let paper_map = read("docs/PAPER_MAP.md");
    for needle in ["StagedPlan", "2111.02489", "2003.06464"] {
        assert!(
            paper_map.contains(needle),
            "docs/PAPER_MAP.md split rows must mention {needle}"
        );
    }

    // Test + example are registered on the facade.
    let facade_manifest = read("crates/lens/Cargo.toml");
    assert!(
        facade_manifest.contains("path = \"../../tests/split_pipeline.rs\""),
        "split_pipeline test must be registered on the facade"
    );
    assert!(
        facade_manifest.contains("path = \"../../examples/split_pipeline.rs\""),
        "split_pipeline example must be registered on the facade"
    );

    // Bench + gate price the pipelined barrier against a checked-in
    // same-machine baseline.
    assert!(
        read("crates/bench/benches/fleet_step.rs").contains("pipeline/10000"),
        "fleet_step bench must measure the pipelined path"
    );
    assert!(
        read("crates/bench/src/bin/bench_gate.rs").contains("fleet/pipeline/10000"),
        "bench_gate must gate the pipelined run"
    );
    let bench_json = read("crates/bench/benches/BENCH_fleet.json");
    let at = bench_json
        .find("\"pipeline/10000\"")
        .expect("BENCH_fleet.json missing pipeline/10000");
    assert!(
        bench_json[at..bench_json[at..].find('}').unwrap() + at]
            .contains("after_ns_per_inference_event"),
        "BENCH_fleet.json pipeline/10000 must carry the gate's ns/event key"
    );

    // The analyzer covers the two integer-pricing modules, with a seeded
    // fixture proving float-accumulation fires there.
    let rules = read("crates/analyzer/src/rules.rs");
    assert!(
        rules.contains("crates/wireless/src/transfer.rs")
            && rules.contains("crates/fleet/src/pipeline.rs"),
        "float-accumulation must scope to the transfer-pricing modules"
    );
    assert!(
        root.join("crates/analyzer/fixtures/transfer-pricing")
            .is_dir(),
        "transfer-pricing fixture tree is missing"
    );

    // CI runs the determinism suite in release mode (the example smoke
    // run rides the matrixed examples loop).
    assert!(
        read(".github/workflows/ci.yml")
            .contains("cargo test --release -q --locked -p lens --test split_pipeline"),
        "CI must run the split-pipeline suite in release mode"
    );
}

/// Anti-drift pin for the README's workspace inventory: every crate
/// directory and every example file must be mentioned by name. A new
/// crate or example that skips the README fails here instead of rotting
/// the "N crates / N examples" story the way lens-analyzer and the
/// example count once did.
#[test]
fn readme_names_every_crate_and_example() {
    let root = repo_root();
    let readme = fs::read_to_string(root.join("README.md")).expect("README.md exists");

    for crate_dir in list_dir(&root.join("crates")) {
        if !crate_dir.is_dir() {
            continue;
        }
        let dir_name = crate_dir.file_name().unwrap().to_string_lossy().to_string();
        let name = if dir_name == "lens" {
            "`lens`".to_string()
        } else {
            format!("lens-{dir_name}")
        };
        assert!(
            readme.contains(&name),
            "README must name crate {name} (workspace inventory drift)"
        );
    }

    for example in list_dir(&root.join("examples")) {
        if example.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let stem = example.file_stem().unwrap().to_string_lossy().to_string();
        assert!(
            readme.contains(&stem),
            "README must name example {stem} (example inventory drift)"
        );
    }

    // The crate-count sentence must agree with the directory listing,
    // so the "Fourteen crates" drift cannot recur.
    let crate_count = list_dir(&root.join("crates"))
        .iter()
        .filter(|p| p.is_dir())
        .count();
    assert_eq!(
        crate_count, 15,
        "crate count changed — update README.md and docs/ARCHITECTURE.md \
         ('Fifteen crates') and this pin together"
    );
    assert!(
        readme.contains("Fifteen crates"),
        "README workspace-layout sentence must say 'Fifteen crates'"
    );
    assert!(
        fs::read_to_string(root.join("docs/ARCHITECTURE.md"))
            .expect("ARCHITECTURE.md exists")
            .contains("Fifteen crates"),
        "docs/ARCHITECTURE.md crate-DAG sentence must say 'Fifteen crates'"
    );
}
