//! End-to-end integration tests: the full LENS pipeline (predictor
//! training → paired searches → post-hoc partitioning → frontier metrics →
//! runtime analysis), at a reduced-but-real budget.

use lens::prelude::*;

fn build(seed: u64, iters: usize, init: usize) -> Lens {
    Lens::builder()
        .technology(WirelessTechnology::Wifi)
        .expected_throughput(Mbps::new(3.0))
        .device(DeviceProfile::jetson_tx2_gpu())
        .use_predictor(false) // ground truth keeps tests fast & exact
        .iterations(iters)
        .initial_samples(init)
        .seed(seed)
        .build()
        .expect("lens builds")
}

#[test]
fn full_pipeline_reproducible_end_to_end() {
    let run = || {
        let lens = build(42, 8, 8);
        let outcome = lens.search().expect("search runs");
        let front = outcome.pareto_front();
        let objectives: Vec<Vec<f64>> = front.objectives().iter().map(|o| o.to_vec()).collect();
        objectives
    };
    assert_eq!(run(), run());
}

#[test]
fn lens_frontier_is_never_dominated_by_raw_traditional() {
    // For the *same* encodings, the LENS objective vector is <= the
    // Traditional one; therefore the raw Traditional frontier can never
    // strictly dominate the whole LENS frontier. With a matched budget and
    // seed, check the coverage metrics make sense.
    let lens = build(7, 12, 10);
    let lens_outcome = lens.search().expect("lens search");
    let trad_outcome = lens.traditional_search().expect("traditional search");

    let lf = lens_outcome.front_2d(0, 2);
    let tf = trad_outcome.front_2d(0, 2);
    let cmp = FrontierComparison::between(&lf.objectives(), &tf.objectives());
    // Sanity bounds; exact values are seed-dependent.
    assert!(cmp.lens_dominates_pct >= 0.0 && cmp.lens_dominates_pct <= 100.0);
    assert!(cmp.combined.total() >= 1);
    // With partitioning available and WiFi at 3 Mbps, LENS must find at
    // least one candidate whose best deployment is distributed.
    let distributed = lens_outcome.count_where(|_| false)
        + lens_outcome
            .explored()
            .iter()
            .filter(|c| {
                c.best_energy_option != DeploymentKind::AllEdge
                    || c.best_latency_option != DeploymentKind::AllEdge
            })
            .count();
    assert!(distributed > 0, "no candidate benefited from distribution");
}

#[test]
fn post_hoc_partitioning_weakly_improves_every_member() {
    let lens = build(13, 10, 8);
    let trad = lens.traditional_search().expect("traditional search");
    let partitioned = lens.partition_frontier(&trad).expect("partitioning runs");
    let members = trad.pareto_candidates();
    assert_eq!(partitioned.len(), members.len());
    for (before, after) in members.iter().zip(&partitioned) {
        assert!(after.objectives.latency_ms <= before.objectives.latency_ms + 1e-9);
        assert!(after.objectives.energy_mj <= before.objectives.energy_mj + 1e-9);
        assert_eq!(after.objectives.error_pct, before.objectives.error_pct);
    }
}

#[test]
fn criteria_counts_cover_the_whole_exploration() {
    let lens = build(3, 6, 6);
    let outcome = lens.search().expect("search runs");
    let counts = CriteriaCounts::of(&outcome, (1e9, 1e9), (1e9, 1e9));
    assert_eq!(counts.err_loose, outcome.explored().len());
    assert_eq!(counts.combined, outcome.explored().len());
}

#[test]
fn frontier_member_supports_runtime_analysis() {
    // Take a frontier member, rebuild its deployment options, compute its
    // dominance map, replay a trace: dynamic must never lose to any fixed
    // option with an instant tracker.
    let lens = build(21, 10, 8);
    let outcome = lens.search().expect("search runs");
    let member = outcome.pareto_candidates()[0].clone();
    let eval = lens
        .evaluator()
        .evaluate(&member.encoding)
        .expect("re-evaluation");
    let sim = RuntimeSimulator::new(eval.perf.options.clone()).expect("options");
    let trace = TraceGenerator::lte_like(Mbps::new(6.0)).generate(5);
    for metric in [Metric::Latency, Metric::Energy] {
        let report = sim
            .run(&trace, metric, ThroughputTracker::last_sample())
            .expect("simulation");
        for i in 0..report.fixed().len() {
            assert!(
                report.gain_over(i) >= -1e-9,
                "dynamic lost to {} on {metric}",
                report.fixed()[i].label
            );
        }
    }
}

#[test]
fn trained_predictor_pipeline_runs() {
    // The default (paper) configuration: regression predictors in the loop.
    let lens = Lens::builder()
        .technology(WirelessTechnology::Wifi)
        .expected_throughput(Mbps::new(3.0))
        .iterations(3)
        .initial_samples(4)
        .seed(9)
        .build()
        .expect("lens builds with predictor");
    let outcome = lens.search().expect("search runs");
    assert_eq!(outcome.explored().len(), 7);
    for c in outcome.explored() {
        assert!(c.objectives.latency_ms > 0.0);
        assert!(c.objectives.energy_mj > 0.0);
    }
}

#[test]
fn lte_and_threeg_configurations_run() {
    for tech in [WirelessTechnology::Lte, WirelessTechnology::ThreeG] {
        let lens = Lens::builder()
            .technology(tech)
            .expected_throughput(Mbps::new(1.5))
            .device(DeviceProfile::jetson_tx2_cpu())
            .use_predictor(false)
            .iterations(2)
            .initial_samples(3)
            .seed(1)
            .build()
            .expect("builds");
        let outcome = lens.search().expect("search runs");
        assert_eq!(outcome.explored().len(), 5);
    }
}
