//! Repo-level integration tests for staged split-inference pipelines
//! (docs/PIPELINES.md): the stage-conservation invariant, the 1/2/4-shard
//! and Parallel-vs-Sequential bit-identity pins for pipelined runs in
//! both fidelities, and the zero-transfer equivalence pin — a depth-1
//! pipeline is *structurally* the monolithic offload path.

use lens::prelude::*;

/// AlexNet-ish conv5 / fc activation footprints (bytes): the classic
/// two-cut split the paper's layer-distribution axis reasons about.
const CONV_BOUNDARY_BYTES: u64 = 150_528;
const FC_BOUNDARY_BYTES: u64 = 86_528;

fn staged_scenario(
    shards: usize,
    fidelity: CloudSimFidelity,
    replay: ReplayMode,
    pipeline: Option<PipelineSpec>,
) -> FleetScenario {
    // Congested enough that queue waits, batching, and failover are all
    // live — pipelining must keep its bit-identity under real contention,
    // not just on an idle tier.
    let serving = CloudServing::new(vec![
        BackendConfig::new("gpu", 1, 2000.0, 10.0).with_batching(32, 500.0),
        BackendConfig::new("cpu", 1, 500.0, 250.0).with_batching(4, 250.0),
    ])
    .with_priority(0.2)
    .with_failover(FailoverPolicy::SiblingRegion { penalty_ms: 80.0 });
    let mut builder = FleetScenario::builder()
        .population(3000)
        .horizon(Millis::new(1_200_000.0)) // 20 minutes
        .trace_interval(Millis::new(60_000.0))
        .serving(serving)
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Energy)
        .seed(23)
        .shards(shards)
        .fidelity(fidelity)
        .replay(replay);
    if let Some(pipeline) = pipeline {
        builder = builder.pipeline(pipeline);
    }
    builder.build().expect("valid scenario")
}

fn run(scenario: FleetScenario) -> FleetReport {
    FleetEngine::new(scenario)
        .expect("engine builds")
        .run()
        .expect("run succeeds")
}

fn three_stage() -> PipelineSpec {
    PipelineSpec::new(vec![CONV_BOUNDARY_BYTES, FC_BOUNDARY_BYTES])
}

#[test]
fn every_admitted_stage_completes_stage_conservation() {
    // Conservation: each offload becomes exactly `depth` stage requests
    // — stage 1 at the device's arrival, stages 2.. chained from
    // completions — and the post-horizon flush waves drain every chain.
    // So each stage's completion count must equal the offload count, in
    // both fidelities.
    for fidelity in [CloudSimFidelity::Fluid, CloudSimFidelity::PerRequest] {
        let report = run(staged_scenario(
            2,
            fidelity,
            ReplayMode::Auto,
            Some(three_stage()),
        ));
        assert!(report.offloaded() > 0, "{fidelity:?}: nothing offloaded");
        let stages = report.stage_completions();
        assert_eq!(stages.len(), 3, "{fidelity:?}: expected 3 stages");
        for (k, &count) in stages.iter().enumerate() {
            assert_eq!(
                count,
                report.offloaded(),
                "{fidelity:?}: stage {} lost requests",
                k + 1
            );
        }
        assert!(
            report.transfer_ms() > 0.0,
            "{fidelity:?}: staged offloads must pay transfers"
        );
        // Only the per-request tier has exact per-stage sojourns; the
        // fluid tier books the ledger without a latency sample.
        for (k, hist) in report.stage_sojourn().iter().enumerate() {
            let expected = match fidelity {
                CloudSimFidelity::PerRequest => stages[k],
                CloudSimFidelity::Fluid => 0,
            };
            assert_eq!(
                hist.count(),
                expected,
                "{fidelity:?}: stage {} sojourns",
                k + 1
            );
        }
    }
}

#[test]
fn staged_report_is_bit_identical_across_1_2_4_shards() {
    // The shard-invariance pin extended to pipelined runs: chained stage
    // arrivals are spawned barrier-side from completions whose order is
    // already shard-invariant, and merge on the
    // (arrival_us, device_id, stage) key — so the report, stage ledger
    // and transfer totals included, cannot depend on sharding.
    for fidelity in [CloudSimFidelity::Fluid, CloudSimFidelity::PerRequest] {
        let one = run(staged_scenario(
            1,
            fidelity,
            ReplayMode::Auto,
            Some(three_stage()),
        ));
        for shards in [2, 4] {
            let other = run(staged_scenario(
                shards,
                fidelity,
                ReplayMode::Auto,
                Some(three_stage()),
            ));
            assert_eq!(
                one, other,
                "{fidelity:?}: report differs at {shards} shards"
            );
            assert_eq!(one.digest(), other.digest());
        }
        assert!(one.stage_completions().iter().all(|&c| c > 0));
    }
}

#[test]
fn staged_parallel_replay_is_bit_identical_to_sequential() {
    // Pipelining adds barrier-side work (stage chaining) to the replay
    // workers; it must stay region-local so fanning the workers out over
    // threads cannot change a bit of the output.
    for fidelity in [CloudSimFidelity::Fluid, CloudSimFidelity::PerRequest] {
        let sequential = run(staged_scenario(
            2,
            fidelity,
            ReplayMode::Sequential,
            Some(three_stage()),
        ));
        let parallel = run(staged_scenario(
            2,
            fidelity,
            ReplayMode::Parallel,
            Some(three_stage()),
        ));
        assert_eq!(
            sequential, parallel,
            "{fidelity:?}: parallel staged replay diverged"
        );
        assert_eq!(sequential.digest(), parallel.digest());
    }
}

#[test]
fn depth_one_pipeline_is_bit_identical_to_monolithic_offload() {
    // The zero-transfer equivalence pin: a pipeline with no boundaries
    // is not "a pipeline that happens to cost nothing" — it is the same
    // code path as no pipeline at all (`staged_pipeline()` filters it
    // out), so the reports and digests must match bit for bit.
    for fidelity in [CloudSimFidelity::Fluid, CloudSimFidelity::PerRequest] {
        let monolithic = run(staged_scenario(2, fidelity, ReplayMode::Auto, None));
        let depth_one = run(staged_scenario(
            2,
            fidelity,
            ReplayMode::Auto,
            Some(PipelineSpec::default()),
        ));
        assert_eq!(
            monolithic, depth_one,
            "{fidelity:?}: depth-1 pipeline perturbed the monolithic path"
        );
        assert_eq!(monolithic.digest(), depth_one.digest());
        assert!(depth_one.stage_completions().is_empty());
        assert_eq!(depth_one.transfer_ms(), 0.0);
    }
}

#[test]
fn staging_costs_latency_and_poor_links_pay_more() {
    // Sanity on the economics the example sweeps: a staged offload rides
    // the serving tier once per stage and pays every boundary transfer,
    // so mean latency must strictly exceed the monolithic run's; and the
    // transfer total must grow when the boundary fattens.
    let monolithic = run(staged_scenario(
        2,
        CloudSimFidelity::PerRequest,
        ReplayMode::Auto,
        None,
    ));
    let staged = run(staged_scenario(
        2,
        CloudSimFidelity::PerRequest,
        ReplayMode::Auto,
        Some(three_stage()),
    ));
    assert!(
        staged.latency().mean() > monolithic.latency().mean(),
        "staging must cost latency: staged {} vs monolithic {}",
        staged.latency().mean(),
        monolithic.latency().mean()
    );
    let fat = run(staged_scenario(
        2,
        CloudSimFidelity::PerRequest,
        ReplayMode::Auto,
        Some(PipelineSpec::new(vec![CONV_BOUNDARY_BYTES * 8])),
    ));
    let thin = run(staged_scenario(
        2,
        CloudSimFidelity::PerRequest,
        ReplayMode::Auto,
        Some(PipelineSpec::new(vec![FC_BOUNDARY_BYTES / 8])),
    ));
    assert!(
        fat.transfer_ms() > thin.transfer_ms(),
        "fatter boundaries must pay more transfer: {} vs {}",
        fat.transfer_ms(),
        thin.transfer_ms()
    );
}
