//! The closed-loop regression suite: time-varying workload curves drive
//! per-device offload intent, the measured per-request tail drives the
//! autoscaler, and the published tail drives device retreat — and the
//! whole loop stays bit-identical across 1/2/4 shards in both fidelity
//! modes.
//!
//! Three canonical curves are replayed: the diurnal profile, a flash
//! crowd, and a regional wave. For each, the suite pins full-report
//! equality (digest included), the scaling-event count, and the
//! device-retreat count against the single-shard run.

use lens::prelude::*;

/// A tail-targeting, tail-deadlined scenario under the given curve: one
/// deliberately small GPU pool whose p99 blows past both the scaler
/// target and the device deadline whenever the curve peaks.
fn closed_loop_scenario(
    curve: &WorkloadCurve,
    shards: usize,
    fidelity: CloudSimFidelity,
) -> FleetScenario {
    let serving = CloudServing::new(vec![BackendConfig::new("gpu", 1, 500.0, 10.0)
        .with_batching(8, 250.0)
        .with_autoscaler(
            Autoscaler::new(
                ScalingSignal::TailLatency { target_us: 500_000 },
                1.0,
                0.25,
                1,
                6,
            )
            .with_alpha(0.6)
            .with_cooldown(1),
        )]);
    FleetScenario::builder()
        .population(1500)
        .horizon(Millis::new(1_200_000.0)) // 20 minutes
        .trace_interval(Millis::new(60_000.0))
        .serving(serving)
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Latency)
        .seed(11)
        .shards(shards)
        .fidelity(fidelity)
        .workload(curve.clone())
        .tail_deadline(Millis::new(1_000.0))
        .build()
        .expect("valid scenario")
}

fn run(curve: &WorkloadCurve, shards: usize, fidelity: CloudSimFidelity) -> FleetReport {
    FleetEngine::new(closed_loop_scenario(curve, shards, fidelity))
        .expect("engine builds")
        .run()
        .expect("run succeeds")
}

/// The shared pin: for one curve, both fidelities produce reports that
/// are bit-identical across 1/2/4 shards, with shard-invariant scaling
/// and retreat counts; only the per-request run retreats (fluid
/// publishes no tail, so devices see no signal).
fn pin_curve(curve: &WorkloadCurve, name: &str) {
    for fidelity in [CloudSimFidelity::Fluid, CloudSimFidelity::PerRequest] {
        let one = run(curve, 1, fidelity);
        for shards in [2, 4] {
            let other = run(curve, shards, fidelity);
            assert_eq!(one, other, "{name}/{fidelity:?} differs at {shards} shards");
            assert_eq!(one.digest(), other.digest());
            assert_eq!(one.scaling_events(), other.scaling_events());
            assert_eq!(one.retreated(), other.retreated());
        }
        // The loop is live, not vacuous: the curve's peak congests the
        // deliberately small pool, so the tier scales in both fidelities…
        assert!(one.scaling_events() > 0, "{name}/{fidelity:?} never scaled");
        match fidelity {
            // …and only the per-request run publishes a tail for devices
            // to retreat from.
            CloudSimFidelity::PerRequest => assert!(
                one.retreated() > 0,
                "{name}: a blown per-request tail must trigger retreats"
            ),
            CloudSimFidelity::Fluid => assert_eq!(
                one.retreated(),
                0,
                "{name}: fluid mode has no tail signal, so no retreats"
            ),
        }
    }
}

#[test]
fn diurnal_curve_closed_loop_is_bit_identical_across_shards() {
    pin_curve(&WorkloadCurve::diurnal(Millis::new(1_200_000.0)), "diurnal");
}

#[test]
fn flash_crowd_closed_loop_is_bit_identical_across_shards() {
    pin_curve(
        &WorkloadCurve::flash_crowd(Millis::new(360_000.0), Millis::new(300_000.0)),
        "flash_crowd",
    );
}

#[test]
fn regional_wave_closed_loop_is_bit_identical_across_shards() {
    pin_curve(
        &WorkloadCurve::regional_wave(Millis::new(300_000.0), Millis::new(120_000.0)),
        "regional_wave",
    );
}

/// The no-thundering-herd pin: the microsim holds its last *measured*
/// p99 across idle epochs, so a retreated fleet is not stampeded back
/// the moment the tier goes quiet. The curve carves a dead zone (zero
/// offload intent) into the middle of the run: the tier completes
/// nothing for four straight epochs, and without the hold the barrier
/// would publish "no signal", releasing every retreated device at once
/// in the first epoch after the gap — re-saturating the 1-slot tier and
/// oscillating. With the hold, retreat stays armed straight through.
#[test]
fn held_tail_signal_prevents_a_thundering_herd_after_idle_epochs() {
    const EPOCH_US: u64 = 60_000_000;
    // Offload intent: full for 8 epochs, dead for 4, full for 8. The
    // 810 ms unloaded service time alone blows the 500 ms tail budget,
    // so every *measured* epoch keeps retreat armed — the only way the
    // herd can come back is a barrier that publishes no signal at all.
    let curve = WorkloadCurve::from_phases_fp(vec![
        (0, 1_000_000),
        (8 * EPOCH_US, 0),
        (12 * EPOCH_US, 1_000_000),
    ]);
    let serving = CloudServing::new(vec![BackendConfig::new("gpu", 1, 800.0, 10.0)])
        .with_admission(AdmissionPolicy::Deadline {
            max_wait_ms: 2_000.0,
        });
    let scenario = FleetScenario::builder()
        .population(400)
        .horizon(Millis::new(1_200_000.0)) // 20 epochs
        .trace_interval(Millis::new(60_000.0))
        .serving(serving)
        .policy(FleetPolicy::Fixed(DeploymentKind::AllCloud))
        .metric(Metric::Latency)
        .seed(11)
        .shards(2)
        .fidelity(CloudSimFidelity::PerRequest)
        .workload(curve)
        .tail_deadline(Millis::new(500.0))
        .build()
        .expect("valid scenario");
    let (_, telemetry) = FleetEngine::new(scenario)
        .expect("engine builds")
        .run_traced()
        .expect("run succeeds");

    let mut retreats_per_epoch = [0u64; 20];
    for event in telemetry.recorder.events() {
        if let TraceEvent::Retreat { time_us, .. } = event {
            retreats_per_epoch[(time_us / EPOCH_US) as usize] += 1;
        }
    }
    // Epoch 0 runs before the first barrier publishes any tail; the dead
    // zone (epochs 8–11) draws no offloads at all, so neither can
    // retreat. Every other epoch must — the one that matters being
    // epoch 12, the first full-intent epoch after the idle gap, where a
    // dropped signal would instead admit the whole herd.
    for (epoch, &retreats) in retreats_per_epoch.iter().enumerate() {
        if epoch == 0 || (8..12).contains(&epoch) {
            assert_eq!(retreats, 0, "epoch {epoch} cannot retreat: {retreats}");
        } else {
            assert!(
                retreats > 0,
                "epoch {epoch} must keep retreating (held tail signal); \
                 a zero here is the thundering herd"
            );
        }
    }
}

#[test]
fn closed_loop_telemetry_is_bit_identical_across_shards() {
    // The observability face of the loop: curve-phase and retreat events
    // land in the flight recorder, the curve multiplier lands in the
    // metrics timelines, and both digests stay shard-invariant.
    let curve = WorkloadCurve::flash_crowd(Millis::new(360_000.0), Millis::new(300_000.0));
    let traced = |shards: usize| {
        FleetEngine::new(closed_loop_scenario(
            &curve,
            shards,
            CloudSimFidelity::PerRequest,
        ))
        .expect("engine builds")
        .run_traced()
        .expect("run succeeds")
    };
    let (one_report, one) = traced(1);
    for shards in [2, 4] {
        let (report, telemetry) = traced(shards);
        assert_eq!(one_report.digest(), report.digest());
        assert_eq!(
            one.trace_digest(),
            telemetry.trace_digest(),
            "trace differs at {shards} shards"
        );
        assert_eq!(
            one.metrics_digest(),
            telemetry.metrics_digest(),
            "metrics timeline differs at {shards} shards"
        );
    }
    let kinds: Vec<&str> = one.recorder.events().map(|e| e.kind()).collect();
    assert!(
        kinds.contains(&"curve_phase"),
        "curve plateaus must be traced"
    );
    assert!(kinds.contains(&"retreat"), "device retreats must be traced");
    assert!(
        kinds.contains(&"scaling_step"),
        "tail-driven scaling must be traced"
    );
    assert!(
        one.metrics
            .iter()
            .any(|(name, points)| name.starts_with("curve_multiplier_fp/") && !points.is_empty()),
        "the curve multiplier must be sampled per epoch"
    );
}
