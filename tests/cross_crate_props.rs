//! Cross-crate property tests: invariants that span the whole stack.

use lens::core::{PartitionPolicy, PerfEvaluator};
use lens::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn perf(policy: PartitionPolicy, tu: f64) -> PerfEvaluator {
    PerfEvaluator::new(
        WirelessLink::new(WirelessTechnology::Wifi, Mbps::new(tu)),
        Arc::new(DeviceProfile::jetson_tx2_gpu()),
        policy,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any sampled architecture: decodes on both views, has finite strictly
    /// positive objectives, and the partition-aware evaluation never loses
    /// to the edge-only evaluation on either performance metric.
    #[test]
    fn prop_partition_within_never_worse(seed in 0u64..5000, tu in 0.5f64..40.0) {
        let deploy = VggSpace::for_deployment();
        let mut rng = StdRng::seed_from_u64(seed);
        let enc = deploy.sample(&mut rng);
        let analysis = deploy.decode(&enc).unwrap().analyze().unwrap();

        let lens = perf(PartitionPolicy::WithinOptimization, tu).evaluate(&analysis).unwrap();
        let edge = perf(PartitionPolicy::EdgeOnly, tu).evaluate(&analysis).unwrap();

        prop_assert!(lens.latency.get().is_finite() && lens.latency.get() > 0.0);
        prop_assert!(lens.energy.get().is_finite() && lens.energy.get() > 0.0);
        prop_assert!(lens.latency <= edge.latency);
        prop_assert!(lens.energy <= edge.energy);
    }

    /// The Algorithm 1 minimum equals the brute-force minimum over the
    /// enumerated options at the evaluation throughput.
    #[test]
    fn prop_alg1_min_is_true_min(seed in 0u64..5000, tu in 0.5f64..40.0) {
        let deploy = VggSpace::for_deployment();
        let mut rng = StdRng::seed_from_u64(seed);
        let enc = deploy.sample(&mut rng);
        let analysis = deploy.decode(&enc).unwrap().analyze().unwrap();
        let eval = perf(PartitionPolicy::WithinOptimization, tu).evaluate(&analysis).unwrap();

        let tu_m = Mbps::new(tu);
        for metric in [Metric::Latency, Metric::Energy] {
            let brute = eval.perf_min(metric, tu_m);
            let reported = match metric {
                Metric::Latency => eval.latency.get(),
                Metric::Energy => eval.energy.get(),
            };
            prop_assert!((brute - reported).abs() < 1e-9,
                "{metric}: brute {brute} vs reported {reported}");
        }
    }

    /// The dominance map over a sampled architecture's options agrees with
    /// pointwise minimization at arbitrary throughputs.
    #[test]
    fn prop_dominance_map_matches_best_at(seed in 0u64..2000, tu in 0.1f64..80.0) {
        let deploy = VggSpace::for_deployment();
        let mut rng = StdRng::seed_from_u64(seed);
        let enc = deploy.sample(&mut rng);
        let analysis = deploy.decode(&enc).unwrap().analyze().unwrap();
        let eval = perf(PartitionPolicy::WithinOptimization, 3.0).evaluate(&analysis).unwrap();

        let map = DominanceMap::build(&eval.options, Metric::Energy).unwrap();
        let tu_m = Mbps::new(tu);
        let by_map = eval.options[map.best_at(tu_m)].cost(Metric::Energy).at(tu_m);
        let (_, brute) =
            DeploymentPlanner::best_at(&eval.options, Metric::Energy, tu_m).unwrap();
        prop_assert!((by_map - brute).abs() < 1e-9);
    }

    /// Boundary behavior: looking up *exactly* at every pairwise threshold
    /// of a sampled architecture's dominance map still returns a pointwise
    /// argmin (at a crossover both sides cost the same; the lookup must not
    /// fall into a wrong segment).
    #[test]
    fn prop_threshold_exact_lookup_is_argmin(seed in 0u64..2000) {
        let deploy = VggSpace::for_deployment();
        let mut rng = StdRng::seed_from_u64(seed);
        let enc = deploy.sample(&mut rng);
        let analysis = deploy.decode(&enc).unwrap().analyze().unwrap();
        let eval = perf(PartitionPolicy::WithinOptimization, 3.0).evaluate(&analysis).unwrap();

        for metric in [Metric::Latency, Metric::Energy] {
            let map = DominanceMap::build(&eval.options, metric).unwrap();
            for threshold in map.thresholds() {
                let by_map = eval.options[map.best_at(threshold)].cost(metric).at(threshold);
                let (_, brute) =
                    DeploymentPlanner::best_at(&eval.options, metric, threshold).unwrap();
                prop_assert!((by_map - brute).abs() < 1e-9,
                    "{metric} at {threshold}: {by_map} vs {brute}");
            }
        }
    }

    /// A tracker fed a step-change trace converges toward the new level
    /// monotonically, from any alpha, and a single-option dominance map
    /// never switches whatever the tracker reports.
    #[test]
    fn prop_step_trace_tracker_and_degenerate_map(
        alpha in 0.05f64..1.0,
        low in 0.5f64..5.0,
        high in 10.0f64..50.0,
    ) {
        let mut tracker = ThroughputTracker::new(alpha);
        for _ in 0..30 {
            tracker.observe(Mbps::new(low));
        }
        let mut prev = tracker.estimate().unwrap().get();
        for _ in 0..30 {
            tracker.observe(Mbps::new(high));
            let est = tracker.estimate().unwrap().get();
            prop_assert!(est >= prev - 1e-12, "estimate regressed: {est} < {prev}");
            prop_assert!(est <= high + 1e-12);
            prev = est;
        }
        // Eventual convergence (30 steps at the smallest alpha ≈ 0.2 of
        // the gap remaining).
        prop_assert!(high - prev < (high - low) * (1.0 - alpha).powi(30) + 1e-9);

        let analysis = zoo::alexnet().analyze().unwrap();
        let perf_profile = profile_network(&analysis, &DeviceProfile::jetson_tx2_cpu());
        let planner = DeploymentPlanner::new(
            WirelessLink::new(WirelessTechnology::Lte, Mbps::new(3.0)));
        let options = planner.enumerate(&analysis, &perf_profile).unwrap();
        let solo = vec![options[0].clone()];
        let map = DominanceMap::build(&solo, Metric::Energy).unwrap();
        prop_assert_eq!(map.segments().len(), 1);
        prop_assert_eq!(map.best_at(Mbps::new(low)), 0);
        prop_assert_eq!(map.best_at(Mbps::new(high)), 0);
    }

    /// Trace CSV round-trip composed with the simulator: same trace, same
    /// totals.
    #[test]
    fn prop_trace_round_trip_stable_simulation(seed in 0u64..500, median in 1.0f64..30.0) {
        let analysis = zoo::alexnet().analyze().unwrap();
        let perf_profile = profile_network(&analysis, &DeviceProfile::jetson_tx2_cpu());
        let planner = DeploymentPlanner::new(
            WirelessLink::new(WirelessTechnology::Lte, Mbps::new(median)));
        let options = planner.enumerate(&analysis, &perf_profile).unwrap();
        let sim = RuntimeSimulator::new(options).unwrap();

        let trace = TraceGenerator::lte_like(Mbps::new(median)).generate(seed);
        let reparsed = ThroughputTrace::from_csv(&trace.to_csv()).unwrap();

        let a = sim.run(&trace, Metric::Energy, ThroughputTracker::last_sample()).unwrap();
        let b = sim.run(&reparsed, Metric::Energy, ThroughputTracker::last_sample()).unwrap();
        // CSV keeps 4 decimal places of Mbps; totals agree to ~0.1%.
        let rel = (a.dynamic().total() - b.dynamic().total()).abs() / a.dynamic().total();
        prop_assert!(rel < 1e-3, "relative deviation {rel}");
    }

    /// Per-request cloud microsim, single-slot FIFO backend: completion
    /// times are monotone in arrival order — one executor serves batches
    /// strictly in sequence and batches fill FIFO, so a later arrival can
    /// never complete before an earlier one.
    #[test]
    fn prop_per_request_fifo_completions_monotone_in_arrival_order(
        seed in 0u64..10_000,
        n in 1usize..80,
        base_ms in 1.0f64..200.0,
        per_item_ms in 0.0f64..20.0,
        max_batch in 1usize..16,
        linger_ms in 0.0f64..200.0,
    ) {
        let serving = CloudServing::new(vec![
            BackendConfig::new("gpu", 1, base_ms, per_item_ms).with_batching(max_batch, linger_ms),
        ]);
        let mut sim = RegionMicrosim::new(&serving);
        // Seeded pseudo-random arrival times (hash-spread, possibly
        // colliding on the same microsecond).
        let mut requests: Vec<OffloadRequest> = (0..n as u64)
            .map(|i| OffloadRequest {
                arrival_us: (seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % 1_000_000,
                device_id: i,
                stage: 1,
                high_priority: false,
                origin_region: 0,
                failed_over: false,
                base_latency_ms: 0.0,
                energy_mj: 0.0,
                switched: false,
            })
            .collect();
        requests.sort_unstable_by_key(|r| (r.arrival_us, r.device_id));
        let mut out = Vec::new();
        sim.run_epoch(&requests, 1_000_000, &mut out);
        sim.flush(&mut out);
        prop_assert_eq!(out.len(), n, "every request must complete");
        let mut completions: Vec<(u64, u64, f64)> = out
            .iter()
            .map(|c| {
                let completion_ms = c.request.arrival_us as f64 / 1000.0 + c.sojourn_ms;
                (c.request.arrival_us, c.request.device_id, completion_ms)
            })
            .collect();
        completions.sort_unstable_by_key(|&(arrival, device, _)| (arrival, device));
        for pair in completions.windows(2) {
            prop_assert!(
                pair[0].2 <= pair[1].2 + 1e-9,
                "FIFO completion order violated: {pair:?}"
            );
        }
    }

    /// Report percentiles are quantiles of one distribution, so every
    /// tail summary a per-request run produces must be monotone
    /// (p50 ≤ p90 ≤ p95 ≤ p99) — for arbitrary seeded scenarios.
    #[test]
    fn prop_per_request_report_percentiles_monotone(
        seed in 0u64..10_000,
        slots in 1usize..4,
        service_ms in 5.0f64..400.0,
    ) {
        let scenario = FleetScenario::builder()
            .population(60)
            .horizon(Millis::new(300_000.0)) // 5 minutes
            .trace_interval(Millis::new(60_000.0))
            .cloud(CloudCapacity::new(slots, service_ms))
            .policy(FleetPolicy::Fixed(DeploymentKind::AllCloud))
            .metric(Metric::Latency)
            .seed(seed)
            .shards(2)
            .fidelity(CloudSimFidelity::PerRequest)
            .build()
            .unwrap();
        let report = FleetEngine::new(scenario).unwrap().run().unwrap();
        prop_assert_eq!(report.inferences(), 300, "60 devices x 5 periods");
        prop_assert!(report.latency().tail_summary().is_monotone());
        prop_assert!(report.energy().tail_summary().is_monotone());
        for region in 0..report.regions().len() {
            prop_assert!(report.region_tail(region).is_monotone());
        }
        for backend in report.backends() {
            prop_assert!(backend.tail().is_monotone());
        }
        let sojourns: u64 = report.cloud_sojourn().iter().map(|h| h.count()).sum();
        prop_assert_eq!(sojourns, report.offloaded());
    }

    /// Autoscaler slot-count timelines are barrier-side functions of
    /// merged integer demand, so — like the rest of the report — they
    /// must be bit-identical across 1/2/4 shards in both fidelity modes,
    /// for arbitrary seeded autoscaler configurations.
    #[test]
    fn prop_autoscaled_slot_timelines_shard_invariant(
        seed in 0u64..10_000,
        signal_choice in 0u8..2,
        scale_up in 0.4f64..4.0,
        cooldown in 0u32..3,
        step in 1usize..4,
        service_ms in 50.0f64..800.0,
    ) {
        let auto = Autoscaler::new(
            if signal_choice == 0 { ScalingSignal::Utilization } else { ScalingSignal::QueueDepth },
            scale_up,
            scale_up / 4.0,
            1,
            10,
        )
        .with_cooldown(cooldown)
        .with_step(step);
        let scenario = |shards: usize, fidelity: CloudSimFidelity| {
            let serving = CloudServing::new(vec![BackendConfig::new("gpu", 1, service_ms, 1.0)
                .with_price(2.0)
                .with_energy(0.5)
                .with_autoscaler(auto)])
            .with_dispatch(DispatchPolicy::CostAware);
            FleetScenario::builder()
                .population(120)
                .horizon(Millis::new(300_000.0)) // 5 minutes
                .trace_interval(Millis::new(60_000.0))
                .serving(serving)
                .policy(FleetPolicy::Fixed(DeploymentKind::AllCloud))
                .metric(Metric::Latency)
                .seed(seed)
                .shards(shards)
                .fidelity(fidelity)
                .build()
                .unwrap()
        };
        for fidelity in [CloudSimFidelity::Fluid, CloudSimFidelity::PerRequest] {
            let one = FleetEngine::new(scenario(1, fidelity)).unwrap().run().unwrap();
            for shards in [2usize, 4] {
                let other = FleetEngine::new(scenario(shards, fidelity)).unwrap().run().unwrap();
                for (a, b) in one.backends().iter().zip(other.backends()) {
                    prop_assert_eq!(
                        &a.slot_timeline,
                        &b.slot_timeline,
                        "{:?} timeline differs at {} shards",
                        fidelity,
                        shards
                    );
                    prop_assert_eq!(a.scaling_events, b.scaling_events);
                    prop_assert_eq!(a.provision_cost(), b.provision_cost());
                }
                prop_assert_eq!(one.digest(), other.digest());
            }
            for b in one.backends() {
                prop_assert_eq!(b.slot_timeline.len(), 5, "one entry per epoch");
                prop_assert!(b.slot_timeline.iter().all(|&s| (1..=10).contains(&s)));
            }
        }
    }

    /// The tail-targeting autoscaler's state machine under arbitrary p99
    /// sequences: it never changes the slot count while a cooldown is
    /// pending, and the count it asks for never leaves
    /// `[min_slots, max_slots]`.
    #[test]
    fn prop_tail_scaler_honors_cooldown_and_bounds(
        p99s in proptest::collection::vec(0.0f64..50_000.0, 1..60),
        target_us in 1u64..5_000_000,
        scale_up in 0.5f64..4.0,
        cooldown in 0u32..4,
        step in 1usize..4,
        min_slots in 1usize..3,
        extra in 0usize..8,
        alpha in 0.05f64..1.0,
    ) {
        let max_slots = min_slots + extra;
        let auto = Autoscaler::new(
            ScalingSignal::TailLatency { target_us },
            scale_up,
            scale_up / 4.0,
            min_slots,
            max_slots,
        )
        .with_cooldown(cooldown)
        .with_step(step)
        .with_alpha(alpha);
        prop_assert!(auto.validate().is_ok());
        let mut state = ScalerState::default();
        let mut slots = min_slots;
        for p99_ms in p99s {
            // The observation both tiers feed the scaler: p99 as a
            // fraction of the tail budget.
            let observed = p99_ms / (target_us as f64 / 1000.0);
            let pending = state.cooldown > 0;
            let next = auto.step(&mut state, observed, slots);
            if pending {
                prop_assert_eq!(next, slots, "scaled during cooldown");
            }
            prop_assert!(
                (min_slots..=max_slots).contains(&next),
                "slot count {} left [{}, {}]", next, min_slots, max_slots
            );
            if next != slots {
                auto.arm(&mut state);
                slots = next;
            }
        }
    }

    /// Parallel barrier replay is a wall-clock knob, not a semantics
    /// knob: for arbitrary seeded multi-region scenarios, forcing the
    /// region replay onto scoped worker threads produces a report
    /// bit-identical to the forced-sequential sweep — in both cloud
    /// fidelities. This is the contract that lets `ReplayMode::Auto`
    /// pick per-host without perturbing any digest.
    #[test]
    fn prop_parallel_replay_bit_identical_to_sequential(
        seed in 0u64..10_000,
        population in 40usize..160,
        share in 0.2f64..0.8,
        slots in 1usize..4,
        service_ms in 50.0f64..800.0,
        max_batch in 1usize..16,
        shards in 1usize..4,
    ) {
        let scenario = |replay: ReplayMode, fidelity: CloudSimFidelity| {
            let serving = CloudServing::new(vec![BackendConfig::new(
                "gpu", slots, service_ms, 2.0,
            )
            .with_batching(max_batch, 100.0)])
            .with_admission(AdmissionPolicy::Deadline { max_wait_ms: 4_000.0 })
            .with_failover(FailoverPolicy::SiblingRegion { penalty_ms: 60.0 });
            FleetScenario::builder()
                .population(population)
                .horizon(Millis::new(300_000.0)) // 5 minutes
                .trace_interval(Millis::new(60_000.0))
                .regions(vec![
                    RegionShare::new(Region::new("USA", Mbps::new(7.5)), share),
                    RegionShare::new(Region::new("S. Korea", Mbps::new(16.1)), 1.0 - share),
                ])
                .serving(serving)
                .policy(FleetPolicy::Fixed(DeploymentKind::AllCloud))
                .metric(Metric::Latency)
                .seed(seed)
                .shards(shards)
                .fidelity(fidelity)
                .replay(replay)
                .build()
                .unwrap()
        };
        for fidelity in [CloudSimFidelity::Fluid, CloudSimFidelity::PerRequest] {
            let sequential = FleetEngine::new(scenario(ReplayMode::Sequential, fidelity))
                .unwrap()
                .run()
                .unwrap();
            let parallel = FleetEngine::new(scenario(ReplayMode::Parallel, fidelity))
                .unwrap()
                .run()
                .unwrap();
            prop_assert_eq!(
                sequential.digest(),
                parallel.digest(),
                "{:?}: parallel replay diverged from sequential",
                fidelity
            );
            prop_assert_eq!(sequential.inferences(), population as u64 * 5);
        }
    }

    /// Workload-curve evaluation is a pure function of (curve, sim time,
    /// region): the binary-search lookup agrees with a linear reference
    /// scan at arbitrary times, a structurally identical curve agrees
    /// everywhere, and slicing time into epochs of any length cannot
    /// change what a given boundary evaluates to — the property that
    /// makes curve draws shard- and epoch-length-invariant.
    #[test]
    fn prop_workload_curve_evaluation_is_phase_consistent(
        raw in proptest::collection::vec((0u64..10_000_000, 0i64..=1_000_000), 1..8),
        times in proptest::collection::vec(0u64..20_000_000, 1..32),
        offset_ms in 0u64..5_000,
        region in 0usize..4,
        epoch_us in 1u64..1_000_000,
    ) {
        let mut phases: Vec<(u64, i64)> = raw;
        phases.sort_unstable_by_key(|&(start, _)| start);
        phases.dedup_by_key(|&mut (start, _)| start);
        phases[0].0 = 0;
        let curve = WorkloadCurve::from_phases_fp(phases.clone())
            .with_region_offset(Millis::new(offset_ms as f64));
        let offset_us = offset_ms * 1000;
        let reference = |t: u64| {
            let local = t.saturating_sub(region as u64 * offset_us);
            phases.iter().rev().find(|&&(start, _)| start <= local).unwrap().1
        };
        for &t in &times {
            let expected = reference(t);
            prop_assert_eq!(curve.multiplier_fp(t, region), expected);
            prop_assert_eq!(curve.phases()[curve.phase_index(t, region)].1, expected);
            // A clone built from the same phases agrees at every time…
            let clone = WorkloadCurve::from_phases_fp(phases.clone())
                .with_region_offset(Millis::new(offset_ms as f64));
            prop_assert_eq!(clone.multiplier_fp(t, region), expected);
            // …and the epoch boundary at/below t evaluates by the same
            // rule, whatever the epoch length.
            let epoch_start = (t / epoch_us) * epoch_us;
            prop_assert_eq!(curve.multiplier_fp(epoch_start, region), reference(epoch_start));
        }
    }
}

/// Helper trait used by `prop_alg1_min_is_true_min`: brute-force minimum
/// over the enumerated options.
trait PerfMin {
    fn perf_min(&self, metric: Metric, tu: Mbps) -> f64;
}

impl PerfMin for lens::core::PerfEvaluation {
    fn perf_min(&self, metric: Metric, tu: Mbps) -> f64 {
        self.options
            .iter()
            .map(|o| o.cost(metric).at(tu))
            .fold(f64::INFINITY, f64::min)
    }
}
