//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so the four workspace
//! benches (`alg1_eval`, `gp_fit`, `pareto_update`, `runtime_switch`) link
//! against this shim instead. It implements the slice of criterion's API the
//! benches use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! warmup-then-measure loop that reports min/mean per iteration.
//!
//! It is intentionally *much* lighter than real criterion (no statistics,
//! no HTML reports, no comparison to saved baselines), but the numbers it
//! prints are honest wall-clock mean/min per iteration — good enough to
//! rank hot-path optimizations in later PRs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark. Overridable via
/// `LENS_BENCH_MEASURE_MS` so CI smoke runs stay fast.
fn measurement_budget() -> Duration {
    let ms = std::env::var("LENS_BENCH_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

/// Entry point object handed to each benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into_benchmark_id(), &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall-clock
    /// budget instead of sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into_benchmark_id(), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.into_benchmark_id(),
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one(group: &str, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iters: 0,
        min: Duration::MAX,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.label()
    } else {
        format!("{group}/{}", id.label())
    };
    if bencher.iters == 0 {
        println!("bench {label:<48} (no iterations recorded)");
        return;
    }
    let mean = bencher.total / bencher.iters as u32;
    println!(
        "bench {label:<48} mean {:>12?}  min {:>12?}  ({} iters)",
        mean, bencher.min, bencher.iters
    );
}

/// Identifier for one benchmark, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{p}", self.function),
            None => self.function.clone(),
        }
    }
}

/// Conversion accepted by `bench_function` — plain strings or full ids.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self.to_string(),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self,
            parameter: None,
        }
    }
}

/// Timing loop handle passed to the closure given to `bench_function`.
pub struct Bencher {
    total: Duration,
    iters: u64,
    min: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup: a few untimed calls so lazy init / caches settle.
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        let budget = measurement_budget();
        let started = Instant::now();
        while started.elapsed() < budget {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            let dt = t0.elapsed();
            self.total += dt;
            self.iters += 1;
            self.min = self.min.min(dt);
            if self.iters >= 1_000_000 {
                break;
            }
        }
    }
}

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        std::env::set_var("LENS_BENCH_MEASURE_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, x| b.iter(|| *x * 2));
        group.finish();
        assert!(calls > 0);
    }
}
