//! Offline, API-compatible subset of the `proptest` property-testing crate.
//!
//! The build environment has no crates.io access, so the property tests in
//! `lens-num` and `tests/cross_crate_props.rs` link against this shim. It
//! supports the used surface: the `proptest!` macro (with an optional
//! `#![proptest_config(..)]` header), range strategies over numeric types,
//! tuple strategies, `proptest::collection::vec`, and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Compared to the real crate there is no shrinking and no persisted failure
//! database: each generated test runs `cases` deterministic random inputs
//! (seeded per test so runs are reproducible) and fails on the first
//! violated assertion, printing the offending case index.

use rand::rngs::StdRng;
use rand::Rng;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A fixed value is a strategy producing itself — lets plain constants
/// appear where a strategy is expected (mirrors proptest's `Just` via
/// `IntoStrategy`-style ergonomics for the cases this workspace uses).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Size specification for [`fn@vec`]: a count, `lo..hi`, or `lo..=hi`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Deterministic per-test seed: FNV-1a over the test's full module path, so
/// every property sees a stable but distinct input stream across runs.
pub fn seed_for(test_path: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in test_path.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..__config.cases {
                let __run = || -> () {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    $body
                };
                if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(__run)) {
                    eprintln!(
                        "proptest case {}/{} failed in {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_sizes_respected(xs in collection::vec(0u32..100, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            for x in xs {
                prop_assert!(x < 100);
            }
        }

        #[test]
        fn nested_vec_and_tuples(
            rows in collection::vec(collection::vec(-1.0f64..1.0, 3), 2..=4),
            pair in (0u64..10, 0.0f64..1.0),
        ) {
            prop_assert!(rows.len() >= 2 && rows.len() <= 4);
            prop_assert!(rows.iter().all(|r| r.len() == 3));
            prop_assert!(pair.0 < 10 && pair.1 < 1.0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_header_accepted(x in 0u32..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn seeds_differ_by_path() {
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }
}
