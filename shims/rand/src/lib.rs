//! Offline, API-compatible subset of the `rand` 0.8 crate.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so the workspace vendors the small slice of `rand`'s surface it
//! actually uses: [`RngCore`], [`Rng`], [`SeedableRng`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through SplitMix64
//! — deterministic for a given seed, which is what the reproducibility suite
//! (`tests/end_to_end.rs`, `tests/cross_crate_props.rs`) relies on.
//!
//! It does **not** promise the same stream as upstream `StdRng` (upstream is
//! ChaCha12); it promises a fixed, portable stream for this workspace.

/// The core of a random number generator: raw integer output.
///
/// Object-safe, mirroring `rand::RngCore` so `&mut dyn RngCore` works in
/// trait methods like `SearchSpace::sample`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Seed from a single `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Sample a value from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform over a type's natural domain
/// (`[0, 1)` for floats, the full range for integers).
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Marker for types `gen_range` can produce.
pub trait SampleUniform: Sized {
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, low: Self, high_exclusive: Self) -> Self;
    fn sample_between_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(rng: &mut R, low: Self, high_exclusive: Self) -> Self {
                assert!(low < high_exclusive, "gen_range: empty range");
                let span = (high_exclusive as u128).wrapping_sub(low as u128);
                // Modulo bias is negligible for the span sizes this
                // workspace draws from (search-space cardinalities).
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_between_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                // Computed in u128, so even the full-width 0..=MAX span
                // cannot wrap to zero.
                let span = (high as u128) - (low as u128) + 1;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(rng: &mut R, low: Self, high_exclusive: Self) -> Self {
                assert!(low < high_exclusive, "gen_range: empty range");
                let span = (high_exclusive as i128 - low as i128) as u128;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_between_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128 - low as i128 + 1) as u128;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(rng: &mut R, low: Self, high_exclusive: Self) -> Self {
                assert!(low < high_exclusive, "gen_range: empty range");
                // `unit < 1` does not guarantee `v < high`: the multiply and
                // add can each round up, so resample the (astronomically
                // rare) draws that land on the exclusive bound.
                for _ in 0..8 {
                    let unit: f64 = Standard.sample(rng);
                    let v = low + (unit as $t) * (high_exclusive - low);
                    if v < high_exclusive {
                        return v;
                    }
                }
                low
            }
            fn sample_between_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let unit: f64 = Standard.sample(rng);
                // Clamp: rounding in the multiply/add may overshoot `high`
                // by an ULP, which the inclusive contract forbids.
                (low + (unit as $t) * (high - low)).min(high)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_between_inclusive(rng, low, high)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic workspace-standard RNG: xoshiro256++ seeded via
    /// SplitMix64. Fast, 256-bit state, passes BigCrush — more than enough
    /// for MOBO sampling and synthetic traces.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let z = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&z));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0usize..10);
        assert!(v < 10);
        let f: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
