//! Criterion bench: Algorithm 1's performance-objective evaluation.
//!
//! §IV.D claims the per-candidate cost is O(l) in the number of layers and
//! "minuscule compared to the O(n³) cost of a single Bayesian optimization
//! instance". This bench measures it directly — on AlexNet, on deep
//! search-space candidates, across layer counts — and includes the
//! partition-within vs edge-only ablation (the extra cost LENS pays over
//! the Traditional objective evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lens::core::{PartitionPolicy, PerfEvaluator};
use lens::prelude::*;
use std::hint::black_box;
use std::sync::Arc;

fn evaluator(policy: PartitionPolicy) -> PerfEvaluator {
    PerfEvaluator::new(
        WirelessLink::new(WirelessTechnology::Wifi, Mbps::new(3.0)),
        Arc::new(DeviceProfile::jetson_tx2_gpu()),
        policy,
    )
}

/// A deep synthetic network with `blocks` conv blocks.
fn deep_network(blocks: usize) -> Network {
    let mut builder = NetworkBuilder::new("deep", TensorShape::new(3, 224, 224));
    let mut pools = 0;
    for b in 0..blocks {
        builder = builder.layer(lens::nn::Layer::conv(format!("c{b}"), 32, 3, 1));
        if pools < 5 && b % 2 == 1 {
            builder = builder.layer(lens::nn::Layer::max_pool2(format!("p{b}")));
            pools += 1;
        }
    }
    builder
        .flatten()
        .layer(lens::nn::Layer::dense("fc", 256))
        .build()
        .expect("deep network is valid")
}

fn bench_alg1(c: &mut Criterion) {
    let alexnet = zoo::alexnet().analyze().expect("alexnet analyzes");
    let lens_eval = evaluator(PartitionPolicy::WithinOptimization);
    let edge_eval = evaluator(PartitionPolicy::EdgeOnly);

    let mut group = c.benchmark_group("alg1");
    group.bench_function("alexnet_partition_within", |b| {
        b.iter(|| lens_eval.evaluate(black_box(&alexnet)).expect("evaluates"))
    });
    group.bench_function("alexnet_edge_only", |b| {
        b.iter(|| edge_eval.evaluate(black_box(&alexnet)).expect("evaluates"))
    });

    // O(l) scaling: evaluation time should grow ~linearly in layer count.
    for blocks in [5usize, 10, 20, 40] {
        let analysis = deep_network(blocks).analyze().expect("analyzes");
        group.bench_with_input(
            BenchmarkId::new("layers", analysis.layers().len()),
            &analysis,
            |b, a| b.iter(|| lens_eval.evaluate(black_box(a)).expect("evaluates")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_alg1);
criterion_main!(benches);
