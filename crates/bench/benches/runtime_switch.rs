//! Criterion bench: the runtime option switch.
//!
//! §IV.E claims the deployed model can "switch between different deployment
//! options based on the t_u value in real-time O(1)". The switch is a
//! binary search over a handful of precomputed thresholds; this bench
//! measures both the one-off design-time map construction and the per-
//! inference lookup.

use criterion::{criterion_group, criterion_main, Criterion};
use lens::prelude::*;
use std::hint::black_box;

fn build_inputs() -> (Vec<lens::runtime::DeploymentOption>, DominanceMap) {
    let analysis = zoo::alexnet().analyze().expect("alexnet analyzes");
    let perf = profile_network(&analysis, &DeviceProfile::jetson_tx2_cpu());
    let planner =
        DeploymentPlanner::new(WirelessLink::new(WirelessTechnology::Lte, Mbps::new(8.0)));
    let options = planner
        .enumerate(&analysis, &perf)
        .expect("options enumerate");
    let map = DominanceMap::build(&options, Metric::Latency).expect("map builds");
    (options, map)
}

fn bench_switch(c: &mut Criterion) {
    let (options, map) = build_inputs();
    let mut group = c.benchmark_group("runtime");

    group.bench_function("design_time_map_build", |b| {
        b.iter(|| DominanceMap::build(black_box(&options), Metric::Latency).expect("builds"))
    });

    let throughputs: Vec<Mbps> = (1..=64).map(|i| Mbps::new(i as f64 * 0.7)).collect();
    group.bench_function("best_at_lookup_x64", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for tu in &throughputs {
                acc += map.best_at(black_box(*tu));
            }
            acc
        })
    });

    group.bench_function("tracker_observe_estimate", |b| {
        let mut tracker = ThroughputTracker::new(0.6);
        b.iter(|| {
            tracker.observe(black_box(Mbps::new(9.2)));
            tracker.estimate().expect("observed").get()
        })
    });

    // End-to-end trace replay (40-sample Fig 8 workload).
    let trace = TraceGenerator::lte_like(Mbps::new(8.0)).generate(1);
    let sim = RuntimeSimulator::new(options).expect("options non-empty");
    group.bench_function("fig8_trace_replay", |b| {
        b.iter(|| {
            sim.run(
                black_box(&trace),
                Metric::Energy,
                ThroughputTracker::last_sample(),
            )
            .expect("simulation runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_switch);
criterion_main!(benches);
