//! Criterion bench: Gaussian-process fit and predict — the O(n³) per-
//! iteration cost of the Bayesian search (§IV.D), measured over the data
//! sizes a 300-iteration run passes through.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lens::gp::kernel::Matern52;
use lens::gp::GpRegressor;
use lens_bench::workloads::gp_training_data as training_data;
use std::hint::black_box;

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp");
    group.sample_size(20);
    for n in [50usize, 100, 200, 300] {
        let (xs, ys) = training_data(n);
        group.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| {
                GpRegressor::fit(
                    black_box(xs.clone()),
                    black_box(ys.clone()),
                    Matern52::new(0.8, 1.0),
                    1e-4,
                )
                .expect("fit succeeds")
            })
        });
    }

    // Posterior prediction over a 192-candidate pool at n=200.
    let (xs, ys) = training_data(200);
    let gp = GpRegressor::fit(xs, ys, Matern52::new(0.8, 1.0), 1e-4).expect("fit succeeds");
    let (pool, _) = training_data(192);
    group.bench_function("predict_pool_192_at_n200", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cand in &pool {
                let (m, v) = gp.predict(black_box(cand));
                acc += m + v;
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gp);
criterion_main!(benches);
