//! Criterion bench: Pareto-frontier maintenance (`Pareto_update` of
//! Algorithm 2) and the §V.A frontier-comparison metrics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lens::pareto::{combined_composition, coverage, hypervolume, ParetoFront};
use lens_bench::workloads::pareto_points as points;
use std::hint::black_box;

fn bench_pareto(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto");
    for n in [100usize, 1000, 5000] {
        let pts = points(n);
        group.bench_with_input(BenchmarkId::new("build_front", n), &pts, |b, pts| {
            b.iter(|| {
                let front: ParetoFront<usize> = pts.iter().cloned().enumerate().collect();
                black_box(front.len())
            })
        });
    }

    let front_a: ParetoFront<usize> = points(2000).into_iter().enumerate().collect();
    let front_b: ParetoFront<usize> = points(2000)
        .into_iter()
        .map(|p| p.iter().map(|x| x + 0.05).collect())
        .enumerate()
        .collect();
    let a = front_a.objectives();
    let b = front_b.objectives();
    group.bench_function("coverage", |bch| {
        bch.iter(|| coverage(black_box(&a), black_box(&b)))
    });
    group.bench_function("combined_composition", |bch| {
        bch.iter(|| combined_composition(black_box(&a), black_box(&b)))
    });
    group.bench_function("hypervolume_3d", |bch| {
        bch.iter(|| hypervolume(black_box(&a), &[2.0, 2.0, 2.0]))
    });
    group.finish();
}

criterion_group!(benches, bench_pareto);
criterion_main!(benches);
