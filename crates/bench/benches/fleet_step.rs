//! Criterion bench: the fleet simulator's hot paths.
//!
//! Measures (a) a full small-fleet run — the number that bounds how many
//! scenario sweeps fit in a workflow — and (b) the per-event cost implied
//! by a larger run, plus the design-time engine construction (trace
//! synthesis dominates it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lens::prelude::*;
use std::hint::black_box;

fn scenario(population: usize, shards: usize) -> FleetScenario {
    FleetScenario::builder()
        .population(population)
        .horizon(Millis::new(600_000.0)) // 10 minutes, 60 s epochs
        .cloud(CloudCapacity::new(16, 10.0))
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Energy)
        .seed(11)
        .shards(shards)
        .build()
        .expect("valid scenario")
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");

    for population in [1_000usize, 10_000] {
        let engine = FleetEngine::new(scenario(population, 1)).expect("engine builds");
        group.bench_with_input(BenchmarkId::new("run", population), &engine, |b, engine| {
            b.iter(|| black_box(engine.run().expect("run").inferences()))
        });
    }

    group.bench_function("engine_build_10k", |b| {
        b.iter(|| FleetEngine::new(black_box(scenario(10_000, 1))).expect("engine builds"))
    });

    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
