//! Criterion bench: the fleet simulator's hot paths.
//!
//! Measures (a) a full small-fleet run — the number that bounds how many
//! scenario sweeps fit in a workflow — and (b) the per-event cost implied
//! by a larger run, plus the design-time engine construction (trace
//! synthesis dominates it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lens::prelude::*;
use std::hint::black_box;

fn scenario(population: usize, shards: usize) -> FleetScenario {
    FleetScenario::builder()
        .population(population)
        .horizon(Millis::new(600_000.0)) // 10 minutes, 60 s epochs
        .cloud(CloudCapacity::new(16, 10.0))
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Energy)
        .seed(11)
        .shards(shards)
        .build()
        .expect("valid scenario")
}

/// A two-backend batched serving tier with admission control — the
/// heaviest per-epoch barrier configuration.
fn batched_serving() -> CloudServing {
    CloudServing::new(vec![
        BackendConfig::new("gpu", 2, 50.0, 0.25).with_batching(64, 100.0),
        BackendConfig::new("cpu", 8, 40.0, 40.0).with_batching(8, 100.0),
    ])
    .with_admission(AdmissionPolicy::Deadline {
        max_wait_ms: 2_000.0,
    })
    .with_failover(FailoverPolicy::SiblingRegion { penalty_ms: 60.0 })
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");

    for population in [1_000usize, 10_000] {
        let engine = FleetEngine::new(scenario(population, 1)).expect("engine builds");
        group.bench_with_input(BenchmarkId::new("run", population), &engine, |b, engine| {
            b.iter(|| black_box(engine.run().expect("run").inferences()))
        });
    }

    // The full run again, with the serving tier exercising batching,
    // water-fill dispatch, admission, and failover on every event/barrier.
    let batched = FleetScenario::builder()
        .population(10_000)
        .horizon(Millis::new(600_000.0))
        .serving(batched_serving())
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Energy)
        .seed(11)
        .build()
        .expect("valid scenario");
    let engine = FleetEngine::new(batched).expect("engine builds");
    group.bench_function("run_batched/10000", |b| {
        b.iter(|| black_box(engine.run().expect("run").inferences()))
    });

    // The same batched serving tier at per-request fidelity: every
    // offloaded inference becomes a discrete arrival/batch/completion
    // event in the region microsims — the tail-latency price tag.
    let per_request = FleetScenario::builder()
        .population(10_000)
        .horizon(Millis::new(600_000.0))
        .serving(batched_serving())
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Energy)
        .seed(11)
        .fidelity(CloudSimFidelity::PerRequest)
        .build()
        .expect("valid scenario");
    let engine = FleetEngine::new(per_request).expect("engine builds");
    group.bench_function("per_request/10000", |b| {
        b.iter(|| black_box(engine.run().expect("run").inferences()))
    });

    // The barrier path in isolation: one region's admit → water-fill →
    // batch-close/drain → signal cycle, at a fluid 5k offloads/epoch.
    let serving = batched_serving();
    group.bench_function("batch_close", |b| {
        b.iter(|| {
            let mut region = RegionServing::new(&serving);
            for _ in 0..60 {
                region.admit(500, 4_500);
                region.drain(60_000.0);
                black_box(region.signal());
            }
            black_box(region.depth())
        })
    });

    group.bench_function("engine_build_10k", |b| {
        b.iter(|| FleetEngine::new(black_box(scenario(10_000, 1))).expect("engine builds"))
    });

    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
