//! Criterion bench: the fleet simulator's hot paths.
//!
//! Measures (a) a full small-fleet run — the number that bounds how many
//! scenario sweeps fit in a workflow — and (b) the per-event cost implied
//! by a larger run, plus the design-time engine construction (trace
//! synthesis dominates it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lens::prelude::*;
use lens_bench::workloads;
use std::hint::black_box;

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");

    for population in [1_000usize, 10_000] {
        let engine =
            FleetEngine::new(workloads::fleet_scenario(population, 1)).expect("engine builds");
        group.bench_with_input(BenchmarkId::new("run", population), &engine, |b, engine| {
            b.iter(|| black_box(engine.run().expect("run").inferences()))
        });
    }

    // The same plain run with the flight recorder attached: every event
    // and barrier also feeds the telemetry layer (ring buffer, metrics
    // timelines, phase counters) — the price of observability when it is
    // switched on. `run` above is the disabled-sink side of the pair: its
    // telemetry hooks const-fold away.
    let engine = FleetEngine::new(workloads::fleet_scenario(10_000, 1)).expect("engine builds");
    group.bench_function("run_traced/10000", |b| {
        b.iter(|| black_box(engine.run_traced().expect("run").0.inferences()))
    });

    // The full run again, with the serving tier exercising batching,
    // water-fill dispatch, admission, and failover on every event/barrier.
    let engine = FleetEngine::new(workloads::batched_fleet_scenario(CloudSimFidelity::Fluid))
        .expect("engine builds");
    group.bench_function("run_batched/10000", |b| {
        b.iter(|| black_box(engine.run().expect("run").inferences()))
    });

    // The same batched serving tier at per-request fidelity: every
    // offloaded inference becomes a discrete arrival/batch/completion
    // event in the region microsims — the tail-latency price tag.
    let engine = FleetEngine::new(workloads::batched_fleet_scenario(
        CloudSimFidelity::PerRequest,
    ))
    .expect("engine builds");
    group.bench_function("per_request/10000", |b| {
        b.iter(|| black_box(engine.run().expect("run").inferences()))
    });

    // The closed tail-latency loop end to end: a flash-crowd workload
    // curve modulating offload intent, a tail-latency autoscaler stepping
    // at the barrier, and deadline-driven device retreats — the
    // per-request price of the measured-tail feedback path.
    let engine = FleetEngine::new(workloads::flash_crowd_fleet_scenario()).expect("engine builds");
    group.bench_function("run_flash_crowd/10000", |b| {
        b.iter(|| black_box(engine.run().expect("run").inferences()))
    });

    // The batched tier with a three-stage split-inference pipeline at
    // per-request fidelity: every offload replays as a chain of stage
    // requests with integer-priced inter-stage transfers — the deepest
    // per-offload barrier workload.
    let engine = FleetEngine::new(workloads::pipeline_fleet_scenario()).expect("engine builds");
    group.bench_function("pipeline/10000", |b| {
        b.iter(|| black_box(engine.run().expect("run").inferences()))
    });

    // The batched tier again with priced, autoscaled backends and
    // cost-aware dispatch — the per-barrier autoscaler + cost accounting
    // overhead on the fluid path.
    let engine = FleetEngine::new(workloads::autoscaled_fleet_scenario()).expect("engine builds");
    group.bench_function("run_autoscaled/10000", |b| {
        b.iter(|| black_box(engine.run().expect("run").inferences()))
    });

    // The barrier path in isolation: one region's admit → water-fill →
    // batch-close/drain → scale → publish cycle, at a fluid 5k
    // offloads/epoch.
    let serving = workloads::batched_serving();
    group.bench_function("batch_close", |b| {
        b.iter(|| {
            let mut region = RegionServing::new(&serving);
            for _ in 0..60 {
                region.admit(500, 4_500);
                region.drain(60_000.0);
                region.scale(60_000.0);
                black_box(region.publish());
            }
            black_box(region.depth())
        })
    });

    group.bench_function("engine_build_10k", |b| {
        b.iter(|| {
            FleetEngine::new(black_box(workloads::fleet_scenario(10_000, 1)))
                .expect("engine builds")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
