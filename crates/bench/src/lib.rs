//! Shared experiment harness for the LENS reproduction.
//!
//! Every table and figure in the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md §4 for the index). This
//! library holds the pieces they share: argument parsing, table printing,
//! results-directory handling, and the paired LENS/Traditional search that
//! Figs 6 and 7 both consume.
//!
//! Run with `--release`; a 300-iteration Bayesian search is deliberately
//! `O(n³)` per iteration (§IV.D) and debug builds are ~20× slower.

pub mod plot;
pub mod workloads;

use lens::prelude::*;
use std::path::{Path, PathBuf};

/// Command-line arguments shared by all experiment binaries.
///
/// Supported flags: `--seed N`, `--iters N`, `--init N`, `--quick`
/// (40 iterations / 10 initial samples), `--out DIR`, `--truth`
/// (bypass the regression predictors and use analytic ground truth).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpArgs {
    /// RNG seed for the whole experiment.
    pub seed: u64,
    /// MOBO iterations (paper: 300).
    pub iters: usize,
    /// Random initial samples (`C_init`).
    pub init: usize,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// Use the analytic ground truth instead of trained predictors.
    pub use_truth: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            seed: 1,
            iters: 300,
            init: 20,
            out_dir: PathBuf::from("results"),
            use_truth: false,
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> Self {
        let mut out = ExpArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--seed" => out.seed = next_num(&mut args, "--seed"),
                "--iters" => out.iters = next_num(&mut args, "--iters") as usize,
                "--init" => out.init = next_num(&mut args, "--init") as usize,
                "--quick" => {
                    out.iters = 40;
                    out.init = 10;
                }
                "--truth" => out.use_truth = true,
                "--out" => {
                    out.out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage("--out")))
                }
                "--help" | "-h" => {
                    eprintln!("flags: --seed N  --iters N  --init N  --quick  --truth  --out DIR");
                    std::process::exit(0);
                }
                other => usage(other),
            }
        }
        out
    }

    /// Path of a CSV artifact inside the output directory.
    pub fn artifact(&self, name: &str) -> PathBuf {
        self.out_dir.join(name)
    }
}

fn next_num(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    args.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(flag))
}

fn usage(flag: &str) -> ! {
    eprintln!("bad or missing value for {flag}; see --help");
    std::process::exit(2);
}

/// Prints a fixed-width table with a title.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Writes CSV next to the printed table.
///
/// # Panics
///
/// Panics on I/O errors — experiment binaries treat unwritable results
/// directories as fatal.
pub fn save_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) {
    lens::core::write_csv(path, header, rows)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("[csv] {}", path.display());
}

/// The paired searches behind Figs 6 and 7.
#[derive(Debug)]
pub struct PairedSearches {
    /// LENS: partitioning within the optimization.
    pub lens_outcome: SearchOutcome,
    /// Traditional: All-Edge platform-aware NAS.
    pub traditional_outcome: SearchOutcome,
    /// The Traditional frontier re-evaluated with partitioning (post-hoc).
    pub partitioned_traditional: Vec<lens::core::CandidateEvaluation>,
}

/// Runs the LENS and Traditional searches with identical budgets/seeds and
/// partitions the Traditional frontier post-hoc (§V.A's setup).
///
/// # Errors
///
/// Propagates any search failure.
pub fn run_paired_searches(args: &ExpArgs) -> Result<PairedSearches, LensError> {
    let lens = Lens::builder()
        .technology(WirelessTechnology::Wifi)
        .expected_throughput(Mbps::new(3.0))
        .device(DeviceProfile::jetson_tx2_gpu())
        .use_predictor(!args.use_truth)
        .iterations(args.iters)
        .initial_samples(args.init)
        .seed(args.seed)
        .build()?;
    eprintln!(
        "[search] LENS: {} init + {} iterations (seed {})...",
        args.init, args.iters, args.seed
    );
    let lens_outcome = lens.search()?;
    eprintln!("[search] Traditional (All-Edge objectives)...");
    let traditional_outcome = lens.traditional_search()?;
    eprintln!("[search] partitioning the Traditional frontier post-hoc...");
    let partitioned_traditional = lens.partition_frontier(&traditional_outcome)?;
    Ok(PairedSearches {
        lens_outcome,
        traditional_outcome,
        partitioned_traditional,
    })
}

/// Objective-plane indices used by the 2-D frontier analyses.
pub const ERROR_OBJECTIVE: usize = 0;
/// Latency index in the objective vector.
pub const LATENCY_OBJECTIVE: usize = 1;
/// Energy index in the objective vector.
pub const ENERGY_OBJECTIVE: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_paths_join() {
        let args = ExpArgs::default();
        assert_eq!(args.artifact("x.csv"), PathBuf::from("results/x.csv"));
    }

    #[test]
    fn paired_searches_tiny_run() {
        let args = ExpArgs {
            iters: 3,
            init: 4,
            use_truth: true,
            ..ExpArgs::default()
        };
        let paired = run_paired_searches(&args).unwrap();
        assert_eq!(paired.lens_outcome.explored().len(), 7);
        assert_eq!(paired.traditional_outcome.explored().len(), 7);
        assert_eq!(
            paired.partitioned_traditional.len(),
            paired.traditional_outcome.pareto_candidates().len()
        );
    }
}
