//! **Figure 7** — Number of explored architectures satisfying accuracy /
//! energy criteria: partitioning *within* the optimization (LENS) vs
//! partitioning *after* it (§V.B).
//!
//! The paper's claim: folding partitioning into the objective equations
//! steers the search toward energy-efficient regions (large increases in
//! the `Ergy<200` / `Ergy<250` counts) without losing the accuracy-driven
//! counts (`Err<20` even improves; the combined criterion holds).
//!
//! Our energy axis differs from the authors' physical TX2 (simulated
//! testbed, DESIGN.md #1), so alongside the paper's absolute thresholds the
//! binary also reports thresholds placed at the 40th/60th percentile of the
//! pooled energy distribution — the shape comparison the figure is making.

use lens::prelude::*;
use lens_bench::{print_table, run_paired_searches, save_csv, ExpArgs};

/// Post-hoc view of the Traditional search: every explored architecture
/// re-scored at its best deployment option (partitioning after the
/// optimization).
fn partitioned_counts(
    evaluations: &[(f64, f64)],
    error_thresholds: (f64, f64),
    energy_thresholds: (f64, f64),
) -> [usize; 5] {
    let count = |pred: &dyn Fn(&(f64, f64)) -> bool| evaluations.iter().filter(|e| pred(e)).count();
    [
        count(&|(err, _)| *err < error_thresholds.0),
        count(&|(err, _)| *err < error_thresholds.1),
        count(&|(_, en)| *en < energy_thresholds.0),
        count(&|(_, en)| *en < energy_thresholds.1),
        count(&|(err, en)| *err < error_thresholds.1 && *en < energy_thresholds.1),
    ]
}

fn main() {
    let args = ExpArgs::parse();
    let paired = run_paired_searches(&args).expect("searches run");

    // Re-evaluate EVERY Traditional exploration with partitioning enabled
    // ("partitioning all the explored solutions after the optimization").
    eprintln!("[fig7] re-evaluating the Traditional exploration history with partitioning...");
    let lens_handle = Lens::builder()
        .technology(WirelessTechnology::Wifi)
        .expected_throughput(Mbps::new(3.0))
        .device(DeviceProfile::jetson_tx2_gpu())
        .use_predictor(!args.use_truth)
        .iterations(args.iters)
        .initial_samples(args.init)
        .seed(args.seed)
        .build()
        .expect("lens builds");
    let mut trad_partitioned: Vec<(f64, f64)> = Vec::new();
    for c in paired.traditional_outcome.explored() {
        let e = lens_handle
            .evaluator()
            .evaluate(&c.encoding)
            .expect("re-evaluation succeeds");
        trad_partitioned.push((e.objectives.error_pct, e.objectives.energy_mj));
    }
    let lens_points: Vec<(f64, f64)> = paired
        .lens_outcome
        .explored()
        .iter()
        .map(|c| (c.objectives.error_pct, c.objectives.energy_mj))
        .collect();

    // Percentile-based energy thresholds over the pooled distribution.
    let mut pooled: Vec<f64> = lens_points
        .iter()
        .chain(&trad_partitioned)
        .map(|(_, en)| *en)
        .collect();
    pooled.sort_by(|a, b| a.partial_cmp(b).expect("finite energies"));
    let pct = |q: f64| pooled[(q * (pooled.len() - 1) as f64) as usize];
    let energy_q = (pct(0.4), pct(0.6));
    let error_thresholds = (20.0, 25.0);

    for (label, energy_thresholds) in [
        ("paper absolute thresholds (200/250 mJ)", (200.0, 250.0)),
        (
            "percentile thresholds (40th/60th of pooled energy)",
            energy_q,
        ),
    ] {
        let lens_counts = partitioned_counts(&lens_points, error_thresholds, energy_thresholds);
        let trad_counts =
            partitioned_counts(&trad_partitioned, error_thresholds, energy_thresholds);
        let names = [
            format!("Err<{}", error_thresholds.0),
            format!("Err<{}", error_thresholds.1),
            format!("Ergy<{:.0}", energy_thresholds.0),
            format!("Ergy<{:.0}", energy_thresholds.1),
            format!(
                "Err<{} & Ergy<{:.0}",
                error_thresholds.1, energy_thresholds.1
            ),
        ];
        let rows: Vec<Vec<String>> = names
            .iter()
            .zip(lens_counts.iter().zip(&trad_counts))
            .map(|(name, (l, t))| {
                let change = if *t > 0 {
                    format!("{:+.1}%", 100.0 * (*l as f64 - *t as f64) / *t as f64)
                } else {
                    "n/a".into()
                };
                vec![name.clone(), l.to_string(), t.to_string(), change]
            })
            .collect();
        let header = ["criterion", "within (LENS)", "after (Trad+part)", "change"];
        print_table(&format!("Figure 7 — {label}"), &header, &rows);
        save_csv(
            &args.artifact(if label.starts_with("paper") {
                "fig7_paper_thresholds.csv"
            } else {
                "fig7_percentile_thresholds.csv"
            }),
            &header,
            &rows,
        );
    }

    println!(
        "\nPaper's qualitative claim: partitioning-within raises the energy-criteria \
         counts (search spends time where partitioning pays) while accuracy-criteria \
         counts hold or improve."
    );
}
