//! **Figure 1** — Changes in the output feature maps' size and percentage
//! of total latency for each layer in AlexNet.
//!
//! Regenerates the per-layer analysis of §II.A on the simulated TX2 GPU:
//! output feature-map size (kB, f32), size relative to the 147 kB input,
//! per-layer latency and its share of the total, and whether the layer is a
//! viable partition point.

use lens::prelude::*;
use lens_bench::{print_table, save_csv, ExpArgs};

fn main() {
    let args = ExpArgs::parse();
    let network = zoo::alexnet();
    let analysis = network.analyze().expect("alexnet analyzes");
    let gpu = DeviceProfile::jetson_tx2_gpu();
    let perf = profile_network(&analysis, &gpu);
    let total = perf.total_latency().get();
    let input_kb = analysis.input_bytes().kib();
    let viable = analysis.viable_partition_indices();

    let mut rows = Vec::new();
    rows.push(vec![
        "input".into(),
        format!("{input_kb:.1}"),
        "1.00".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    for (layer, lp) in analysis.layers().iter().zip(perf.layers()) {
        rows.push(vec![
            layer.name.clone(),
            format!("{:.1}", layer.output_bytes.kib()),
            format!("{:.2}", layer.output_bytes.kib() / input_kb),
            format!("{:.3}", lp.latency.get()),
            format!("{:.1}", 100.0 * lp.latency.get() / total),
            if viable.contains(&layer.index) {
                "yes"
            } else {
                "no"
            }
            .into(),
        ]);
    }
    let header = [
        "layer",
        "out fmap (kB)",
        "vs input",
        "latency (ms)",
        "% latency",
        "viable split",
    ];
    print_table(
        "Figure 1: AlexNet per-layer feature maps and latency (TX2 GPU)",
        &header,
        &rows,
    );

    let fc_share = 100.0 * perf.latency_share(|n| n.starts_with("fc"));
    println!(
        "\nFC layers take {fc_share:.1}% of total latency ({:.2} ms); paper: \"around 50%\".",
        total
    );
    println!(
        "First viable partition point: {} (paper: pool5 — everything earlier is larger than the input).",
        analysis.layers()[viable[0]].name
    );

    save_csv(&args.artifact("fig1_alexnet.csv"), &header, &rows);
}
