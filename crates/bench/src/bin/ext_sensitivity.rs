//! **Extension** — design-time throughput sensitivity.
//!
//! The paper's central argument is that the *expected* wireless conditions
//! belong in the design loop. This extension quantifies that end to end:
//! run LENS at several design-time `t_u` values and measure (a) how the
//! composition of best deployment options shifts across the explored
//! population and (b) how much a frontier tuned for one region degrades
//! when deployed in another (cross-deployment regret) — the Table I story,
//! but over searched frontiers instead of a fixed AlexNet.

use lens::prelude::*;
use lens_bench::{print_table, save_csv, ExpArgs};

fn search_at(args: &ExpArgs, tu: f64) -> (Lens, SearchOutcome) {
    let lens = Lens::builder()
        .technology(WirelessTechnology::Wifi)
        .expected_throughput(Mbps::new(tu))
        .device(DeviceProfile::jetson_tx2_gpu())
        .use_predictor(!args.use_truth)
        .iterations(args.iters)
        .initial_samples(args.init)
        .seed(args.seed)
        .build()
        .expect("lens builds");
    let outcome = lens.search().expect("search runs");
    (lens, outcome)
}

/// Mean best-deployment energy of a frontier's encodings when re-evaluated
/// at a different throughput.
fn mean_energy_at(lens_at_target: &Lens, encodings: &[&Encoding]) -> f64 {
    let total: f64 = encodings
        .iter()
        .map(|enc| {
            lens_at_target
                .evaluator()
                .evaluate(enc)
                .expect("re-evaluation")
                .objectives
                .energy_mj
        })
        .sum();
    total / encodings.len() as f64
}

fn main() {
    let args = ExpArgs::parse();
    let design_points = [0.7, 3.0, 7.5, 16.1];

    eprintln!("[ext] running {} searches...", design_points.len());
    let runs: Vec<(f64, Lens, SearchOutcome)> = design_points
        .iter()
        .map(|&tu| {
            let (lens, outcome) = search_at(&args, tu);
            (tu, lens, outcome)
        })
        .collect();

    // (a) Deployment-option composition of the explored population.
    let mut comp_rows = Vec::new();
    for (tu, _, outcome) in &runs {
        let total = outcome.explored().len() as f64;
        let count = |pred: &dyn Fn(&DeploymentKind) -> bool| {
            outcome
                .explored()
                .iter()
                .filter(|c| pred(&c.best_energy_option))
                .count() as f64
        };
        comp_rows.push(vec![
            format!("{tu}"),
            format!(
                "{:.1}%",
                100.0 * count(&|k| *k == DeploymentKind::AllEdge) / total
            ),
            format!(
                "{:.1}%",
                100.0 * count(&|k| matches!(k, DeploymentKind::Split { .. })) / total
            ),
            format!(
                "{:.1}%",
                100.0 * count(&|k| *k == DeploymentKind::AllCloud) / total
            ),
        ]);
    }
    let comp_header = ["design t_u", "All-Edge", "Split", "All-Cloud"];
    print_table(
        "Extension: best-energy deployment mix of explored architectures",
        &comp_header,
        &comp_rows,
    );
    save_csv(
        &args.artifact("ext_sensitivity_mix.csv"),
        &comp_header,
        &comp_rows,
    );

    // (b) Cross-deployment regret matrix: frontier designed at tu_d,
    // deployed at tu_t. Restricted to comparable-accuracy members
    // (err < 25%) so the comparison isn't confounded by frontiers that
    // simply contain more tiny/inaccurate models.
    let mut regret_rows = Vec::new();
    for (tu_d, _, outcome_d) in &runs {
        let members = outcome_d.pareto_candidates();
        let mut encodings: Vec<&Encoding> = members
            .iter()
            .filter(|c| c.objectives.error_pct < 25.0)
            .map(|c| &c.encoding)
            .collect();
        if encodings.is_empty() {
            encodings = members.iter().map(|c| &c.encoding).collect();
        }
        let mut row = vec![format!("designed@{tu_d}")];
        for (tu_t, lens_t, _) in &runs {
            let mean = mean_energy_at(lens_t, &encodings);
            row.push(format!("{mean:.1}"));
            let _ = tu_t;
        }
        regret_rows.push(row);
    }
    let mut regret_header: Vec<String> = vec!["frontier".into()];
    regret_header.extend(design_points.iter().map(|tu| format!("deployed@{tu} (mJ)")));
    let regret_refs: Vec<&str> = regret_header.iter().map(|s| s.as_str()).collect();
    print_table(
        "Extension: mean frontier energy under cross-deployment",
        &regret_refs,
        &regret_rows,
    );
    save_csv(
        &args.artifact("ext_sensitivity_regret.csv"),
        &regret_refs,
        &regret_rows,
    );

    println!(
        "\nReading: rows are frontiers (err<25% members) designed for one expected t_u, \
         columns are the t_u actually experienced at deployment. Mis-matched \
         expectations pay real energy — the paper's design-time argument, generalized \
         from one AlexNet to whole searched frontiers. (Residual accuracy differences \
         between frontiers still matter; compare within a column.)"
    );
}
