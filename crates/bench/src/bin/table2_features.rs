//! **Table II** — Comparison against other works in terms of the features
//! supported for DNN optimization in edge-cloud hierarchies.
//!
//! A static, qualitative table (LENS vs Neurosurgeon \[3\] vs SIEVE \[1\] vs
//! the RNN mapping work \[2\]), with each LENS feature cross-referenced to
//! the module of this repository that implements it — so the table is
//! *checkable*, not just restated.

use lens_bench::{print_table, save_csv, ExpArgs};

fn main() {
    let args = ExpArgs::parse();
    let header = [
        "Supported feature",
        "LENS",
        "NS [3]",
        "SIEVE [1]",
        "RNN [2]",
        "implemented by",
    ];
    let rows: Vec<Vec<String>> = [
        (
            "Design automation",
            "yes",
            "-",
            "yes",
            "-",
            "lens-core::search (Alg 2)",
        ),
        ("NAS support", "yes", "-", "-", "-", "lens-gp + lens-space"),
        (
            "Wireless expectancy at design time",
            "yes",
            "-",
            "-",
            "-",
            "lens-core::objectives (Alg 1) + lens-wireless",
        ),
        (
            "Multi-objective optimization",
            "yes",
            "-",
            "yes",
            "-",
            "lens-gp::mobo + lens-pareto",
        ),
        (
            "Runtime optimization",
            "yes",
            "yes",
            "yes",
            "yes",
            "lens-runtime (tracker + dominance map)",
        ),
        (
            "E-C layer-partitioning",
            "yes",
            "yes",
            "-",
            "-",
            "lens-runtime::options",
        ),
        (
            "Compression",
            "-",
            "-",
            "yes",
            "-",
            "not in LENS (SIEVE-specific)",
        ),
        (
            "Hardware optimization",
            "-",
            "-",
            "yes",
            "-",
            "not in LENS (SIEVE-specific)",
        ),
    ]
    .iter()
    .map(|(f, a, b, c, d, m)| {
        vec![
            f.to_string(),
            a.to_string(),
            b.to_string(),
            c.to_string(),
            d.to_string(),
            m.to_string(),
        ]
    })
    .collect();

    print_table("Table II: feature comparison", &header, &rows);
    save_csv(&args.artifact("table2_features.csv"), &header, &rows);
}
