//! **Ablation** — acquisition rules for the MOBO scalarization: LCB
//! (Dragonfly-style default) vs expected improvement vs Thompson sampling.
//!
//! Same budget and seed per rule; quality measured by the 3-D dominated
//! hypervolume of the final frontier (reference point at the nadir of the
//! pooled explorations) and by the frontier size.

use lens::gp::{AcquisitionKind, MoboConfig};
use lens::prelude::*;
use lens_bench::{print_table, save_csv, ExpArgs};

fn run(args: &ExpArgs, kind: AcquisitionKind) -> SearchOutcome {
    let mobo = MoboConfig {
        acquisition: kind,
        ..MoboConfig::default()
    };
    Lens::builder()
        .technology(WirelessTechnology::Wifi)
        .expected_throughput(Mbps::new(3.0))
        .device(DeviceProfile::jetson_tx2_gpu())
        .use_predictor(!args.use_truth)
        .iterations(args.iters)
        .initial_samples(args.init)
        .seed(args.seed)
        .mobo(mobo)
        .build()
        .expect("lens builds")
        .search()
        .expect("search runs")
}

fn main() {
    let args = ExpArgs::parse();
    let kinds = [
        ("LCB (default)", AcquisitionKind::LowerConfidenceBound),
        ("ExpectedImprovement", AcquisitionKind::ExpectedImprovement),
        ("ThompsonSampling", AcquisitionKind::ThompsonSampling),
    ];

    let mut outcomes = Vec::new();
    for (label, kind) in kinds {
        eprintln!("[ablation] running {label}...");
        outcomes.push((label, run(&args, kind)));
    }

    // Shared nadir reference over every explored point of every run.
    let mut nadir = [f64::MIN; 3];
    for (_, outcome) in &outcomes {
        for c in outcome.explored() {
            let v = c.objectives.to_vec();
            for (n, x) in nadir.iter_mut().zip(&v) {
                *n = n.max(*x * 1.01);
            }
        }
    }

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|(label, outcome)| {
            let front = outcome.pareto_front();
            let hv = lens::pareto::hypervolume(&front.objectives(), &nadir);
            vec![
                label.to_string(),
                front.len().to_string(),
                format!("{hv:.3e}"),
                format!(
                    "{:.2}",
                    outcome
                        .explored()
                        .iter()
                        .map(|c| c.objectives.error_pct)
                        .fold(f64::INFINITY, f64::min)
                ),
                format!(
                    "{:.1}",
                    outcome
                        .explored()
                        .iter()
                        .map(|c| c.objectives.energy_mj)
                        .fold(f64::INFINITY, f64::min)
                ),
            ]
        })
        .collect();

    let header = [
        "acquisition",
        "front size",
        "hypervolume",
        "best err (%)",
        "best energy (mJ)",
    ];
    print_table(
        "Ablation: acquisition rules (same seed & budget)",
        &header,
        &rows,
    );
    save_csv(&args.artifact("ablation_acquisition.csv"), &header, &rows);
}
