//! **Table I** — Variability of deployment options across different
//! regions, device capabilities, and performance metrics.
//!
//! Reproduces all twelve cells: {S. Korea, USA, Afghanistan} ×
//! {GPU/WiFi, CPU/LTE} × {latency, energy} → preferred AlexNet deployment.

use lens::prelude::*;
use lens_bench::{print_table, save_csv, ExpArgs};

/// The paper's Table I, for pass/fail comparison.
fn paper_expectation(region: &str, scenario: &str, metric: Metric) -> &'static str {
    match (region, scenario, metric) {
        (_, "GPU/WiFi", Metric::Latency) => "All-Edge",
        ("S. Korea", "GPU/WiFi", Metric::Energy) => "Split@pool5",
        ("USA", "GPU/WiFi", Metric::Energy) => "Split@pool5",
        ("Afghanistan", "GPU/WiFi", Metric::Energy) => "All-Edge",
        ("S. Korea", "CPU/LTE", Metric::Latency) => "All-Cloud",
        ("USA", "CPU/LTE", Metric::Latency) => "Split@pool5",
        ("Afghanistan", "CPU/LTE", Metric::Latency) => "All-Edge",
        ("S. Korea", "CPU/LTE", Metric::Energy) => "All-Cloud",
        ("USA", "CPU/LTE", Metric::Energy) => "All-Cloud",
        ("Afghanistan", "CPU/LTE", Metric::Energy) => "Split@pool5",
        _ => unreachable!("unknown Table I cell"),
    }
}

fn main() {
    let args = ExpArgs::parse();
    let analysis = zoo::alexnet().analyze().expect("alexnet analyzes");
    let scenarios = [
        (
            "GPU/WiFi",
            DeviceProfile::jetson_tx2_gpu(),
            WirelessTechnology::Wifi,
        ),
        (
            "CPU/LTE",
            DeviceProfile::jetson_tx2_cpu(),
            WirelessTechnology::Lte,
        ),
    ];

    let mut rows = Vec::new();
    let mut matches = 0;
    let mut cells = 0;
    for region in Region::opensignal_2020() {
        let mut row = vec![
            region.name().to_string(),
            format!("{:.1}", region.uplink().get()),
        ];
        for (label, profile, tech) in &scenarios {
            let perf = profile_network(&analysis, profile);
            let planner = DeploymentPlanner::new(WirelessLink::new(*tech, Mbps::new(3.0)));
            let options = planner
                .enumerate(&analysis, &perf)
                .expect("options enumerate");
            for metric in [Metric::Latency, Metric::Energy] {
                let (best, _) = DeploymentPlanner::best_at(&options, metric, region.uplink())
                    .expect("non-empty options");
                let ours = best.to_string();
                let paper = paper_expectation(region.name(), label, metric);
                cells += 1;
                if ours == paper {
                    matches += 1;
                }
                row.push(format!(
                    "{ours}{}",
                    if ours == paper { "" } else { " (paper: ...)" }
                ));
            }
        }
        rows.push(row);
    }

    let header = [
        "Region",
        "t_u (Mbps)",
        "GPU/WiFi lat",
        "GPU/WiFi energy",
        "CPU/LTE lat",
        "CPU/LTE energy",
    ];
    print_table("Table I: preferred deployment per region", &header, &rows);
    println!("\n{matches}/{cells} cells match the paper's Table I.");

    save_csv(&args.artifact("table1_regions.csv"), &header, &rows);
}
