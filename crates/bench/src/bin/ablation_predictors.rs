//! **Ablation** — searching on fitted regression predictors (the paper's
//! pipeline, §IV.C) vs searching on the analytic ground truth.
//!
//! The LENS search only ever observes `L_Predict`/`P_Predict`; this
//! ablation quantifies how much the prediction error moves the resulting
//! frontier: same budget and seed, two searches, and the frontier of each
//! re-scored under the *ground truth* for a fair comparison.

use lens::prelude::*;
use lens_bench::{print_table, save_csv, ExpArgs, ENERGY_OBJECTIVE, ERROR_OBJECTIVE};

fn build(args: &ExpArgs, use_predictor: bool) -> Lens {
    Lens::builder()
        .technology(WirelessTechnology::Wifi)
        .expected_throughput(Mbps::new(3.0))
        .device(DeviceProfile::jetson_tx2_gpu())
        .use_predictor(use_predictor)
        .iterations(args.iters)
        .initial_samples(args.init)
        .seed(args.seed)
        .build()
        .expect("lens builds")
}

fn main() {
    let args = ExpArgs::parse();

    eprintln!("[ablation] search on trained predictors...");
    let with_pred = build(&args, true);
    let pred_outcome = with_pred.search().expect("predictor search");

    eprintln!("[ablation] search on analytic ground truth...");
    let with_truth = build(&args, false);
    let truth_outcome = with_truth.search().expect("truth search");

    // Re-score the predictor-guided frontier under the ground truth so both
    // frontiers live in the same (true) objective space.
    let rescored: Vec<lens::core::CandidateEvaluation> = pred_outcome
        .pareto_candidates()
        .iter()
        .map(|c| {
            with_truth
                .evaluator()
                .evaluate(&c.encoding)
                .expect("re-scoring succeeds")
        })
        .collect();
    let rescored_front =
        lens::core::traditional::front_of_2d(&rescored, ERROR_OBJECTIVE, ENERGY_OBJECTIVE);
    let truth_front = truth_outcome.front_2d(ERROR_OBJECTIVE, ENERGY_OBJECTIVE);

    let cmp = FrontierComparison::between(&truth_front.objectives(), &rescored_front.objectives());
    println!("\n=== Ablation: predictor-guided vs truth-guided search ===");
    println!("(energy-error plane; predictor frontier re-scored under ground truth)\n{cmp}");

    // Prediction-quality context.
    let predictor = PerformancePredictor::train(
        &DeviceProfile::jetson_tx2_gpu(),
        0.05,
        args.seed ^ 0x0DE51CE5,
    )
    .expect("predictor trains");
    println!(
        "\npredictor quality vs noise-free truth:\n{}",
        predictor.report()
    );

    let rows = vec![vec![
        format!("{:.2}", cmp.lens_dominates_pct),
        format!("{:.2}", cmp.baseline_dominates_pct),
        format!("{:.2}", cmp.combined.percent_from_a()),
        format!("{:.4}", predictor.report().worst_latency_r2()),
    ]];
    let header = [
        "truth_dominates_pct",
        "predictor_dominates_pct",
        "combined_truth_pct",
        "worst_latency_r2",
    ];
    print_table("Ablation summary", &header, &rows);
    save_csv(&args.artifact("ablation_predictors.csv"), &header, &rows);
    println!(
        "\nInterpretation: the closer the two frontiers, the less the paper's reliance \
         on per-layer regression (rather than exhaustive measurement) costs."
    );
}
