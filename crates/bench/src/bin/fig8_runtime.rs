//! **Figure 8** — Changes in accumulative energies and latencies over
//! collected traces of LTE `t_u` for two Pareto-optimal models.
//!
//! §V.C: two models are selected from LENS's frontier; model A is analyzed
//! for energy (Partitioned vs All-Edge vs dynamic switching), model B for
//! latency (Partitioned vs All-Cloud vs dynamic). Thresholds come from the
//! pairwise comparison of §IV.E (the paper finds 6.77 Mbps for A's energy
//! and 22.77 Mbps for B's latency); a 40-sample, 5-minute LTE trace is
//! replayed and the fixed options are compared against the dynamic policy.
//! Paper gains: A 0.55 % / 3.22 %; B 3.46 % / 40.21 %.

use lens::prelude::*;
use lens_bench::{print_table, run_paired_searches, save_csv, ExpArgs};

/// Realistic LTE uplink range: thresholds outside it can never be crossed
/// by a measured trace, so switching would be trivial.
const REALISTIC_TU: (f64, f64) = (0.5, 60.0);

/// Picks a frontier model whose dominance map for `metric` has at least one
/// *realistic* threshold (so switching is non-trivial), preferring the one
/// whose threshold is closest to `target_tu` in log space.
fn pick_model<'a>(
    candidates: &[&'a lens::core::ExploredCandidate],
    evaluator: &lens::core::LensEvaluator,
    metric: Metric,
    target_tu: f64,
) -> Option<(
    &'a lens::core::ExploredCandidate,
    Vec<lens::runtime::DeploymentOption>,
    Mbps,
)> {
    let mut best: Option<(&lens::core::ExploredCandidate, Vec<_>, Mbps, f64)> = None;
    for c in candidates {
        let eval = evaluator.evaluate(&c.encoding).ok()?;
        let map = DominanceMap::build(&eval.perf.options, metric).ok()?;
        for threshold in map.thresholds() {
            if !(REALISTIC_TU.0..=REALISTIC_TU.1).contains(&threshold.get()) {
                continue;
            }
            let distance = (threshold.get().ln() - target_tu.ln()).abs();
            let better = best
                .as_ref()
                .map(|(_, _, _, d)| distance < *d)
                .unwrap_or(true);
            if better {
                best = Some((c, eval.perf.options.clone(), threshold, distance));
            }
        }
    }
    best.map(|(c, opts, th, _)| (c, opts, th))
}

fn main() {
    let args = ExpArgs::parse();
    let paired = run_paired_searches(&args).expect("searches run");

    let lens_handle = Lens::builder()
        .technology(WirelessTechnology::Lte) // runtime analysis is on LTE
        .expected_throughput(Mbps::new(3.0))
        .device(DeviceProfile::jetson_tx2_gpu())
        .use_predictor(!args.use_truth)
        .iterations(args.iters)
        .initial_samples(args.init)
        .seed(args.seed)
        .build()
        .expect("lens builds");

    let frontier = paired.lens_outcome.pareto_candidates();
    let everything: Vec<&lens::core::ExploredCandidate> =
        paired.lens_outcome.explored().iter().collect();
    eprintln!(
        "[fig8] selecting models A and B from a {}-member frontier...",
        frontier.len()
    );

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for (model_label, metric, target) in [("A", Metric::Energy, 7.0), ("B", Metric::Latency, 20.0)]
    {
        // Prefer frontier members (as the paper does); fall back to the full
        // exploration history if no frontier member has a realistic
        // threshold under this run's budget.
        let picked = pick_model(&frontier, lens_handle.evaluator(), metric, target)
            .or_else(|| pick_model(&everything, lens_handle.evaluator(), metric, target));
        let Some((model, options, threshold)) = picked else {
            println!(
                "model {model_label}: no frontier member has a finite {metric} threshold; \
                 its best option is unconditionally dominant (still consistent with §IV.E)."
            );
            continue;
        };
        println!("\n=== Figure 8, model {model_label} ({metric}) ===");
        println!("architecture: {}", model.encoding);
        println!(
            "switching threshold: t_u = {:.2} Mbps (paper's models: A 6.77, B 22.77)",
            threshold.get()
        );

        // Trace centered near the threshold so both regimes occur.
        let trace =
            TraceGenerator::lte_like(Mbps::new(threshold.get())).generate(args.seed ^ 0xF18);
        println!("trace: {trace}");

        let simulator = RuntimeSimulator::new(options).expect("non-empty options");
        let report = simulator
            .run(&trace, metric, ThroughputTracker::last_sample())
            .expect("simulation runs");

        let mut rows: Vec<Vec<String>> = report
            .fixed()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                vec![
                    s.label.clone(),
                    format!("{:.1}", s.total()),
                    format!("{:+.2}%", report.gain_over(i)),
                ]
            })
            .collect();
        rows.push(vec![
            format!("Dynamic ({} switches)", report.switches()),
            format!("{:.1}", report.dynamic().total()),
            "-".into(),
        ]);
        let unit = if metric == Metric::Energy { "mJ" } else { "ms" };
        let header = ["policy", &format!("total ({unit})") as &str, "dynamic gain"];
        print_table(
            &format!("model {model_label}: accumulated {metric} over the trace"),
            &header,
            &rows,
        );

        for (step, (d, tu)) in report
            .dynamic()
            .cumulative
            .iter()
            .zip(trace.samples())
            .enumerate()
        {
            let mut row = vec![
                model_label.to_string(),
                metric.to_string(),
                step.to_string(),
                format!("{:.3}", tu.get()),
                format!("{d:.2}"),
            ];
            for s in report.fixed() {
                row.push(format!("{:.2}", s.cumulative[step]));
            }
            csv_rows.push(row);
        }
    }

    save_csv(
        &args.artifact("fig8_runtime.csv"),
        &[
            "model",
            "metric",
            "step",
            "tu_mbps",
            "dynamic_cumulative",
            "fixed_options...",
        ],
        &csv_rows,
    );
    println!(
        "\nPaper's qualitative claim reproduced: dynamic switching is never worse than \
         any fixed option, and most of the benefit is already captured by deploying \
         according to the design-time best option."
    );
}
