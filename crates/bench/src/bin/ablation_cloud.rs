//! **Ablation** — how much does the paper's `L_cloud = 0` idealization
//! (§III.A) distort the deployment decisions?
//!
//! Re-runs the Table I / Fig 2 decision analysis with a *finite*
//! datacenter-class cloud charged for its suffix of the network, and
//! reports where the preferred option flips.

use lens::device::CloudProfile;
use lens::prelude::*;
use lens_bench::{print_table, save_csv, ExpArgs};

fn main() {
    let args = ExpArgs::parse();
    let analysis = zoo::alexnet().analyze().expect("alexnet analyzes");
    let scenarios = [
        (
            "GPU/WiFi",
            DeviceProfile::jetson_tx2_gpu(),
            WirelessTechnology::Wifi,
        ),
        (
            "CPU/LTE",
            DeviceProfile::jetson_tx2_cpu(),
            WirelessTechnology::Lte,
        ),
    ];
    let clouds = [
        ("infinite (paper)", CloudProfile::infinite()),
        ("datacenter GPU", CloudProfile::datacenter_gpu()),
        (
            "modest server",
            CloudProfile::custom("modest-server", 300.0, 40.0),
        ),
    ];

    let mut rows = Vec::new();
    let mut flips = 0usize;
    let mut cells = 0usize;
    for (label, profile, tech) in &scenarios {
        let perf = profile_network(&analysis, profile);
        for metric in [Metric::Latency, Metric::Energy] {
            for tu in [0.7, 3.0, 7.5, 16.1, 30.0] {
                let mut row = vec![label.to_string(), metric.to_string(), format!("{tu}")];
                let mut baseline: Option<String> = None;
                for (_, cloud) in &clouds {
                    let link = WirelessLink::new(*tech, Mbps::new(3.0));
                    let planner = DeploymentPlanner::with_cloud(link, cloud.clone());
                    let options = planner.enumerate(&analysis, &perf).expect("enumerate");
                    let (best, _) = DeploymentPlanner::best_at(&options, metric, Mbps::new(tu))
                        .expect("non-empty");
                    let name = best.to_string();
                    match &baseline {
                        None => baseline = Some(name.clone()),
                        Some(b) => {
                            cells += 1;
                            if *b != name {
                                flips += 1;
                            }
                        }
                    }
                    row.push(name);
                }
                rows.push(row);
            }
        }
    }

    let header = [
        "scenario",
        "metric",
        "t_u (Mbps)",
        "infinite (paper)",
        "datacenter GPU",
        "modest server",
    ];
    print_table(
        "Ablation: finite-cloud latency vs the paper's idealization",
        &header,
        &rows,
    );
    println!(
        "\n{flips}/{cells} decisions flip when the cloud is finite — the paper's \
         neglect of L_cloud is {} for these scenarios.",
        if flips == 0 {
            "harmless"
        } else {
            "load-bearing"
        }
    );
    save_csv(&args.artifact("ablation_cloud.csv"), &header, &rows);
}
