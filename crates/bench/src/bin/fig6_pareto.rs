//! **Figure 6** — The Pareto frontiers formed by LENS, the Traditional
//! solution, and the Traditional frontier after post-hoc partitioning —
//! plus §V.A's headline dominance/composition percentages.
//!
//! Paper values for the energy↔error plane: LENS dominates 60 % of the
//! partitioned-Traditional frontier, 15.38 % of LENS's frontier is
//! dominated, and the combined frontier is 76.47 % LENS. For the
//! latency↔error plane: 66.67 % / 14.28 % / 75 %.
//!
//! Run with `--release` (two 300-iteration Bayesian searches).

use lens::prelude::*;
use lens_bench::plot::{AsciiScatter, Series};
use lens_bench::{
    print_table, run_paired_searches, save_csv, ExpArgs, ENERGY_OBJECTIVE, ERROR_OBJECTIVE,
    LATENCY_OBJECTIVE,
};

fn main() {
    let args = ExpArgs::parse();
    let paired = run_paired_searches(&args).expect("searches run");

    // Dump full exploration histories.
    save_csv(
        &args.artifact("fig6_lens_explored.csv"),
        &lens::core::report::OUTCOME_HEADER,
        &lens::core::report::outcome_rows(&paired.lens_outcome),
    );
    save_csv(
        &args.artifact("fig6_traditional_explored.csv"),
        &lens::core::report::OUTCOME_HEADER,
        &lens::core::report::outcome_rows(&paired.traditional_outcome),
    );
    save_csv(
        &args.artifact("fig6_traditional_partitioned_front.csv"),
        &lens::core::report::OUTCOME_HEADER,
        &lens::core::report::evaluation_rows(&paired.partitioned_traditional),
    );

    // The Fig 6 picture: energy-error plane, explored clouds + frontiers.
    let cloud = |outcome: &SearchOutcome| -> Vec<(f64, f64)> {
        outcome
            .explored()
            .iter()
            .map(|c| (c.objectives.energy_mj, c.objectives.error_pct))
            .collect()
    };
    let front_points = |front: &lens::pareto::ParetoFront<usize>| -> Vec<(f64, f64)> {
        front.iter().map(|(_, o)| (o[1], o[0])).collect()
    };
    let lens_front2d = paired
        .lens_outcome
        .front_2d(ERROR_OBJECTIVE, ENERGY_OBJECTIVE);
    let part_front2d = lens::core::traditional::front_of_2d(
        &paired.partitioned_traditional,
        ERROR_OBJECTIVE,
        ENERGY_OBJECTIVE,
    );
    let picture = AsciiScatter::new(
        "Figure 6 (energy vs error): . LENS explored  , Traditional explored  O LENS front  T Trad+part front",
        "energy (mJ)",
        "test error (%)",
    )
    .log_x()
    .series(Series::new("LENS explored", '.', cloud(&paired.lens_outcome)))
    .series(Series::new("Traditional explored", ',', cloud(&paired.traditional_outcome)))
    .series(Series::new("partitioned Traditional front", 'T', front_points(&part_front2d)))
    .series(Series::new("LENS front", 'O', front_points(&lens_front2d)));
    println!("\n{picture}");

    let mut summary_rows = Vec::new();
    for (plane, a, b) in [
        ("energy-error", ERROR_OBJECTIVE, ENERGY_OBJECTIVE),
        ("latency-error", ERROR_OBJECTIVE, LATENCY_OBJECTIVE),
    ] {
        let lens_front = paired.lens_outcome.front_2d(a, b);
        let trad_front = paired.traditional_outcome.front_2d(a, b);
        let part_front =
            lens::core::traditional::front_of_2d(&paired.partitioned_traditional, a, b);

        let cmp_raw =
            FrontierComparison::between(&lens_front.objectives(), &trad_front.objectives());
        let cmp_part =
            FrontierComparison::between(&lens_front.objectives(), &part_front.objectives());

        println!("\n=== Figure 6 ({plane} plane) ===");
        println!(
            "LENS frontier: {} members; Traditional: {}; Traditional+partitioning: {}",
            lens_front.len(),
            trad_front.len(),
            part_front.len()
        );
        println!("vs raw Traditional:\n{cmp_raw}");
        println!("vs partitioned Traditional:\n{cmp_part}");
        let paper = if plane == "energy-error" {
            ("60.00", "15.38", "76.47")
        } else {
            ("66.67", "14.28", "75.00")
        };
        println!(
            "paper (partitioned): LENS dominates {}%, dominated {}%, combined {}% LENS",
            paper.0, paper.1, paper.2
        );

        summary_rows.push(vec![
            plane.to_string(),
            format!("{:.2}", cmp_part.lens_dominates_pct),
            format!("{:.2}", cmp_part.baseline_dominates_pct),
            format!("{:.2}", cmp_part.combined.percent_from_a()),
            paper.0.into(),
            paper.1.into(),
            paper.2.into(),
        ]);
    }

    // Energy floors: the paper notes the Traditional search finds no
    // architecture below 207 mJ while LENS does, thanks to partitioning.
    let min_energy = |outcome: &SearchOutcome| {
        outcome
            .explored()
            .iter()
            .map(|c| c.objectives.energy_mj)
            .fold(f64::INFINITY, f64::min)
    };
    println!(
        "\nMinimum explored energy: LENS {:.1} mJ vs Traditional {:.1} mJ \
         (paper: Traditional never got below 207 mJ).",
        min_energy(&paired.lens_outcome),
        min_energy(&paired.traditional_outcome)
    );

    let header = [
        "plane",
        "lens_dominates_pct",
        "lens_dominated_pct",
        "combined_lens_pct",
        "paper_dominates",
        "paper_dominated",
        "paper_combined",
    ];
    print_table(
        "Figure 6 summary (vs partitioned Traditional)",
        &header,
        &summary_rows,
    );
    save_csv(&args.artifact("fig6_summary.csv"), &header, &summary_rows);
}
