//! Runs every experiment binary in sequence, regenerating all tables and
//! figures into `results/`. Pass `--quick` for a fast smoke run; without
//! it the search experiments use the paper's 300-iteration budget (use
//! `--release`).

use std::process::Command;

fn main() {
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "fig1_alexnet",
        "fig2_deployment",
        "table1_regions",
        "table2_features",
        "fig6_pareto",
        "fig7_criteria",
        "fig8_runtime",
        "ablation_cloud",
        "ablation_predictors",
        "ablation_acquisition",
        "ext_sensitivity",
    ];
    let self_path = std::env::current_exe().expect("current exe resolves");
    let bin_dir = self_path.parent().expect("exe has a directory");
    for bin in bins {
        println!("\n################ {bin} ################");
        let status = Command::new(bin_dir.join(bin))
            .args(&forwarded)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
    println!("\nAll experiments complete; CSV artifacts are under results/.");
}
