//! **Figure 2** — The effect of the underlying network conditions on
//! choosing the best partitioning scheme for different device capabilities.
//!
//! For AlexNet on (TX2 GPU + WiFi) and (TX2 CPU + LTE), sweeps the upload
//! throughput and prints each deployment option's latency and energy with
//! the winner marked — the bar groups of Fig 2.

use lens::prelude::*;
use lens_bench::{print_table, save_csv, ExpArgs};

const THROUGHPUTS: [f64; 6] = [0.5, 1.0, 3.0, 7.5, 16.1, 30.0];

fn main() {
    let args = ExpArgs::parse();
    let analysis = zoo::alexnet().analyze().expect("alexnet analyzes");

    let scenarios = [
        (
            "GPU/WiFi",
            DeviceProfile::jetson_tx2_gpu(),
            WirelessTechnology::Wifi,
        ),
        (
            "CPU/LTE",
            DeviceProfile::jetson_tx2_cpu(),
            WirelessTechnology::Lte,
        ),
    ];

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for (label, profile, tech) in scenarios {
        let perf = profile_network(&analysis, &profile);
        let planner = DeploymentPlanner::new(WirelessLink::new(tech, Mbps::new(3.0)));
        let options = planner
            .enumerate(&analysis, &perf)
            .expect("options enumerate");

        for metric in [Metric::Latency, Metric::Energy] {
            let unit = match metric {
                Metric::Latency => "ms",
                Metric::Energy => "mJ",
            };
            let mut rows = Vec::new();
            for tu in THROUGHPUTS {
                let tu_m = Mbps::new(tu);
                let (best, _) =
                    DeploymentPlanner::best_at(&options, metric, tu_m).expect("non-empty options");
                let mut row = vec![format!("{tu}")];
                for option in &options {
                    let value = option.cost(metric).at(tu_m);
                    let marker = if option.kind() == best.kind() {
                        "*"
                    } else {
                        ""
                    };
                    row.push(format!("{value:.1}{marker}"));
                    csv_rows.push(vec![
                        label.into(),
                        metric.to_string(),
                        format!("{tu}"),
                        option.to_string(),
                        format!("{value:.4}"),
                        (option.kind() == best.kind()).to_string(),
                    ]);
                }
                rows.push(row);
            }
            let mut header: Vec<String> = vec!["t_u (Mbps)".into()];
            header.extend(options.iter().map(|o| format!("{o} ({unit})")));
            let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
            print_table(
                &format!("Figure 2: {label} — {metric} per deployment option (* = best)"),
                &header_refs,
                &rows,
            );
        }
    }

    println!(
        "\nPaper's takeaway reproduced: the best option varies with t_u — e.g. GPU/WiFi \
         latency prefers Split@pool5 only at 30 Mbps, while CPU/LTE flips between \
         All-Edge, Split@pool5 and All-Cloud as t_u rises."
    );
    save_csv(
        &args.artifact("fig2_deployment.csv"),
        &[
            "scenario", "metric", "tu_mbps", "option", "value", "is_best",
        ],
        &csv_rows,
    );
}
