//! CI bench-regression gate.
//!
//! Re-measures the hot paths whose baselines are checked in under
//! `crates/bench/benches/BENCH_*.json` — the fluid fleet run
//! (`fleet/run/10000`), the per-request fleet run
//! (`fleet/per_request/10000`), the closed tail-latency loop
//! (`fleet/run_flash_crowd/10000`), the staged split-inference pipeline
//! (`fleet/pipeline/10000`), and the search-side paths that gate
//! fleet-in-the-loop NAS (`pareto/build_front/5000`, `gp/fit/300`,
//! `pareto/hypervolume_3d`) — and fails (exit 1) if any of them
//! regresses beyond a generous noise tolerance.
//!
//! The gate measures **in-process** (min-of-N wall clock) instead of
//! parsing bench output, and it builds its workloads from the *same*
//! constructors the criterion benches use (`lens_bench::workloads`), so
//! gate and bench cannot drift apart silently;
//! `tests/workspace_integrity.rs` pins the wiring. A first pass beyond
//! the limit earns exactly one re-measure before the gate fails — one
//! scheduler spike on a shared runner should not page anyone, while a
//! real regression fails both passes.
//!
//! Knobs (environment):
//! * `LENS_BENCH_MEASURE_MS` — wall-clock budget per benchmark
//!   (default 300; CI pins its own value in ci.yml — the 3× tolerance
//!   absorbs cross-machine and budget noise).
//! * `LENS_BENCH_GATE_TOLERANCE` — allowed slowdown factor over the
//!   checked-in baseline (default 3; CI machines differ from the
//!   recording machine, so this gates *gross* regressions only).

use lens::gp::kernel::Matern52;
use lens::gp::GpRegressor;
use lens::pareto::{hypervolume, ParetoFront};
use lens::prelude::*;
use lens_bench::workloads;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Allowed slowdown over the checked-in baseline before the gate fails.
const DEFAULT_TOLERANCE: f64 = 3.0;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Warm up once, then measure until the budget elapses (at least 3
/// iterations) and return the minimum per-iteration time — the
/// noise-robust statistic for a gate.
fn measure<F: FnMut()>(mut f: F) -> Duration {
    f(); // warmup
    let budget = Duration::from_millis(env_f64("LENS_BENCH_MEASURE_MS", 300.0) as u64);
    let started = Instant::now();
    let mut min = Duration::MAX;
    let mut iters = 0u32;
    while iters < 3 || started.elapsed() < budget {
        let t = Instant::now();
        f();
        min = min.min(t.elapsed());
        iters += 1;
    }
    min
}

/// Pulls `number_key: <f64>` out of the JSON object that follows the
/// first occurrence of `section` — a deliberately minimal extractor for
/// the flat, checked-in `BENCH_*.json` baselines (no JSON dependency in
/// the offline build).
fn baseline(json: &str, section: &str, number_key: &str) -> f64 {
    let start = json
        .find(&format!("\"{section}\""))
        .unwrap_or_else(|| panic!("baseline section {section:?} missing"));
    let scope = &json[start..];
    let scope = &scope[..scope.find('}').unwrap_or(scope.len())];
    let key = format!("\"{number_key}\":");
    let at = scope
        .find(&key)
        .unwrap_or_else(|| panic!("baseline key {number_key:?} missing in {section:?}"));
    let value = scope[at + key.len()..]
        .trim_start()
        .split([',', '\n', '}'])
        .next()
        .expect("value after key");
    value
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("unparsable baseline {section}/{number_key}: {e}"))
}

fn read(path: &str) -> String {
    let full = format!("{}/benches/{path}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&full).unwrap_or_else(|e| panic!("cannot read {full}: {e}"))
}

struct Gate {
    tolerance: f64,
    failures: u32,
}

impl Gate {
    /// Measures `workload` and compares against the tolerance-scaled
    /// baseline. A first pass over the limit triggers exactly one
    /// re-measure (keeping the better minimum) before the gate fails:
    /// shared CI runners throw one-off noise spikes a whole budget long,
    /// and a real regression is slow on both passes anyway.
    fn check<F: FnMut()>(&mut self, name: &str, mut workload: F, baseline_ns: f64) {
        let limit_ns = baseline_ns * self.tolerance;
        let mut measured = measure(&mut workload);
        let mut note = "";
        if measured.as_nanos() as f64 > limit_ns {
            measured = measured.min(measure(&mut workload));
            note = "  [re-measured]";
        }
        let measured_ns = measured.as_nanos() as f64;
        let verdict = if measured_ns <= limit_ns {
            "ok"
        } else {
            self.failures += 1;
            "REGRESSION"
        };
        println!(
            "gate {name:<28} min {measured_ns:>14.0} ns  baseline {baseline_ns:>14.0} ns  limit {limit_ns:>14.0} ns  {verdict}{note}"
        );
    }
}

fn main() {
    let tolerance = env_f64("LENS_BENCH_GATE_TOLERANCE", DEFAULT_TOLERANCE);
    let fleet_json = read("BENCH_fleet.json");
    let pareto_json = read("BENCH_pareto.json");
    let mut gate = Gate {
        tolerance,
        failures: 0,
    };
    println!("bench-regression gate (tolerance {tolerance}x)\n");

    // fleet/run/10000 — 100k fluid inference events per iteration, on
    // the bench's plain scenario.
    let engine = FleetEngine::new(workloads::fleet_scenario(10_000, 1)).expect("engine builds");
    let events = engine.scenario().expected_events() as f64;
    gate.check(
        "fleet/run/10000",
        || {
            black_box(engine.run().expect("run").inferences());
        },
        baseline(&fleet_json, "run/10000", "after_ns_per_inference_event") * events,
    );

    // fleet/run_traced/10000 — the same engine with the flight recorder
    // attached: the enabled-telemetry price on the identical workload.
    // The untraced `fleet/run/10000` above doubles as the disabled-sink
    // overhead check — its hooks const-fold away, so it must stay within
    // the pre-telemetry baseline's tolerance.
    gate.check(
        "fleet/run_traced/10000",
        || {
            black_box(engine.run_traced().expect("run").0.inferences());
        },
        baseline(
            &fleet_json,
            "run_traced/10000",
            "after_ns_per_inference_event",
        ) * events,
    );

    // fleet/per_request/10000 — the bench's batched two-backend tier at
    // per-request fidelity (the workload the baseline was recorded on).
    let engine = FleetEngine::new(workloads::batched_fleet_scenario(
        CloudSimFidelity::PerRequest,
    ))
    .expect("engine builds");
    // Event count recomputed from the engine under test — the batched
    // scenario may be retuned independently of the plain one.
    let per_request_events = engine.scenario().expected_events() as f64;
    gate.check(
        "fleet/per_request/10000",
        || {
            black_box(engine.run().expect("run").inferences());
        },
        baseline(
            &fleet_json,
            "per_request/10000",
            "after_ns_per_inference_event",
        ) * per_request_events,
    );

    // fleet/run_flash_crowd/10000 — the closed tail-latency loop
    // (workload curve + tail-targeting autoscaler + deadline-driven
    // device retreats) at per-request fidelity.
    let engine = FleetEngine::new(workloads::flash_crowd_fleet_scenario()).expect("engine builds");
    let flash_crowd_events = engine.scenario().expected_events() as f64;
    gate.check(
        "fleet/run_flash_crowd/10000",
        || {
            black_box(engine.run().expect("run").inferences());
        },
        baseline(
            &fleet_json,
            "run_flash_crowd/10000",
            "after_ns_per_inference_event",
        ) * flash_crowd_events,
    );

    // fleet/pipeline/10000 — the batched tier with a three-stage
    // split-inference pipeline at per-request fidelity: every offload
    // replays as a chain of stage requests with integer-priced
    // inter-stage transfers.
    let engine = FleetEngine::new(workloads::pipeline_fleet_scenario()).expect("engine builds");
    let pipeline_events = engine.scenario().expected_events() as f64;
    gate.check(
        "fleet/pipeline/10000",
        || {
            black_box(engine.run().expect("run").inferences());
        },
        baseline(
            &fleet_json,
            "pipeline/10000",
            "after_ns_per_inference_event",
        ) * pipeline_events,
    );

    // pareto/build_front/5000 — frontier maintenance over a full NAS
    // exploration history (the fleet-in-the-loop search's per-iteration
    // `Pareto_update` cost, amortized).
    let pts = workloads::pareto_points(5000);
    gate.check(
        "pareto/build_front/5000",
        || {
            let front: ParetoFront<usize> = pts.iter().cloned().enumerate().collect();
            black_box(front.len());
        },
        baseline(&pareto_json, "build_front/5000", "after_ms") * 1e6,
    );

    // gp/fit/300 — the O(n³) surrogate refit at the paper's full
    // iteration budget, the other search-side hot path gating
    // fleet-in-the-loop NAS.
    let (xs, ys) = workloads::gp_training_data(300);
    gate.check(
        "gp/fit/300",
        || {
            black_box(
                GpRegressor::fit(xs.clone(), ys.clone(), Matern52::new(0.8, 1.0), 1e-4)
                    .expect("fit succeeds"),
            );
        },
        baseline(&pareto_json, "gp/fit/300", "after_ms") * 1e6,
    );

    // pareto/hypervolume_3d — the 2000-point sort-and-sweep.
    let front: ParetoFront<usize> = workloads::pareto_points(2000)
        .into_iter()
        .enumerate()
        .collect();
    let objectives = front.objectives();
    gate.check(
        "pareto/hypervolume_3d",
        || {
            black_box(hypervolume(black_box(&objectives), &[2.0, 2.0, 2.0]));
        },
        baseline(&pareto_json, "hypervolume_3d", "optimized_mean_us") * 1_000.0,
    );

    if gate.failures > 0 {
        eprintln!(
            "\n{} benchmark(s) regressed beyond {tolerance}x",
            gate.failures
        );
        std::process::exit(1);
    }
    println!("\nall gated benchmarks within {tolerance}x of their baselines");
}
