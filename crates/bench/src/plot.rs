//! Terminal scatter plots for frontier figures.
//!
//! The experiment binaries regenerate the paper's *numbers*; this module
//! regenerates the *pictures* — an ASCII scatter of explored populations
//! and Pareto frontiers (Fig 6) that renders anywhere, with distinct glyphs
//! per series and log-scale support for the heavy-tailed energy axis.

use std::fmt;

/// One plotted series: points plus the glyph that renders them. Later
/// series overdraw earlier ones where cells collide.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Glyph used for the series' points.
    pub glyph: char,
    /// `(x, y)` data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, glyph: char, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            glyph,
            points,
        }
    }
}

/// An ASCII scatter plot.
#[derive(Debug, Clone)]
pub struct AsciiScatter {
    title: String,
    x_label: String,
    y_label: String,
    width: usize,
    height: usize,
    log_x: bool,
    series: Vec<Series>,
}

impl AsciiScatter {
    /// Creates an empty plot with default 72×22 cells.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        AsciiScatter {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            width: 72,
            height: 22,
            log_x: false,
            series: Vec::new(),
        }
    }

    /// Plots the x axis on a log10 scale (useful for energy spans).
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Overrides the canvas size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 8 cells.
    pub fn size(mut self, width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 8, "canvas too small");
        self.width = width;
        self.height = height;
        self
    }

    /// Adds a series (drawn over earlier ones).
    pub fn series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    fn x_transform(&self, x: f64) -> f64 {
        if self.log_x {
            x.max(f64::MIN_POSITIVE).log10()
        } else {
            x
        }
    }

    /// Renders the plot to a string. Returns a placeholder message when no
    /// finite points exist.
    pub fn render(&self) -> String {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                let tx = self.x_transform(x);
                if tx.is_finite() && y.is_finite() {
                    xs.push(tx);
                    ys.push(y);
                }
            }
        }
        if xs.is_empty() {
            return format!("{}: (no data)\n", self.title);
        }
        let (x_lo, x_hi) = bounds(&xs);
        let (y_lo, y_hi) = bounds(&ys);

        let mut grid = vec![vec![' '; self.width]; self.height];
        for s in &self.series {
            for &(x, y) in &s.points {
                let tx = self.x_transform(x);
                if !tx.is_finite() || !y.is_finite() {
                    continue;
                }
                let cx = scale(tx, x_lo, x_hi, self.width - 1);
                // y axis points up: row 0 is the max.
                let cy = self.height - 1 - scale(y, y_lo, y_hi, self.height - 1);
                grid[cy][cx] = s.glyph;
            }
        }

        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        let y_hi_label = format!("{y_hi:.4}");
        let y_lo_label = format!("{y_lo:.4}");
        let margin = y_hi_label.len().max(y_lo_label.len());
        for (row_index, row) in grid.iter().enumerate() {
            let label = if row_index == 0 {
                y_hi_label.as_str()
            } else if row_index == self.height - 1 {
                y_lo_label.as_str()
            } else {
                ""
            };
            out.push_str(&format!("{label:>margin$} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>margin$} +{}\n", "", "-".repeat(self.width)));
        let x_lo_disp = if self.log_x { 10f64.powf(x_lo) } else { x_lo };
        let x_hi_disp = if self.log_x { 10f64.powf(x_hi) } else { x_hi };
        out.push_str(&format!(
            "{:>margin$}  {:<.4} {} {:>width$.4}{}\n",
            "",
            x_lo_disp,
            self.x_label,
            x_hi_disp,
            if self.log_x { " (log)" } else { "" },
            width = self.width.saturating_sub(self.x_label.len() + 12),
        ));
        out.push_str(&format!("y: {}\n", self.y_label));
        for s in &self.series {
            out.push_str(&format!("  {}  {}\n", s.glyph, s.label));
        }
        out
    }
}

impl fmt::Display for AsciiScatter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

fn bounds(values: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if (hi - lo).abs() < 1e-12 {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    }
}

fn scale(v: f64, lo: f64, hi: f64, cells: usize) -> usize {
    (((v - lo) / (hi - lo)) * cells as f64).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_at_corners() {
        let plot = AsciiScatter::new("t", "x", "y")
            .size(10, 8)
            .series(Series::new("s", '*', vec![(0.0, 0.0), (1.0, 1.0)]));
        let text = plot.render();
        assert!(text.contains('*'));
        // Two points, two glyph cells.
        assert_eq!(text.matches('*').count() - 1, 2); // -1: legend glyph
    }

    #[test]
    fn later_series_overdraw() {
        let plot = AsciiScatter::new("t", "x", "y")
            .size(10, 8)
            .series(Series::new("a", 'a', vec![(0.5, 0.5)]))
            .series(Series::new("b", 'b', vec![(0.5, 0.5)]));
        let text = plot.render();
        // The shared cell shows 'b'; 'a' only remains in the legend.
        let grid_part: String = text.lines().take(9).collect();
        assert!(grid_part.contains('b'));
        assert!(!grid_part.contains('a'));
    }

    #[test]
    fn empty_plot_is_graceful() {
        let plot = AsciiScatter::new("empty", "x", "y");
        assert!(plot.render().contains("(no data)"));
        let nan_only =
            AsciiScatter::new("n", "x", "y").series(Series::new("s", '*', vec![(f64::NAN, 1.0)]));
        assert!(nan_only.render().contains("(no data)"));
    }

    #[test]
    fn log_scale_compresses_tails() {
        let plot = AsciiScatter::new("t", "x", "y")
            .size(40, 8)
            .log_x()
            .series(Series::new(
                "s",
                '*',
                vec![(1.0, 0.0), (10.0, 0.5), (100.0, 1.0)],
            ));
        let text = plot.render();
        assert!(text.contains("(log)"));
        // All three points render (middle point is mid-canvas on log scale).
        assert_eq!(text.matches('*').count() - 1, 3);
    }

    #[test]
    fn degenerate_range_padded() {
        let plot = AsciiScatter::new("t", "x", "y")
            .size(10, 8)
            .series(Series::new("s", '*', vec![(2.0, 3.0), (2.0, 3.0)]));
        let text = plot.render();
        assert!(text.contains('*'));
    }

    #[test]
    #[should_panic(expected = "canvas too small")]
    fn tiny_canvas_rejected() {
        AsciiScatter::new("t", "x", "y").size(4, 4);
    }
}
