//! The benchmark workloads shared by the criterion benches and the CI
//! bench-regression gate (`src/bin/bench_gate.rs`).
//!
//! A gate that re-measures a *copy* of a bench's workload can silently
//! drift from what the bench actually measures; defining each gated
//! workload exactly once here makes that drift impossible — the bench and
//! the gate call the same constructor.

use lens::prelude::*;

/// The plain fleet scenario behind `fleet/run/*` and
/// `fleet/engine_build_10k`: a single unbatched 16-slot / 10 ms cloud
/// backend per region, dynamic policy on energy.
pub fn fleet_scenario(population: usize, shards: usize) -> FleetScenario {
    FleetScenario::builder()
        .population(population)
        .horizon(Millis::new(600_000.0)) // 10 minutes, 60 s epochs
        .cloud(CloudCapacity::new(16, 10.0))
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Energy)
        .seed(11)
        .shards(shards)
        .build()
        .expect("valid scenario")
}

/// A two-backend batched serving tier with admission control — the
/// heaviest per-epoch barrier configuration.
pub fn batched_serving() -> CloudServing {
    CloudServing::new(vec![
        BackendConfig::new("gpu", 2, 50.0, 0.25).with_batching(64, 100.0),
        BackendConfig::new("cpu", 8, 40.0, 40.0).with_batching(8, 100.0),
    ])
    .with_admission(AdmissionPolicy::Deadline {
        max_wait_ms: 2_000.0,
    })
    .with_failover(FailoverPolicy::SiblingRegion { penalty_ms: 60.0 })
}

/// The batched-tier fleet scenario behind `fleet/run_batched/10000` and
/// `fleet/per_request/10000` (the latter at
/// [`CloudSimFidelity::PerRequest`]).
pub fn batched_fleet_scenario(fidelity: CloudSimFidelity) -> FleetScenario {
    FleetScenario::builder()
        .population(10_000)
        .horizon(Millis::new(600_000.0))
        .serving(batched_serving())
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Energy)
        .seed(11)
        .fidelity(fidelity)
        .build()
        .expect("valid scenario")
}

/// The autoscaled, cost-aware variant behind `fleet/run_autoscaled/10000`:
/// the batched tier with priced autoscalers on both pools and cost-aware
/// dispatch.
pub fn autoscaled_fleet_scenario() -> FleetScenario {
    let mut serving = batched_serving().with_dispatch(DispatchPolicy::CostAware);
    serving.backends[0] = serving.backends[0]
        .clone()
        .with_price(4.0)
        .with_energy(2.0)
        .with_autoscaler(Autoscaler::new(ScalingSignal::Utilization, 0.7, 0.3, 1, 8).with_step(2));
    serving.backends[1] = serving.backends[1]
        .clone()
        .with_price(1.0)
        .with_energy(1.0)
        .with_autoscaler(Autoscaler::new(ScalingSignal::QueueDepth, 8.0, 0.5, 1, 16));
    FleetScenario::builder()
        .population(10_000)
        .horizon(Millis::new(600_000.0))
        .serving(serving)
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Energy)
        .seed(11)
        .build()
        .expect("valid scenario")
}

/// The closed-loop scenario behind `fleet/run_flash_crowd/10000`: a
/// flash-crowd [`WorkloadCurve`] modulating offload intent, a
/// tail-latency-targeting autoscaler stepping at the barrier, and a
/// device-side tail deadline driving retreats — every stage of the
/// measured-tail feedback loop on the per-request hot path.
pub fn flash_crowd_fleet_scenario() -> FleetScenario {
    let serving = CloudServing::new(vec![BackendConfig::new("gpu", 2, 100.0, 2.0)
        .with_batching(16, 50.0)
        .with_autoscaler(
            Autoscaler::new(
                ScalingSignal::TailLatency { target_us: 500_000 },
                1.0,
                0.25,
                1,
                8,
            )
            .with_alpha(0.6)
            .with_cooldown(1),
        )]);
    FleetScenario::builder()
        .population(10_000)
        .horizon(Millis::new(600_000.0))
        .serving(serving)
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Latency)
        .seed(11)
        .fidelity(CloudSimFidelity::PerRequest)
        .workload(WorkloadCurve::flash_crowd(
            Millis::new(180_000.0),
            Millis::new(120_000.0),
        ))
        .tail_deadline(Millis::new(2_000.0))
        .build()
        .expect("valid scenario")
}

/// The staged-pipeline scenario behind `fleet/pipeline/10000`: the
/// batched tier at per-request fidelity with a three-stage
/// device → edge → cloud pipeline, so every offload replays as a chain
/// of stage requests with integer-priced inter-stage transfers — the
/// deepest per-offload barrier workload the engine supports today.
pub fn pipeline_fleet_scenario() -> FleetScenario {
    FleetScenario::builder()
        .population(10_000)
        .horizon(Millis::new(600_000.0))
        .serving(batched_serving())
        .policy(FleetPolicy::Dynamic)
        .metric(Metric::Energy)
        .seed(11)
        .fidelity(CloudSimFidelity::PerRequest)
        // AlexNet-shaped staging: conv-tower activation to the edge
        // stage, pooled features to the cloud stage.
        .pipeline(PipelineSpec::new(vec![186_624, 43_264]))
        .build()
        .expect("valid scenario")
}

/// Deterministic pseudo-random GP training data in \[0,1\]^23 (the VGG-
/// space embedding dimension) behind `gp/fit/*` and the gate's
/// `gp/fit/300` — no RNG in the measured region.
pub fn gp_training_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let dim = 23;
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..dim)
                .map(|j| {
                    let v = ((i * 31 + j * 17) % 97) as f64 / 96.0;
                    (v * 1.3).fract()
                })
                .collect()
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().map(|v| (v * 3.0).sin()).sum::<f64>())
        .collect();
    (xs, ys)
}

/// The deterministic 3-objective point stream behind the `pareto/*`
/// benches (`build_front`, `coverage`, `combined_composition`,
/// `hypervolume_3d`).
pub fn pareto_points(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let a = ((i * 37) % 101) as f64 / 100.0;
            let b = ((i * 53) % 103) as f64 / 102.0;
            vec![a, b, (2.0 - a - b).max(0.0)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build() {
        assert_eq!(fleet_scenario(100, 2).population(), 100);
        assert_eq!(
            batched_fleet_scenario(CloudSimFidelity::PerRequest).fidelity(),
            CloudSimFidelity::PerRequest
        );
        assert_eq!(batched_serving().backends.len(), 2);
        let autoscaled = autoscaled_fleet_scenario();
        assert!(autoscaled
            .serving()
            .backends
            .iter()
            .all(|b| b.autoscaler.is_some()));
        let flash = flash_crowd_fleet_scenario();
        assert!(flash.workload().is_some() && flash.tail_deadline().is_some());
        let pipelined = pipeline_fleet_scenario();
        assert!(pipelined.pipeline().is_some_and(|p| p.depth() == 3));
        assert_eq!(pareto_points(3).len(), 3);
    }
}
