//! The flight recorder: a bounded ring buffer of trace events.
//!
//! The recorder keeps the **most recent** `capacity` events. When the
//! ring is full the oldest event is evicted and counted in `dropped`, so
//! a congested run degrades gracefully (and visibly) instead of growing
//! without bound. Because eviction depends only on the deterministic
//! event stream, a truncated trace is still bit-identical across shard
//! counts.

use std::collections::VecDeque;

use crate::event::TraceEvent;
use crate::sink::Sink;
use crate::Fnv64;

/// A bounded, sim-time-ordered event ring. The engine's traced run mode
/// (`FleetEngine::run_traced`) records into one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    recorded: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — `TelemetryConfig::validate`
    /// rejects that configuration before an engine is ever built.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4_096)),
            recorded: 0,
            dropped: 0,
        }
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// FNV-1a digest over the lifetime counters and every retained
    /// event, in order. Two runs whose digests match recorded the same
    /// trace bit for bit — the shard-invariance pin in
    /// `tests/fleet_sim.rs` compares exactly this value.
    pub fn digest(&self) -> u64 {
        let mut hasher = Fnv64::new();
        hasher.write_u64(self.recorded);
        hasher.write_u64(self.dropped);
        for event in &self.events {
            event.hash_into(&mut hasher);
        }
        hasher.finish()
    }
}

impl Sink for FlightRecorder {
    const ENABLED: bool = true;

    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
        self.recorded += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shed_at(time_us: u64) -> TraceEvent {
        TraceEvent::Shed {
            time_us,
            device_id: time_us,
            region: 0,
        }
    }

    #[test]
    fn records_in_order_up_to_capacity() {
        let mut rec = FlightRecorder::new(8);
        assert!(rec.is_empty());
        for t in 0..5 {
            rec.record(shed_at(t));
        }
        assert_eq!(rec.len(), 5);
        assert_eq!(rec.recorded(), 5);
        assert_eq!(rec.dropped(), 0);
        let times: Vec<u64> = rec.events().map(|e| e.time_us()).collect();
        assert_eq!(times, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_ring_evicts_oldest_and_counts_drops() {
        let mut rec = FlightRecorder::new(3);
        for t in 0..5 {
            rec.record(shed_at(t));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.capacity(), 3);
        assert_eq!(rec.recorded(), 5);
        assert_eq!(rec.dropped(), 2);
        let times: Vec<u64> = rec.events().map(|e| e.time_us()).collect();
        assert_eq!(times, [2, 3, 4]);
    }

    #[test]
    fn digest_tracks_content_and_drop_history() {
        let mut a = FlightRecorder::new(4);
        let mut b = FlightRecorder::new(4);
        for t in 0..4 {
            a.record(shed_at(t));
            b.record(shed_at(t));
        }
        assert_eq!(a.digest(), b.digest());
        b.record(shed_at(9));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = FlightRecorder::new(0);
    }
}
