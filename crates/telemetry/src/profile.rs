//! Deterministic engine profiling: work counters per barrier phase.
//!
//! A wall-clock profiler cannot live inside the bit-identity contract,
//! so the engine counts *work* instead of time: events popped off device
//! heaps, heap push/pop operations, offload records merged at the
//! barrier, batches closed by the serving tier. The resulting profile is
//! a pure function of scenario and seed — two machines produce the same
//! numbers — which is exactly what the parallel-rewrite effort needs as
//! its baseline workload breakdown.

use crate::event::{BarrierPhase, TraceEvent};

/// Work counters for one barrier phase (or one aggregation window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCounters {
    /// Events popped off a simulation heap (device next-serve events in
    /// the shard step; microsim slot/linger timers in drain).
    pub events_popped: u64,
    /// Total heap operations (pops plus pushes).
    pub heap_ops: u64,
    /// Offload records merged across shards at the barrier.
    pub records_merged: u64,
    /// Batches closed by the serving tier.
    pub batches_closed: u64,
}

impl PhaseCounters {
    /// Accumulates `other` into `self`.
    pub fn add(&mut self, other: &PhaseCounters) {
        self.events_popped += other.events_popped;
        self.heap_ops += other.heap_ops;
        self.records_merged += other.records_merged;
        self.batches_closed += other.batches_closed;
    }

    /// Whether every counter is zero.
    pub fn is_empty(&self) -> bool {
        *self == PhaseCounters::default()
    }
}

/// The per-phase accumulator threaded through the engine's hot paths.
///
/// A probe is either enabled (traced run) or disabled (plain run). Every
/// method is `#[inline]` and gates on the flag first, so the disabled
/// probe that the untraced wrappers pass down costs one predictable
/// branch. The probe is a concrete type — not a generic parameter — so
/// `cloud.rs` and `device.rs` stay monomorphization-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseProbe {
    enabled: bool,
    events: Vec<TraceEvent>,
    counters: PhaseCounters,
}

impl PhaseProbe {
    /// A recording probe.
    pub fn enabled() -> Self {
        PhaseProbe {
            enabled: true,
            events: Vec::new(),
            counters: PhaseCounters::default(),
        }
    }

    /// A no-op probe for untraced code paths.
    pub fn disabled() -> Self {
        PhaseProbe::default()
    }

    /// Whether this probe records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// One heap pop (counts as one heap op too).
    #[inline]
    pub fn on_pop(&mut self) {
        if self.enabled {
            self.counters.events_popped += 1;
            self.counters.heap_ops += 1;
        }
    }

    /// One heap push.
    #[inline]
    pub fn on_push(&mut self) {
        if self.enabled {
            self.counters.heap_ops += 1;
        }
    }

    /// `n` batches closed.
    #[inline]
    pub fn on_batches(&mut self, n: u64) {
        if self.enabled {
            self.counters.batches_closed += n;
        }
    }

    /// `n` offload records merged at the barrier.
    #[inline]
    pub fn on_merged(&mut self, n: u64) {
        if self.enabled {
            self.counters.records_merged += n;
        }
    }

    /// Buffers one trace event (barrier-side emission).
    #[inline]
    pub fn emit(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// Drains the buffered events and counters, resetting the probe for
    /// the next phase.
    pub fn take(&mut self) -> (Vec<TraceEvent>, PhaseCounters) {
        (
            std::mem::take(&mut self.events),
            std::mem::take(&mut self.counters),
        )
    }
}

/// The whole-run profile: one [`PhaseCounters`] per [`BarrierPhase`],
/// plus the epoch count, accumulated over every epoch of a traced run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineProfile {
    epochs: u64,
    phases: [PhaseCounters; 4],
}

impl EngineProfile {
    /// A zeroed profile.
    pub fn new() -> Self {
        EngineProfile::default()
    }

    /// Accumulates one phase's counters.
    pub fn record(&mut self, phase: BarrierPhase, counters: &PhaseCounters) {
        self.phases[phase.index()].add(counters);
    }

    /// Counts one completed epoch.
    pub fn bump_epochs(&mut self) {
        self.epochs += 1;
    }

    /// Epochs profiled.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The accumulated counters for `phase`.
    pub fn phase(&self, phase: BarrierPhase) -> &PhaseCounters {
        &self.phases[phase.index()]
    }

    /// Sum over all four phases.
    pub fn total(&self) -> PhaseCounters {
        let mut total = PhaseCounters::default();
        for counters in &self.phases {
            total.add(counters);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_records_nothing() {
        let mut probe = PhaseProbe::disabled();
        assert!(!probe.is_enabled());
        probe.on_pop();
        probe.on_push();
        probe.on_batches(3);
        probe.on_merged(7);
        probe.emit(TraceEvent::Shed {
            time_us: 1,
            device_id: 1,
            region: 0,
        });
        let (events, counters) = probe.take();
        assert!(events.is_empty());
        assert!(counters.is_empty());
    }

    #[test]
    fn enabled_probe_counts_and_buffers() {
        let mut probe = PhaseProbe::enabled();
        probe.on_pop();
        probe.on_pop();
        probe.on_push();
        probe.on_batches(2);
        probe.on_merged(5);
        probe.emit(TraceEvent::Shed {
            time_us: 1,
            device_id: 1,
            region: 0,
        });
        let (events, counters) = probe.take();
        assert_eq!(events.len(), 1);
        assert_eq!(counters.events_popped, 2);
        assert_eq!(counters.heap_ops, 3);
        assert_eq!(counters.batches_closed, 2);
        assert_eq!(counters.records_merged, 5);
        // take() resets the probe for the next phase.
        let (events, counters) = probe.take();
        assert!(events.is_empty() && counters.is_empty());
        assert!(probe.is_enabled());
    }

    #[test]
    fn profile_accumulates_per_phase() {
        let mut profile = EngineProfile::new();
        let drain = PhaseCounters {
            events_popped: 10,
            heap_ops: 20,
            records_merged: 0,
            batches_closed: 4,
        };
        profile.record(BarrierPhase::Drain, &drain);
        profile.record(BarrierPhase::Drain, &drain);
        let scale = PhaseCounters {
            events_popped: 0,
            heap_ops: 2,
            records_merged: 0,
            batches_closed: 0,
        };
        profile.record(BarrierPhase::Scale, &scale);
        profile.bump_epochs();
        assert_eq!(profile.epochs(), 1);
        assert_eq!(profile.phase(BarrierPhase::Drain).batches_closed, 8);
        assert_eq!(profile.phase(BarrierPhase::Scale).heap_ops, 2);
        assert!(profile.phase(BarrierPhase::Publish).is_empty());
        assert_eq!(profile.total().heap_ops, 42);
    }
}
