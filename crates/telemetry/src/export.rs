//! Export formats for one run's telemetry.
//!
//! [`RunTelemetry`] bundles the flight recorder, the metrics registry,
//! and the engine profile, and renders two artifacts:
//!
//! * [`RunTelemetry::to_json`] — a self-describing JSON document
//!   (`lens-telemetry-v1`) with the full event list, every fixed-point
//!   timeline, and the per-phase work counters.
//! * [`RunTelemetry::to_chrome_trace`] — Chrome `trace_event` format
//!   (`{"traceEvents": [...]}`): trace events become instants, metric
//!   timelines become counter tracks, timestamps are simulation µs.
//!   The file opens directly in `about://tracing` or Perfetto.
//!
//! Both renderers are hand-rolled (the crate is dependency-free) and
//! integer-only: fixed-point samples are formatted with
//! [`crate::metrics::format_fp`], never through `f64` Display, so the
//! bytes of an export are as deterministic as the run behind it.

use crate::event::{BarrierPhase, TraceEvent};
use crate::metrics::{format_fp, MetricsRegistry};
use crate::profile::EngineProfile;
use crate::recorder::FlightRecorder;

/// Everything recorded during one traced run
/// (`FleetEngine::run_traced` returns the report paired with this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunTelemetry {
    /// The flight-recorder event ring.
    pub recorder: FlightRecorder,
    /// The per-epoch metrics timelines.
    pub metrics: MetricsRegistry,
    /// The per-phase work-counter profile.
    pub profile: EngineProfile,
}

impl RunTelemetry {
    /// The flight-recorder trace digest (shard-count invariant).
    pub fn trace_digest(&self) -> u64 {
        self.recorder.digest()
    }

    /// The metrics-timeline digest (shard-count invariant).
    pub fn metrics_digest(&self) -> u64 {
        self.metrics.digest()
    }

    /// Renders the `lens-telemetry-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4_096);
        out.push_str("{\"schema\":\"lens-telemetry-v1\"");

        out.push_str(&format!(
            ",\"trace\":{{\"capacity\":{},\"recorded\":{},\"dropped\":{},\"digest\":\"{:#018x}\",\"events\":[",
            self.recorder.capacity(),
            self.recorder.recorded(),
            self.recorder.dropped(),
            self.recorder.digest(),
        ));
        for (i, event) in self.recorder.events().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":\"{}\",{}}}",
                event.kind(),
                event_fields_json(event)
            ));
        }
        out.push_str("]}");

        out.push_str(&format!(
            ",\"metrics\":{{\"epoch_us\":{},\"digest\":\"{:#018x}\",\"series\":[",
            self.metrics.epoch_us(),
            self.metrics.digest(),
        ));
        for (i, (name, points)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"points_fp\":[",
                escape_json(name)
            ));
            for (j, &point) in points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&point.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("]}");

        out.push_str(&format!(
            ",\"profile\":{{\"epochs\":{},\"phases\":[",
            self.profile.epochs()
        ));
        for (i, phase) in BarrierPhase::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let c = self.profile.phase(phase);
            out.push_str(&format!(
                "{{\"phase\":\"{}\",\"events_popped\":{},\"heap_ops\":{},\"records_merged\":{},\"batches_closed\":{}}}",
                phase.name(),
                c.events_popped,
                c.heap_ops,
                c.records_merged,
                c.batches_closed,
            ));
        }
        out.push_str("]}}");
        out
    }

    /// Renders Chrome `trace_event` JSON. Instant events (`ph:"i"`)
    /// carry the flight-recorder trace on thread 0; each metric series
    /// becomes a counter track (`ph:"C"`) sampled at its epoch
    /// boundaries. Timestamps are simulation microseconds.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(4_096);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for event in self.recorder.events() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"fleet\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":0,\"args\":{{{}}}}}",
                event.kind(),
                event.time_us(),
                event_fields_json(event),
            ));
        }
        let epoch_us = self.metrics.epoch_us();
        for (name, points) in self.metrics.iter() {
            for (epoch, &point) in points.iter().enumerate() {
                if !first {
                    out.push(',');
                }
                first = false;
                // Samples are taken at the epoch *barrier*, i.e. the end
                // of epoch `epoch`.
                let ts = (epoch as u64 + 1) * epoch_us;
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"metrics\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\"value\":{}}}}}",
                    escape_json(name),
                    ts,
                    format_fp(point),
                ));
            }
        }
        out.push_str("]}");
        out
    }
}

/// The `"key":value` field list for one event (no braces), shared by
/// both export formats. Booleans render as JSON booleans, everything
/// else is an integer.
fn event_fields_json(event: &TraceEvent) -> String {
    match *event {
        TraceEvent::Dispatch {
            time_us,
            device_id,
            region,
            high_priority,
            failed_over,
        } => format!(
            "\"time_us\":{time_us},\"device_id\":{device_id},\"region\":{region},\"high_priority\":{high_priority},\"failed_over\":{failed_over}"
        ),
        TraceEvent::Shed {
            time_us,
            device_id,
            region,
        } => format!("\"time_us\":{time_us},\"device_id\":{device_id},\"region\":{region}"),
        TraceEvent::Failover {
            time_us,
            device_id,
            from_region,
            to_region,
        } => format!(
            "\"time_us\":{time_us},\"device_id\":{device_id},\"from_region\":{from_region},\"to_region\":{to_region}"
        ),
        TraceEvent::BatchClose {
            time_us,
            region,
            backend,
            batches,
            size_milli,
        } => format!(
            "\"time_us\":{time_us},\"region\":{region},\"backend\":{backend},\"batches\":{batches},\"size_milli\":{size_milli}"
        ),
        TraceEvent::ScalingStep {
            time_us,
            region,
            backend,
            from_slots,
            to_slots,
        } => format!(
            "\"time_us\":{time_us},\"region\":{region},\"backend\":{backend},\"from_slots\":{from_slots},\"to_slots\":{to_slots}"
        ),
        TraceEvent::Phase {
            time_us,
            epoch,
            phase,
        } => format!(
            "\"time_us\":{time_us},\"epoch\":{epoch},\"phase\":\"{}\"",
            phase.name()
        ),
        TraceEvent::Retreat {
            time_us,
            device_id,
            region,
        } => format!("\"time_us\":{time_us},\"device_id\":{device_id},\"region\":{region}"),
        TraceEvent::CurvePhase {
            time_us,
            region,
            multiplier_fp,
        } => format!(
            "\"time_us\":{time_us},\"region\":{region},\"multiplier_fp\":{multiplier_fp}"
        ),
        TraceEvent::StageTransition {
            time_us,
            device_id,
            region,
            from_stage,
            to_stage,
            transfer_us,
        } => format!(
            "\"time_us\":{time_us},\"device_id\":{device_id},\"region\":{region},\"from_stage\":{from_stage},\"to_stage\":{to_stage},\"transfer_us\":{transfer_us}"
        ),
    }
}

/// Minimal JSON string escaping. Series names are plain identifiers in
/// practice, but user-supplied backend names flow into them, so quotes,
/// backslashes, and control characters are handled anyway.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::to_fp;
    use crate::profile::PhaseCounters;
    use crate::sink::Sink;

    fn sample_telemetry() -> RunTelemetry {
        let mut recorder = FlightRecorder::new(16);
        recorder.record(TraceEvent::Dispatch {
            time_us: 1_000,
            device_id: 7,
            region: 0,
            high_priority: true,
            failed_over: false,
        });
        recorder.record(TraceEvent::Phase {
            time_us: 60_000_000,
            epoch: 0,
            phase: BarrierPhase::Drain,
        });
        let mut metrics = MetricsRegistry::new(60_000_000);
        let depth = metrics.series("queue_depth/0");
        metrics.push(depth, to_fp(2.5));
        metrics.push(depth, to_fp(3.0));
        let mut profile = EngineProfile::new();
        profile.record(
            BarrierPhase::ShardStep,
            &PhaseCounters {
                events_popped: 12,
                heap_ops: 24,
                records_merged: 0,
                batches_closed: 0,
            },
        );
        profile.bump_epochs();
        RunTelemetry {
            recorder,
            metrics,
            profile,
        }
    }

    #[test]
    fn json_export_carries_all_three_sections() {
        let telemetry = sample_telemetry();
        let json = telemetry.to_json();
        assert!(json.starts_with("{\"schema\":\"lens-telemetry-v1\""));
        assert!(json.contains("\"kind\":\"dispatch\""));
        assert!(json.contains("\"phase\":\"drain\""));
        assert!(json.contains("\"name\":\"queue_depth/0\""));
        assert!(json.contains("\"points_fp\":[2500000,3000000]"));
        assert!(json.contains("\"events_popped\":12"));
        assert!(json.contains(&format!("{:#018x}", telemetry.trace_digest())));
        assert!(json.contains(&format!("{:#018x}", telemetry.metrics_digest())));
        assert!(json.ends_with("}"));
    }

    #[test]
    fn chrome_trace_has_instants_and_counters() {
        let telemetry = sample_telemetry();
        let trace = telemetry.to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"i\""));
        assert!(trace.contains("\"ph\":\"C\""));
        // Counter samples land at epoch *ends*: 60 s and 120 s.
        assert!(trace.contains("\"ts\":60000000,\"pid\":0,\"args\":{\"value\":2.500000}"));
        assert!(trace.contains("\"ts\":120000000,\"pid\":0,\"args\":{\"value\":3.000000}"));
        assert!(trace.ends_with("]}"));
    }

    #[test]
    fn escaping_handles_hostile_names() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\ny");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn export_is_deterministic() {
        let a = sample_telemetry();
        let b = sample_telemetry();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_chrome_trace(), b.to_chrome_trace());
        assert_eq!(a.trace_digest(), b.trace_digest());
    }
}
