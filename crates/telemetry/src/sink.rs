//! The event sink abstraction the engine records through.
//!
//! The engine is generic over `S: Sink` and guards every recording code
//! path with `if S::ENABLED`. Because `ENABLED` is an associated
//! *constant*, the guard is resolved at monomorphization: the untraced
//! engine instantiated with [`NullSink`] contains no telemetry code at
//! all, which is what lets `fleet/run` hold its bench-gate baseline with
//! the observability layer wired in.

use crate::event::TraceEvent;

/// A consumer of flight-recorder events.
///
/// Implementations must be deterministic: `record` may only depend on
/// the events themselves (no clocks, no I/O, no ambient state), because
/// the engine feeds it inside the bit-identity contract.
pub trait Sink {
    /// Whether this sink records anything. `false` lets the engine's
    /// `if S::ENABLED` guards const-fold to nothing.
    const ENABLED: bool;

    /// Accepts one event. Called in shard-invariant merge order.
    fn record(&mut self, event: TraceEvent);
}

/// The do-nothing sink: `ENABLED = false`, `record` is an empty inline
/// function. Running the engine with this sink is the untraced path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl Sink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_inert() {
        const { assert!(!NullSink::ENABLED) };
        let mut sink = NullSink;
        sink.record(TraceEvent::Shed {
            time_us: 0,
            device_id: 0,
            region: 0,
        });
        assert_eq!(sink, NullSink);
    }
}
