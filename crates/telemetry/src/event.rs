//! Typed, sim-time-stamped trace events.
//!
//! Every field is an integer: timestamps are microseconds since run
//! start (the engine's native clock), indices are widened to `u64`, and
//! the one fractional quantity (the fluid batch size) is carried in
//! milli-units — the whole event stream hashes and merges bit-stably.

use crate::Fnv64;

/// The barrier phases of one engine epoch, in execution order. The
/// shard step is phase 0 (devices advance in parallel), then the barrier
/// runs the serving tier strictly **drain → scale → publish**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BarrierPhase {
    /// Shards advance their event heaps to the epoch boundary.
    ShardStep,
    /// The serving tier admits and serves the epoch's offloads (fluid
    /// batch-close arithmetic, or the per-request microsim replay).
    Drain,
    /// Autoscalers step live slot counts.
    Scale,
    /// Next epoch's region signals are published.
    Publish,
}

impl BarrierPhase {
    /// All phases, in execution order.
    pub const ALL: [BarrierPhase; 4] = [
        BarrierPhase::ShardStep,
        BarrierPhase::Drain,
        BarrierPhase::Scale,
        BarrierPhase::Publish,
    ];

    /// Stable snake_case name (used in exports).
    pub fn name(self) -> &'static str {
        match self {
            BarrierPhase::ShardStep => "shard_step",
            BarrierPhase::Drain => "drain",
            BarrierPhase::Scale => "scale",
            BarrierPhase::Publish => "publish",
        }
    }

    /// Index into [`BarrierPhase::ALL`].
    pub fn index(self) -> usize {
        match self {
            BarrierPhase::ShardStep => 0,
            BarrierPhase::Drain => 1,
            BarrierPhase::Scale => 2,
            BarrierPhase::Publish => 3,
        }
    }
}

/// One flight-recorder event. Timestamps are simulation microseconds —
/// never wall clock — and all identifiers are stable across shard
/// counts (global device ids, scenario-order region/backend indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A device offloaded an inference into `region`'s serving tier.
    Dispatch {
        /// Arrival time (µs since run start).
        time_us: u64,
        /// Global device id.
        device_id: u64,
        /// Destination region index (the failover target if `failed_over`).
        region: u64,
        /// Whether the device is in the high-priority class.
        high_priority: bool,
        /// Whether the request reached `region` via sibling failover.
        failed_over: bool,
    },
    /// Admission control shed a device's offload to its local option.
    Shed {
        /// Event time (µs).
        time_us: u64,
        /// Global device id.
        device_id: u64,
        /// The region whose shed fraction rejected the offload.
        region: u64,
    },
    /// A shed offload failed over to a sibling region (a matching
    /// [`TraceEvent::Dispatch`] with `failed_over` lands at the sibling).
    Failover {
        /// Event time (µs).
        time_us: u64,
        /// Global device id.
        device_id: u64,
        /// The shedding origin region.
        from_region: u64,
        /// The sibling region that absorbed the request.
        to_region: u64,
    },
    /// A backend closed one or more batches. The per-request microsim
    /// emits one event per discrete batch (`batches == 1`); the fluid
    /// tier emits one event per backend per epoch carrying the rounded
    /// batch count at the fluid batch size.
    BatchClose {
        /// Close time (µs): the discrete close instant, or the epoch end
        /// for fluid aggregates.
        time_us: u64,
        /// Serving region index.
        region: u64,
        /// Backend index within the region's tier.
        backend: u64,
        /// Batches closed.
        batches: u64,
        /// Batch size in milli-items (fluid sizes are fractional).
        size_milli: u64,
    },
    /// An autoscaler stepped a backend's live slot count.
    ScalingStep {
        /// The epoch barrier time (µs).
        time_us: u64,
        /// Serving region index.
        region: u64,
        /// Backend index within the region's tier.
        backend: u64,
        /// Slots before the step.
        from_slots: u64,
        /// Slots after the step (the applied target; under per-request
        /// scale-down this is the realized count — in-flight batches are
        /// never killed).
        to_slots: u64,
    },
    /// A barrier phase completed.
    Phase {
        /// The epoch boundary time (µs).
        time_us: u64,
        /// Epoch index.
        epoch: u64,
        /// Which phase just finished.
        phase: BarrierPhase,
    },
    /// A device retreated an offload-bound request to its local-only
    /// option because the region's published epoch p99 exceeded the tail
    /// deadline budget.
    Retreat {
        /// Event time (µs).
        time_us: u64,
        /// Global device id.
        device_id: u64,
        /// The region whose published tail triggered the retreat.
        region: u64,
    },
    /// A region's workload-curve phase changed: the offload-intent
    /// multiplier devices draw against moved to a new plateau.
    CurvePhase {
        /// The epoch boundary time (µs) at which the engine observed the
        /// change.
        time_us: u64,
        /// Region index (curves may shift per region).
        region: u64,
        /// The new multiplier in micro-units (`1_000_000` = full intent).
        multiplier_fp: u64,
    },
    /// A pipelined request finished one remote stage and moved to the
    /// next: the stage-`from_stage` completion spawned the stage-`to_stage`
    /// arrival after the priced activation transfer.
    StageTransition {
        /// Completion time of the finishing stage (µs).
        time_us: u64,
        /// Global device id of the originating request.
        device_id: u64,
        /// Serving region carrying the pipeline (all stages of one
        /// request serve in the same region).
        region: u64,
        /// The stage that just completed (1-based).
        from_stage: u64,
        /// The stage the request advances to.
        to_stage: u64,
        /// Fixed-point transfer cost between the stages (µs).
        transfer_us: u64,
    },
}

impl TraceEvent {
    /// The event's simulation timestamp (µs since run start).
    pub fn time_us(&self) -> u64 {
        match *self {
            TraceEvent::Dispatch { time_us, .. }
            | TraceEvent::Shed { time_us, .. }
            | TraceEvent::Failover { time_us, .. }
            | TraceEvent::BatchClose { time_us, .. }
            | TraceEvent::ScalingStep { time_us, .. }
            | TraceEvent::Phase { time_us, .. }
            | TraceEvent::Retreat { time_us, .. }
            | TraceEvent::CurvePhase { time_us, .. }
            | TraceEvent::StageTransition { time_us, .. } => time_us,
        }
    }

    /// The originating device, for device-side events.
    pub fn device_id(&self) -> Option<u64> {
        match *self {
            TraceEvent::Dispatch { device_id, .. }
            | TraceEvent::Shed { device_id, .. }
            | TraceEvent::Failover { device_id, .. }
            | TraceEvent::Retreat { device_id, .. }
            | TraceEvent::StageTransition { device_id, .. } => Some(device_id),
            _ => None,
        }
    }

    /// The shard-merge sort key: `(time_us, device_id)` — the same
    /// unique, shard-count-invariant discipline the per-request microsim
    /// merges offloads by. Barrier-side events (no device) sort last at
    /// their timestamp; the engine emits them from the single barrier
    /// thread in fixed region order, so they never need re-sorting.
    /// A device can emit two events at one instant (failover + dispatch);
    /// merge with a **stable** sort to preserve its emission order.
    pub fn merge_key(&self) -> (u64, u64) {
        (self.time_us(), self.device_id().unwrap_or(u64::MAX))
    }

    /// Stable kind tag (used in exports and the digest encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Dispatch { .. } => "dispatch",
            TraceEvent::Shed { .. } => "shed",
            TraceEvent::Failover { .. } => "failover",
            TraceEvent::BatchClose { .. } => "batch_close",
            TraceEvent::ScalingStep { .. } => "scaling_step",
            TraceEvent::Phase { .. } => "phase",
            TraceEvent::Retreat { .. } => "retreat",
            TraceEvent::CurvePhase { .. } => "curve_phase",
            TraceEvent::StageTransition { .. } => "stage_transition",
        }
    }

    /// Folds a canonical integer encoding of the event into `hasher`:
    /// a kind tag, then every field widened to `u64`.
    pub fn hash_into(&self, hasher: &mut Fnv64) {
        match *self {
            TraceEvent::Dispatch {
                time_us,
                device_id,
                region,
                high_priority,
                failed_over,
            } => {
                hasher.write_u64(1);
                hasher.write_u64(time_us);
                hasher.write_u64(device_id);
                hasher.write_u64(region);
                hasher.write_u64(u64::from(high_priority));
                hasher.write_u64(u64::from(failed_over));
            }
            TraceEvent::Shed {
                time_us,
                device_id,
                region,
            } => {
                hasher.write_u64(2);
                hasher.write_u64(time_us);
                hasher.write_u64(device_id);
                hasher.write_u64(region);
            }
            TraceEvent::Failover {
                time_us,
                device_id,
                from_region,
                to_region,
            } => {
                hasher.write_u64(3);
                hasher.write_u64(time_us);
                hasher.write_u64(device_id);
                hasher.write_u64(from_region);
                hasher.write_u64(to_region);
            }
            TraceEvent::BatchClose {
                time_us,
                region,
                backend,
                batches,
                size_milli,
            } => {
                hasher.write_u64(4);
                hasher.write_u64(time_us);
                hasher.write_u64(region);
                hasher.write_u64(backend);
                hasher.write_u64(batches);
                hasher.write_u64(size_milli);
            }
            TraceEvent::ScalingStep {
                time_us,
                region,
                backend,
                from_slots,
                to_slots,
            } => {
                hasher.write_u64(5);
                hasher.write_u64(time_us);
                hasher.write_u64(region);
                hasher.write_u64(backend);
                hasher.write_u64(from_slots);
                hasher.write_u64(to_slots);
            }
            TraceEvent::Phase {
                time_us,
                epoch,
                phase,
            } => {
                hasher.write_u64(6);
                hasher.write_u64(time_us);
                hasher.write_u64(epoch);
                hasher.write_u64(phase.index() as u64);
            }
            TraceEvent::Retreat {
                time_us,
                device_id,
                region,
            } => {
                hasher.write_u64(7);
                hasher.write_u64(time_us);
                hasher.write_u64(device_id);
                hasher.write_u64(region);
            }
            TraceEvent::CurvePhase {
                time_us,
                region,
                multiplier_fp,
            } => {
                hasher.write_u64(8);
                hasher.write_u64(time_us);
                hasher.write_u64(region);
                hasher.write_u64(multiplier_fp);
            }
            TraceEvent::StageTransition {
                time_us,
                device_id,
                region,
                from_stage,
                to_stage,
                transfer_us,
            } => {
                hasher.write_u64(9);
                hasher.write_u64(time_us);
                hasher.write_u64(device_id);
                hasher.write_u64(region);
                hasher.write_u64(from_stage);
                hasher.write_u64(to_stage);
                hasher.write_u64(transfer_us);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_ordered_and_named() {
        let names: Vec<&str> = BarrierPhase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["shard_step", "drain", "scale", "publish"]);
        for (i, phase) in BarrierPhase::ALL.into_iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
    }

    #[test]
    fn merge_keys_put_barrier_events_after_device_events() {
        let device = TraceEvent::Dispatch {
            time_us: 100,
            device_id: 7,
            region: 0,
            high_priority: false,
            failed_over: false,
        };
        let barrier = TraceEvent::Phase {
            time_us: 100,
            epoch: 0,
            phase: BarrierPhase::Drain,
        };
        assert!(device.merge_key() < barrier.merge_key());
        assert_eq!(device.time_us(), 100);
        assert_eq!(device.device_id(), Some(7));
        assert_eq!(barrier.device_id(), None);
    }

    #[test]
    fn distinct_events_hash_differently() {
        let a = TraceEvent::Shed {
            time_us: 1,
            device_id: 2,
            region: 0,
        };
        let b = TraceEvent::Shed {
            time_us: 1,
            device_id: 3,
            region: 0,
        };
        let digest = |e: &TraceEvent| {
            let mut h = Fnv64::new();
            e.hash_into(&mut h);
            h.finish()
        };
        assert_ne!(digest(&a), digest(&b));
        assert_eq!(digest(&a), digest(&a));
        assert_eq!(a.kind(), "shed");
    }
}
