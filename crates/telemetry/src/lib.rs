//! Deterministic observability for the fleet simulator.
//!
//! Everything in this crate is keyed to **simulation time, never wall
//! clock**, so the observability layer lives *inside* the bit-identity
//! contract instead of beside it: recording a run changes nothing about
//! the run, and the recorded artifacts are themselves bit-identical
//! across shard counts (`tests/fleet_sim.rs` pins both properties).
//! `lens-analyzer` audits this crate under its strictest scopes — the
//! wall-clock, thread-confinement, float-accumulation, and
//! truncating-cast rules all apply to every file here — which is why the
//! crate is integer/fixed-point end to end.
//!
//! Three pieces:
//!
//! * **Flight recorder** ([`FlightRecorder`]) — a bounded ring buffer of
//!   typed, sim-time-stamped [`TraceEvent`]s (dispatch, batch close,
//!   shed, failover, scaling step, barrier phase transitions), fed
//!   through the [`Sink`] trait. The no-op [`NullSink`] has
//!   `ENABLED = false`, so every `if S::ENABLED` block in the engine
//!   const-folds away at monomorphization: an untraced run pays nothing.
//!   Device-side events are merged at the epoch barrier under the same
//!   `(time_us, device_id)` key discipline as the per-request microsim,
//!   so the recorded trace is shard-count invariant.
//! * **Metrics registry** ([`MetricsRegistry`]) — named per-epoch
//!   timelines of fixed-point (micro-unit `i64`) samples taken at epoch
//!   barriers: queue depth, shed fraction, live slot counts, tail
//!   percentiles. Exportable as JSON and as Chrome `trace_event` counter
//!   tracks (see [`RunTelemetry`]).
//! * **Engine profiling hooks** ([`PhaseProbe`], [`EngineProfile`]) —
//!   deterministic *work counters* per barrier phase (events popped,
//!   heap operations, records merged, batches closed). No clock is ever
//!   read: the profile is a pure function of the scenario and seed, and
//!   it gives an engine rewrite its baseline workload breakdown.
//!
//! [`RunTelemetry`] bundles all three for one run and renders the JSON
//! and Chrome `trace_event` exports (the latter opens directly in
//! `about://tracing` / Perfetto). See `docs/ARCHITECTURE.md`
//! ("Observability") for the end-to-end walkthrough.

#![forbid(unsafe_code)]

pub mod event;
pub mod export;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod sink;

pub use event::{BarrierPhase, TraceEvent};
pub use export::RunTelemetry;
pub use metrics::{MetricsRegistry, SeriesId, METRIC_FP_SCALE};
pub use profile::{EngineProfile, PhaseCounters, PhaseProbe};
pub use recorder::FlightRecorder;
pub use sink::{NullSink, Sink};

/// Flight-recorder configuration carried by a `FleetScenario`.
///
/// Deliberately tiny: the only knob is the ring-buffer capacity. The
/// recorder keeps the **most recent** `event_capacity` events and counts
/// what it dropped, so a congested run degrades gracefully instead of
/// allocating without bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    event_capacity: usize,
}

impl Default for TelemetryConfig {
    /// 65 536 events — enough for every barrier event of an hour-long
    /// default run plus a generous device-event window.
    fn default() -> Self {
        TelemetryConfig {
            event_capacity: 65_536,
        }
    }
}

impl TelemetryConfig {
    /// The flight-recorder ring-buffer capacity (events).
    pub fn event_capacity(&self) -> usize {
        self.event_capacity
    }

    /// Overrides the ring-buffer capacity.
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity;
        self
    }

    /// Validates the configuration (scenario builders call this).
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the capacity is zero — a
    /// recorder that drops everything it is handed is a configuration
    /// mistake, not a useful run mode.
    pub fn validate(&self) -> Result<(), String> {
        if self.event_capacity == 0 {
            return Err("telemetry event capacity must be positive".to_string());
        }
        Ok(())
    }
}

/// FNV-1a, the digest primitive behind [`FlightRecorder::digest`] and
/// [`MetricsRegistry::digest`] — the same construction `FleetReport`
/// uses, so "bit-identical trace" is checkable as a single `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one byte slice into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds one `u64` (little-endian) into the state.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Folds one `i64` (two's complement, little-endian) into the state.
    pub fn write_i64(&mut self, value: i64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_validation() {
        let config = TelemetryConfig::default();
        assert_eq!(config.event_capacity(), 65_536);
        assert!(config.validate().is_ok());
        let tiny = config.with_event_capacity(8);
        assert_eq!(tiny.event_capacity(), 8);
        let zero = tiny.with_event_capacity(0);
        assert!(zero.validate().unwrap_err().contains("capacity"));
    }

    #[test]
    fn fnv_is_deterministic_and_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(1);
        b.write_u64(2);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.write_u64(2);
        c.write_u64(1);
        assert_ne!(a.finish(), c.finish());
        let mut d = Fnv64::new();
        d.write_i64(-1);
        assert_ne!(d.finish(), Fnv64::new().finish());
    }
}
