//! Fixed-point per-epoch metrics timelines.
//!
//! Every sample is an `i64` in micro-units ([`METRIC_FP_SCALE`] per
//! 1.0), the same fixed-point convention `FleetReport` uses for its
//! cross-shard sums. Storing integers — and converting from `f64`
//! exactly once, at the sampling site — keeps the timelines inside the
//! bit-identity contract: no accumulation ever happens in floating
//! point, so the metrics digest is shard-count invariant.

use crate::Fnv64;

/// Fixed-point scale: micro-units per 1.0.
pub const METRIC_FP_SCALE: i64 = 1_000_000;

/// Converts a sampled value to fixed point (round-to-nearest). This is
/// a *conversion*, not accumulation — each sample crosses the float
/// boundary exactly once.
pub fn to_fp(value: f64) -> i64 {
    (value * 1_000_000.0).round() as i64
}

/// Renders a fixed-point value as a decimal string using integer
/// arithmetic only (`1_250_000` → `"1.250000"`), so exports never
/// round-trip through float formatting.
pub fn format_fp(fp: i64) -> String {
    let sign = if fp < 0 { "-" } else { "" };
    let abs = fp.unsigned_abs();
    format!("{}{}.{:06}", sign, abs / 1_000_000, abs % 1_000_000)
}

/// Handle to one named timeline inside a [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

#[derive(Debug, Clone, PartialEq, Eq)]
struct Series {
    name: String,
    points: Vec<i64>,
}

/// Named per-epoch timelines of fixed-point samples.
///
/// Series are stored in registration order in a `Vec` — never a hash
/// map — so iteration order (and therefore the digest and both export
/// formats) is deterministic. The engine registers series in fixed
/// scenario order (region by region, backend by backend) and samples
/// each one once per epoch barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsRegistry {
    epoch_us: u64,
    series: Vec<Series>,
}

impl MetricsRegistry {
    /// Creates a registry whose samples are spaced `epoch_us` apart.
    pub fn new(epoch_us: u64) -> Self {
        MetricsRegistry {
            epoch_us,
            series: Vec::new(),
        }
    }

    /// The sampling interval (simulation µs per epoch).
    pub fn epoch_us(&self) -> u64 {
        self.epoch_us
    }

    /// Returns the id for `name`, creating the series on first use.
    /// Lookup is a linear scan — registries hold tens of series, and a
    /// hash map would trade that for nondeterministic iteration.
    pub fn series(&mut self, name: &str) -> SeriesId {
        if let Some(idx) = self.series.iter().position(|s| s.name == name) {
            return SeriesId(idx);
        }
        self.series.push(Series {
            name: name.to_string(),
            points: Vec::new(),
        });
        SeriesId(self.series.len() - 1)
    }

    /// Appends one fixed-point sample to a series.
    pub fn push(&mut self, id: SeriesId, fp: i64) {
        self.series[id.0].points.push(fp);
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no series have been registered.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The series name behind `id`.
    pub fn name(&self, id: SeriesId) -> &str {
        &self.series[id.0].name
    }

    /// The samples recorded for `id`, epoch order.
    pub fn points(&self, id: SeriesId) -> &[i64] {
        &self.series[id.0].points
    }

    /// All timelines, registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[i64])> {
        self.series
            .iter()
            .map(|s| (s.name.as_str(), s.points.as_slice()))
    }

    /// FNV-1a digest over the interval, every series name, and every
    /// sample — the "metrics timeline is bit-identical" check in
    /// `tests/fleet_sim.rs` compares this value across shard counts.
    pub fn digest(&self) -> u64 {
        let mut hasher = Fnv64::new();
        hasher.write_u64(self.epoch_us);
        hasher.write_u64(self.series.len() as u64);
        for series in &self.series {
            hasher.write_bytes(series.name.as_bytes());
            hasher.write_u64(series.points.len() as u64);
            for &point in &series.points {
                hasher.write_i64(point);
            }
        }
        hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_point_conversion_and_formatting() {
        assert_eq!(to_fp(1.25), 1_250_000);
        assert_eq!(to_fp(-0.5), -500_000);
        assert_eq!(to_fp(0.0), 0);
        assert_eq!(format_fp(1_250_000), "1.250000");
        assert_eq!(format_fp(-500_000), "-0.500000");
        assert_eq!(format_fp(42), "0.000042");
        assert_eq!(format_fp(i64::MIN), "-9223372036854.775808");
    }

    #[test]
    fn series_are_get_or_create_and_ordered() {
        let mut reg = MetricsRegistry::new(60_000_000);
        assert!(reg.is_empty());
        let depth = reg.series("queue_depth/0");
        let shed = reg.series("shed_fraction/0");
        assert_eq!(reg.series("queue_depth/0"), depth);
        assert_eq!(reg.len(), 2);
        reg.push(depth, to_fp(3.0));
        reg.push(shed, to_fp(0.125));
        reg.push(depth, to_fp(4.0));
        assert_eq!(reg.points(depth), [3_000_000, 4_000_000]);
        assert_eq!(reg.name(shed), "shed_fraction/0");
        let names: Vec<&str> = reg.iter().map(|(name, _)| name).collect();
        assert_eq!(names, ["queue_depth/0", "shed_fraction/0"]);
        assert_eq!(reg.epoch_us(), 60_000_000);
    }

    #[test]
    fn digest_is_sensitive_to_names_and_points() {
        let build = |point: i64| {
            let mut reg = MetricsRegistry::new(1_000);
            let id = reg.series("a");
            reg.push(id, point);
            reg
        };
        assert_eq!(build(5).digest(), build(5).digest());
        assert_ne!(build(5).digest(), build(6).digest());
        let mut renamed = MetricsRegistry::new(1_000);
        let id = renamed.series("b");
        renamed.push(id, 5);
        assert_ne!(build(5).digest(), renamed.digest());
    }
}
