//! The determinism rules and their module-path-aware scopes.
//!
//! Each rule knows *where* it applies (a predicate over the repo-relative
//! file location) and *what* it matches (a line-level token pattern, or a
//! whole-file property). The scopes mirror the bit-identity contract in
//! `docs/ARCHITECTURE.md`: everything that feeds the `FleetReport` digest
//! or the shard-merge barrier must be order-, clock-, and entropy-free.

use crate::scanner::is_word;
use std::collections::BTreeSet;

/// Where a scanned file sits in the workspace, derived from its
/// repo-relative path (`crates/<crate>/src/<modules…>/<file>.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileLoc {
    /// The crate directory name (`fleet`, `core`, `bench`, …).
    pub crate_dir: String,
    /// Repo-relative path with forward slashes.
    pub rel_path: String,
    /// File name (`report.rs`, `lib.rs`, …).
    pub file_name: String,
    /// True for a crate root (`src/lib.rs` or `src/main.rs`).
    pub crate_root: bool,
}

impl FileLoc {
    /// Derives the location from a repo-relative path.
    pub fn from_rel_path(rel_path: &str) -> FileLoc {
        let parts: Vec<&str> = rel_path.split('/').collect();
        let crate_dir = if parts.len() >= 2 && parts[0] == "crates" {
            parts[1].to_string()
        } else {
            String::new()
        };
        let file_name = parts.last().copied().unwrap_or("").to_string();
        let crate_root = parts.len() == 4
            && parts[2] == "src"
            && (file_name == "lib.rs" || file_name == "main.rs");
        FileLoc {
            crate_dir,
            rel_path: rel_path.to_string(),
            file_name,
            crate_root,
        }
    }

    /// A rustdoc-style module path for diagnostics
    /// (`lens-fleet::report`, `lens-bench::bin::bench_gate`).
    pub fn module_path(&self) -> String {
        let pkg = if self.crate_dir == "lens" {
            "lens".to_string()
        } else {
            format!("lens-{}", self.crate_dir)
        };
        let parts: Vec<&str> = self.rel_path.split('/').collect();
        if parts.len() <= 4 && self.crate_root {
            return pkg;
        }
        let mods: Vec<&str> = parts
            .iter()
            .skip(3) // crates/<crate>/src/
            .map(|p| p.strip_suffix(".rs").unwrap_or(p))
            .collect();
        if mods.is_empty() {
            pkg
        } else {
            format!("{pkg}::{}", mods.join("::"))
        }
    }
}

/// The seven determinism rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `HashMap`/`HashSet` in deterministic code: iteration order varies
    /// run-to-run (`RandomState`), so order can leak into outputs,
    /// digests, or merge sequences. Use `BTreeMap`/`BTreeSet` or a sorted
    /// `Vec`.
    UnorderedCollections,
    /// Wall-clock reads (`Instant`, `SystemTime`) outside `crates/bench`:
    /// simulated time must come from the event heap, never the host.
    WallClock,
    /// Raw `f64` accumulation (`+=` on an `f64`, `sum::<f64>()`) in
    /// report/digest paths: float addition is not associative, so merge
    /// order perturbs low bits. Route through `to_fp`/`i128` instead.
    FloatAccumulation,
    /// Truncating `as` casts to narrow integers in report paths: a
    /// counter that silently wraps produces a digest that depends on
    /// population scale. Also fires on a fixed-point accumulator
    /// (`*_fp` identifier) cast straight to `f64`: above 2^53
    /// micro-units that conversion silently drops low bits even though
    /// the integer sum stays exact — route through the saturating
    /// report helper instead.
    TruncatingCast,
    /// Every non-bench crate root must carry `#![forbid(unsafe_code)]`:
    /// unsafe code could smuggle in any of the hazards above.
    ForbidUnsafe,
    /// Thread spawning outside the engine's shard-step and
    /// barrier-replay modules: the barrier's merge discipline only
    /// covers threads the engine itself forked.
    ThreadConfinement,
    /// Ambient-entropy RNG construction (`thread_rng`, `from_entropy`,
    /// `OsRng`, `getrandom`): every stream must derive from the scenario
    /// seed.
    AmbientEntropy,
}

impl RuleId {
    /// All rules, in reporting order.
    pub const ALL: [RuleId; 7] = [
        RuleId::UnorderedCollections,
        RuleId::WallClock,
        RuleId::FloatAccumulation,
        RuleId::TruncatingCast,
        RuleId::ForbidUnsafe,
        RuleId::ThreadConfinement,
        RuleId::AmbientEntropy,
    ];

    /// The stable kebab-case identifier used in annotations and JSON.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::UnorderedCollections => "unordered-collections",
            RuleId::WallClock => "wall-clock",
            RuleId::FloatAccumulation => "float-accumulation",
            RuleId::TruncatingCast => "truncating-cast",
            RuleId::ForbidUnsafe => "forbid-unsafe",
            RuleId::ThreadConfinement => "thread-confinement",
            RuleId::AmbientEntropy => "ambient-entropy",
        }
    }

    /// Parses the kebab-case identifier.
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.id() == s)
    }

    /// One-line description for diagnostics.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::UnorderedCollections => {
                "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet or a sorted Vec"
            }
            RuleId::WallClock => {
                "wall-clock read outside crates/bench; simulated time must come from the event heap"
            }
            RuleId::FloatAccumulation => {
                "raw f64 accumulation in a report/digest path; route through the to_fp/i128 fixed-point sums"
            }
            RuleId::TruncatingCast => {
                "truncating integer cast in a report path; counters must not wrap with population scale, and fixed-point sums must not be cast straight to f64"
            }
            RuleId::ForbidUnsafe => "crate root is missing #![forbid(unsafe_code)]",
            RuleId::ThreadConfinement => {
                "thread spawning outside the engine's shard-step/replay modules escapes the barrier's merge discipline"
            }
            RuleId::AmbientEntropy => {
                "ambient-entropy RNG construction; every stream must be derived from the scenario seed"
            }
        }
    }

    /// Does this rule apply to `loc`? Scopes are deliberately coarse
    /// path predicates — a rule that needs an exception takes an explicit
    /// `allow` annotation with a reason, not a scope carve-out.
    pub fn applies(self, loc: &FileLoc) -> bool {
        let bench = loc.crate_dir == "bench";
        match self {
            // Order nondeterminism can leak indirectly (through any value
            // that later feeds a report), so the scope is every non-bench
            // crate, not just the digest-adjacent files.
            RuleId::UnorderedCollections | RuleId::WallClock => !bench,
            // The telemetry crate is digest-bearing end to end (trace and
            // metrics digests feed the bit-identity pins), so the
            // report-path numeric rules cover all of it. Scenario code is
            // in scope too: workload-curve multipliers gate every offload
            // draw, so a float accumulated there perturbs the digest.
            // Pipeline transfer pricing is digest-bearing too: an
            // inter-stage hop priced with a float would shift integer
            // arrival stamps, so the quantize-once integer paths in
            // wireless/transfer.rs and fleet/pipeline.rs stay in scope.
            RuleId::FloatAccumulation => {
                loc.file_name == "report.rs"
                    || loc.rel_path == "crates/fleet/src/engine.rs"
                    || loc.rel_path == "crates/fleet/src/scenario.rs"
                    || loc.rel_path == "crates/fleet/src/pipeline.rs"
                    || loc.rel_path == "crates/wireless/src/transfer.rs"
                    || loc.crate_dir == "telemetry"
            }
            RuleId::TruncatingCast => loc.file_name == "report.rs" || loc.crate_dir == "telemetry",
            RuleId::ForbidUnsafe => !bench && loc.crate_root,
            // The shard step (engine.rs) and the barrier replay pool
            // (replay.rs) are the two sanctioned concurrency sites; both
            // sit behind the barrier's fixed merge order.
            RuleId::ThreadConfinement => {
                loc.rel_path != "crates/fleet/src/engine.rs"
                    && loc.rel_path != "crates/fleet/src/replay.rs"
            }
            RuleId::AmbientEntropy => true,
        }
    }
}

/// A raw rule hit, before allowlist resolution: `(rule, 1-based line)`.
pub type Hit = (RuleId, usize);

/// Runs every applicable rule over the stripped code of one file.
/// At most one hit per (rule, line).
pub fn match_rules(loc: &FileLoc, code: &[String]) -> Vec<Hit> {
    let mut hits = Vec::new();
    let f64_names = collect_f64_names(code);
    for rule in RuleId::ALL {
        if !rule.applies(loc) {
            continue;
        }
        match rule {
            RuleId::ForbidUnsafe => {
                let present = code.iter().any(|l| {
                    let squeezed: String = l.chars().filter(|c| !c.is_whitespace()).collect();
                    squeezed.starts_with("#![forbid(unsafe_code")
                });
                if !present {
                    hits.push((rule, 1));
                }
            }
            _ => {
                for (idx, line) in code.iter().enumerate() {
                    if line_matches(rule, line, &f64_names) {
                        hits.push((rule, idx + 1));
                    }
                }
            }
        }
    }
    hits
}

fn line_matches(rule: RuleId, line: &str, f64_names: &BTreeSet<String>) -> bool {
    match rule {
        RuleId::UnorderedCollections => has_token(line, "HashMap") || has_token(line, "HashSet"),
        RuleId::WallClock => has_token(line, "Instant") || has_token(line, "SystemTime"),
        RuleId::FloatAccumulation => float_accumulation(line, f64_names),
        RuleId::TruncatingCast => truncating_cast(line),
        RuleId::ForbidUnsafe => false, // whole-file check
        RuleId::ThreadConfinement => {
            has_token(line, "std::thread")
                || has_token(line, "thread::spawn")
                || has_token(line, "thread::scope")
                || has_token(line, "thread::Builder")
        }
        RuleId::AmbientEntropy => {
            has_token(line, "thread_rng")
                || has_token(line, "from_entropy")
                || has_token(line, "OsRng")
                || has_token(line, "getrandom")
        }
    }
}

/// Word-boundary substring search (boundary = not [A-Za-z0-9_]). The
/// pattern itself may contain `::`.
pub(crate) fn has_token(line: &str, pattern: &str) -> bool {
    let bytes = line.as_bytes();
    let pat = pattern.as_bytes();
    let mut from = 0usize;
    while let Some(at) = line[from..].find(pattern) {
        let start = from + at;
        let end = start + pat.len();
        let left_ok = start == 0 || !is_word(bytes[start - 1] as char);
        let right_ok = end >= bytes.len() || !is_word(bytes[end] as char);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

/// Collects identifiers declared as `f64` anywhere in the file: explicit
/// `name: f64` annotations (lets, fields, params) and `let [mut] name =
/// <float literal>` inferences. Deliberately file-local and flow-free —
/// a line scanner's symbol table, not a type checker.
fn collect_f64_names(code: &[String]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in code {
        // `name: f64` (followed by a non-word char or end).
        let mut from = 0usize;
        while let Some(at) = line[from..].find(": f64") {
            let start = from + at;
            let after = start + ": f64".len();
            let boundary = line
                .as_bytes()
                .get(after)
                .is_none_or(|&b| !is_word(b as char));
            if boundary {
                if let Some(name) = ident_ending_at(line, start) {
                    names.insert(name);
                }
            }
            from = start + 1;
        }
        // `let [mut] name = <float literal>`.
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            let name: String = rest.chars().take_while(|&c| is_word(c)).collect();
            let tail = rest[name.len()..].trim_start();
            if !name.is_empty() {
                if let Some(expr) = tail.strip_prefix('=') {
                    if starts_with_float_literal(expr.trim_start()) {
                        names.insert(name);
                    }
                }
            }
        }
    }
    names
}

/// The identifier whose last char sits just before byte offset `at`.
fn ident_ending_at(line: &str, at: usize) -> Option<String> {
    let head = &line[..at];
    let name: String = head
        .chars()
        .rev()
        .take_while(|&c| is_word(c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(name)
    }
}

/// `1.0`, `0.25`, `1e6`, `2.5e-3`, `0f64` — but not `0u64` or `10`.
fn starts_with_float_literal(expr: &str) -> bool {
    let mut chars = expr.chars().peekable();
    let mut digits = false;
    while chars.peek().is_some_and(char::is_ascii_digit) {
        digits = true;
        chars.next();
    }
    if !digits {
        return false;
    }
    match chars.peek() {
        Some('.') => {
            chars.next();
            // `0..n` is a range, `0.max(…)` a method call — not floats.
            chars
                .peek()
                .is_none_or(|c| *c != '.' && (!is_word(*c) || c.is_ascii_digit()))
        }
        Some('e') | Some('E') => {
            chars.next();
            if matches!(chars.peek(), Some('+') | Some('-')) {
                chars.next();
            }
            chars.peek().is_some_and(char::is_ascii_digit)
        }
        Some('f') => {
            let tail: String = chars.collect();
            tail.starts_with("f64") || tail.starts_with("f32")
        }
        _ => false,
    }
}

/// `sum::<f64>()`, `.sum()` beside a `: f64` annotation, or `+=` whose
/// left-hand side resolves to a known `f64` name (or whose right-hand
/// side is a bare float literal).
fn float_accumulation(line: &str, f64_names: &BTreeSet<String>) -> bool {
    if line.contains("sum::<f64>") {
        return true;
    }
    if line.contains(".sum()") && line.contains(": f64") {
        return true;
    }
    if let Some(at) = line.find("+=") {
        // LHS: strip a trailing index expression, take the last path
        // segment.
        let mut lhs = line[..at].trim_end();
        while lhs.ends_with(']') {
            let mut depth = 0usize;
            let mut cut = None;
            for (i, c) in lhs.char_indices().rev() {
                match c {
                    ']' => depth += 1,
                    '[' => {
                        depth -= 1;
                        if depth == 0 {
                            cut = Some(i);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            match cut {
                Some(i) => lhs = lhs[..i].trim_end(),
                None => break,
            }
        }
        let segment: String = lhs
            .chars()
            .rev()
            .take_while(|&c| is_word(c))
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        if !segment.is_empty() && f64_names.contains(&segment) {
            return true;
        }
        // RHS float literal (`x += 0.5`).
        let rhs = line[at + 2..].trim_start();
        if starts_with_float_literal(rhs) {
            return true;
        }
    }
    false
}

/// A cast to a narrower integer type (`as u32` & friends), or a
/// fixed-point accumulator (an `*_fp`-suffixed identifier) cast straight
/// to `f64` — exact in `i128`, silently lossy past 2^53 micro-units.
fn truncating_cast(line: &str) -> bool {
    const NARROW: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
    let mut from = 0usize;
    while let Some(at) = line[from..].find(" as ") {
        let start = from + at;
        let ty: String = line[start + 4..]
            .trim_start()
            .chars()
            .take_while(|&c| is_word(c))
            .collect();
        if NARROW.contains(&ty.as_str()) {
            return true;
        }
        if ty == "f64" && ident_ending_at(line, start).is_some_and(|name| name.ends_with("_fp")) {
            return true;
        }
        from = start + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(p: &str) -> FileLoc {
        FileLoc::from_rel_path(p)
    }

    #[test]
    fn module_paths_are_derived_from_rel_paths() {
        assert_eq!(
            loc("crates/fleet/src/report.rs").module_path(),
            "lens-fleet::report"
        );
        assert_eq!(loc("crates/fleet/src/lib.rs").module_path(), "lens-fleet");
        assert_eq!(loc("crates/lens/src/lib.rs").module_path(), "lens");
        assert_eq!(
            loc("crates/bench/src/bin/bench_gate.rs").module_path(),
            "lens-bench::bin::bench_gate"
        );
    }

    #[test]
    fn scopes_respect_the_bench_exemption_and_engine_carve_out() {
        assert!(RuleId::WallClock.applies(&loc("crates/fleet/src/engine.rs")));
        assert!(!RuleId::WallClock.applies(&loc("crates/bench/src/bin/bench_gate.rs")));
        assert!(!RuleId::ThreadConfinement.applies(&loc("crates/fleet/src/engine.rs")));
        // The barrier replay pool is the second sanctioned concurrency
        // site — scoped threads joined in fixed region order.
        assert!(!RuleId::ThreadConfinement.applies(&loc("crates/fleet/src/replay.rs")));
        assert!(RuleId::ThreadConfinement.applies(&loc("crates/fleet/src/cloud.rs")));
        assert!(RuleId::ThreadConfinement.applies(&loc("crates/telemetry/src/replay.rs")));
        assert!(RuleId::AmbientEntropy.applies(&loc("crates/bench/src/lib.rs")));
        assert!(RuleId::ForbidUnsafe.applies(&loc("crates/num/src/lib.rs")));
        assert!(!RuleId::ForbidUnsafe.applies(&loc("crates/num/src/stats.rs")));
        assert!(RuleId::FloatAccumulation.applies(&loc("crates/core/src/report.rs")));
        assert!(!RuleId::FloatAccumulation.applies(&loc("crates/core/src/search.rs")));
        // Workload curves live in scenario.rs and gate offload draws, so
        // float accumulation is scoped there too — but only for fleet.
        assert!(RuleId::FloatAccumulation.applies(&loc("crates/fleet/src/scenario.rs")));
        assert!(!RuleId::FloatAccumulation.applies(&loc("crates/core/src/scenario.rs")));
        // Staged-pipeline transfer pricing shifts integer arrival stamps,
        // so its two homes are in scope — but not the rest of wireless.
        assert!(RuleId::FloatAccumulation.applies(&loc("crates/fleet/src/pipeline.rs")));
        assert!(RuleId::FloatAccumulation.applies(&loc("crates/wireless/src/transfer.rs")));
        assert!(!RuleId::FloatAccumulation.applies(&loc("crates/wireless/src/link.rs")));
        // The digest-bearing telemetry crate is inside the numeric rules'
        // scope file-by-file, not just in its report module.
        assert!(RuleId::FloatAccumulation.applies(&loc("crates/telemetry/src/metrics.rs")));
        assert!(RuleId::TruncatingCast.applies(&loc("crates/telemetry/src/export.rs")));
        assert!(!RuleId::TruncatingCast.applies(&loc("crates/core/src/search.rs")));
        assert!(RuleId::WallClock.applies(&loc("crates/telemetry/src/recorder.rs")));
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token("use std::collections::HashMap;", "HashMap"));
        assert!(!has_token("let pool_random = 3;", "random"));
        assert!(!has_token("struct MyHashMapLike;", "HashMap"));
        assert!(has_token("std::thread::scope(|s| {})", "std::thread"));
        assert!(!has_token("let xstd::thread = 1;", "std::thread"));
    }

    #[test]
    fn f64_symbol_table_and_accumulation() {
        let code: Vec<String> = [
            "let mut acc = 0.0;",
            "let mut seen = 0u64;",
            "pub busy_ms: f64,",
            "acc += w / total;",
            "seen += count;",
            "counts[idx] += 1;",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let names = collect_f64_names(&code);
        assert!(names.contains("acc"));
        assert!(names.contains("busy_ms"));
        assert!(!names.contains("seen"));
        assert!(float_accumulation(&code[3], &names));
        assert!(!float_accumulation(&code[4], &names));
        assert!(!float_accumulation(&code[5], &names));
        assert!(float_accumulation("x += 0.5;", &names));
        assert!(float_accumulation("let t: f64 = xs.iter().sum();", &names));
        assert!(float_accumulation(
            "let s = xs.iter().sum::<f64>();",
            &names
        ));
    }

    #[test]
    fn truncating_casts() {
        assert!(truncating_cast("let x = count as u32;"));
        assert!(truncating_cast("(dest as i16)"));
        assert!(!truncating_cast("let x = count as u64;"));
        assert!(!truncating_cast("let x = n as i128;"));
        assert!(!truncating_cast("let x = n as f64;"));
        assert!(!truncating_cast("fn widen(x: u32) -> u64 { x.into() }"));
        // Fixed-point sums cast straight to f64 lose low bits past 2^53
        // micro-units; the saturating report helper is the sanctioned
        // conversion.
        assert!(truncating_cast("self.sum_fp as f64 / SUM_FP_SCALE"));
        assert!(truncating_cast("(b.cost_fp as f64) / 1e6"));
        assert!(!truncating_cast("let w = weight as f64;"));
        assert!(!truncating_cast("fp_sum_to_f64(self.sum_fp)"));
    }

    #[test]
    fn forbid_unsafe_is_a_whole_file_check() {
        let with: Vec<String> = ["//! docs", "#![forbid(unsafe_code)]", "pub fn f() {}"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let without: Vec<String> = ["pub fn f() {}".to_string()].to_vec();
        let root = loc("crates/num/src/lib.rs");
        assert!(match_rules(&root, &with).is_empty());
        assert_eq!(
            match_rules(&root, &without),
            vec![(RuleId::ForbidUnsafe, 1)]
        );
    }
}
