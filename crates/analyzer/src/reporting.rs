//! Findings, scan reports, and the human/JSON renderers.

use crate::rules::RuleId;
use std::collections::BTreeMap;

/// One rule hit, after allowlist resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rustdoc-style module path (`lens-fleet::report`).
    pub module_path: String,
    /// The offending source line, trimmed (or a synthesized message for
    /// whole-file rules).
    pub snippet: String,
    /// `Some(reason)` when an `allow` annotation suppresses the finding.
    pub allowed: Option<String>,
}

/// A malformed allowlist annotation, located in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotationIssue {
    /// Repo-relative path.
    pub path: String,
    /// 1-based line number of the annotation.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

/// The result of scanning a tree (or a single source text).
#[derive(Debug, Default)]
pub struct Report {
    /// Every rule hit, allowed or not, in (path, line) order.
    pub findings: Vec<Finding>,
    /// Malformed annotations (these fail the scan).
    pub annotation_issues: Vec<AnnotationIssue>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not suppressed by an allow annotation.
    pub fn unallowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed.is_none())
    }

    /// `(unallowed, allowed)` counts per rule, every rule present.
    pub fn rule_counts(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut counts: BTreeMap<&'static str, (usize, usize)> =
            RuleId::ALL.iter().map(|r| (r.id(), (0, 0))).collect();
        for f in &self.findings {
            let entry = counts.entry(f.rule.id()).or_default();
            if f.allowed.is_none() {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
        }
        counts
    }

    /// True when there is nothing to fail on: no unallowed findings and
    /// no malformed annotations.
    pub fn is_clean(&self) -> bool {
        self.unallowed().next().is_none() && self.annotation_issues.is_empty()
    }

    /// Process exit code the binary reports: 0 clean, 1 violations.
    pub fn exit_code(&self) -> i32 {
        i32::from(!self.is_clean())
    }

    /// Human-readable diagnostics.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            match &f.allowed {
                None => {
                    out.push_str(&format!(
                        "{}:{}: [{}] {}\n    {}\n    in {}\n",
                        f.path,
                        f.line,
                        f.rule.id(),
                        f.rule.summary(),
                        f.snippet,
                        f.module_path,
                    ));
                }
                Some(reason) => {
                    out.push_str(&format!(
                        "{}:{}: [{}] allowed: {}\n",
                        f.path,
                        f.line,
                        f.rule.id(),
                        reason,
                    ));
                }
            }
        }
        for issue in &self.annotation_issues {
            out.push_str(&format!(
                "{}:{}: [annotation] {}\n",
                issue.path, issue.line, issue.message
            ));
        }
        let unallowed = self.unallowed().count();
        let allowed = self.findings.len() - unallowed;
        out.push_str(&format!(
            "lens-analyzer: {} file(s) scanned, {} violation(s), {} allowed, {} annotation issue(s)\n",
            self.files_scanned,
            unallowed,
            allowed,
            self.annotation_issues.len()
        ));
        out
    }

    /// Machine-readable JSON summary (stable key order; no dependencies,
    /// hence the by-hand serializer).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        let unallowed = self.unallowed().count();
        out.push_str(&format!("  \"total_unallowed\": {unallowed},\n"));
        out.push_str(&format!(
            "  \"total_allowed\": {},\n",
            self.findings.len() - unallowed
        ));
        out.push_str(&format!(
            "  \"annotation_issues\": {},\n",
            self.annotation_issues.len()
        ));
        out.push_str("  \"rules\": {\n");
        let counts = self.rule_counts();
        let mut first = true;
        for (rule, (bad, ok)) in &counts {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {}: {{\"unallowed\": {bad}, \"allowed\": {ok}}}",
                json_str(rule)
            ));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"findings\": [\n");
        let mut first = true;
        for f in &self.findings {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"module\": {}, \"snippet\": {}, \"allowed\": {}}}",
                json_str(f.rule.id()),
                json_str(&f.path),
                f.line,
                json_str(&f.module_path),
                json_str(&f.snippet),
                match &f.allowed {
                    Some(reason) => json_str(reason),
                    None => "null".to_string(),
                }
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: RuleId, allowed: Option<&str>) -> Finding {
        Finding {
            rule,
            path: "crates/x/src/y.rs".to_string(),
            line: 3,
            module_path: "lens-x::y".to_string(),
            snippet: "let m = HashMap::new();".to_string(),
            allowed: allowed.map(str::to_string),
        }
    }

    #[test]
    fn exit_code_and_counts() {
        let mut r = Report {
            findings: vec![finding(RuleId::UnorderedCollections, None)],
            annotation_issues: vec![],
            files_scanned: 1,
        };
        assert_eq!(r.exit_code(), 1);
        assert_eq!(
            r.rule_counts()["unordered-collections"],
            (1, 0),
            "one unallowed"
        );
        r.findings[0].allowed = Some("sorted on drain".to_string());
        assert_eq!(r.exit_code(), 0);
        assert_eq!(r.rule_counts()["unordered-collections"], (0, 1));
        // every rule key is present even at zero
        assert_eq!(r.rule_counts().len(), RuleId::ALL.len());
    }

    #[test]
    fn annotation_issues_fail_the_scan() {
        let r = Report {
            findings: vec![],
            annotation_issues: vec![AnnotationIssue {
                path: "crates/x/src/y.rs".to_string(),
                line: 2,
                message: "unknown rule".to_string(),
            }],
            files_scanned: 1,
        };
        assert_eq!(r.exit_code(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn json_has_stable_shape() {
        let r = Report {
            findings: vec![finding(RuleId::WallClock, Some("bench \"only\""))],
            annotation_issues: vec![],
            files_scanned: 2,
        };
        let json = r.to_json();
        assert!(json.contains("\"total_unallowed\": 0"));
        assert!(json.contains("\"wall-clock\": {\"unallowed\": 0, \"allowed\": 1}"));
        assert!(json.contains("\"allowed\": \"bench \\\"only\\\"\""));
        assert!(json.contains("\"files_scanned\": 2"));
    }
}
