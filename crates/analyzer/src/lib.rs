//! `lens-analyzer` — the workspace-native determinism auditor.
//!
//! The repo's core guarantee is that the same seed produces a
//! **bit-identical** `FleetReport`, invariant across 1/2/4 shards. The
//! runtime pins in `tests/fleet_sim.rs` check that *dynamically*; this
//! crate guards it *statically*, rejecting the hazards that racy
//! refactors sneak in — unordered iteration, wall-clock reads, raw float
//! accumulation, truncating counter casts, missing `forbid(unsafe_code)`,
//! stray thread spawns, and ambient-entropy RNGs — before they ever reach
//! a determinism test.
//!
//! The engine is a lightweight, module-path-aware line/token scanner
//! (comments and literal contents are lexically stripped first), with no
//! dependencies at all, consistent with the workspace's offline-shims
//! constraint. It is not a type checker: the rules trade a small amount
//! of recall for zero false positives on idiomatic code, and every rule
//! can be locally waived with a justified annotation:
//!
//! ```text
//! // lens-analyzer: allow(unordered-collections): drained via sorted keys
//! ```
//!
//! Run it over the workspace with `cargo run -p lens-analyzer`
//! (`-- --format json` for the machine-readable summary; exits nonzero
//! on any unallowed violation). The rules, their scopes, and what each
//! one protects are documented in `docs/ARCHITECTURE.md` under
//! "Determinism rules"; `tests/static_analysis.rs` regression-tests the
//! analyzer itself against the seeded fixtures in
//! `crates/analyzer/fixtures/`.

#![forbid(unsafe_code)]

mod analyze;
mod reporting;
mod rules;
mod scanner;

pub use analyze::{scan_root, scan_str, workspace_root};
pub use reporting::{AnnotationIssue, Finding, Report};
pub use rules::{FileLoc, RuleId};
pub use scanner::{Allow, AnnotationError, Stripped};
