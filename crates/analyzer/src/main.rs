//! CLI for the determinism auditor.
//!
//! ```text
//! cargo run -p lens-analyzer                       # human diagnostics
//! cargo run -p lens-analyzer -- --format json      # machine-readable
//! cargo run -p lens-analyzer -- --root <dir>       # scan another tree
//! ```
//!
//! Exit codes: 0 = clean (allowed findings are fine), 1 = at least one
//! unallowed violation or malformed annotation, 2 = usage or I/O error.

#![forbid(unsafe_code)]

use lens_analyzer::{scan_root, workspace_root};
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    return usage(&format!(
                        "--format must be `human` or `json`, got {other:?}"
                    ))
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: lens-analyzer [--root <dir>] [--format human|json]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    let report = match scan_root(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("lens-analyzer: cannot scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Human => print!("{}", report.render_human()),
        Format::Json => print!("{}", report.to_json()),
    }
    ExitCode::from(u8::try_from(report.exit_code()).unwrap_or(1))
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("lens-analyzer: {msg}");
    eprintln!("usage: lens-analyzer [--root <dir>] [--format human|json]");
    ExitCode::from(2)
}
