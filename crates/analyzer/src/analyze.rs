//! Orchestration: walk `crates/*/src/**/*.rs` under a root, run the
//! rules over each file, and resolve allowlist annotations into a
//! [`Report`].

use crate::reporting::{AnnotationIssue, Finding, Report};
use crate::rules::{match_rules, FileLoc, RuleId};
use crate::scanner::strip;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Scans a single source text as if it lived at `rel_path` under the
/// workspace root. Pure — this is what the fixture and round-trip tests
/// drive.
pub fn scan_str(rel_path: &str, source: &str) -> Report {
    let mut report = Report {
        files_scanned: 1,
        ..Report::default()
    };
    scan_into(rel_path, source, &mut report);
    report
}

fn scan_into(rel_path: &str, source: &str, report: &mut Report) {
    let loc = FileLoc::from_rel_path(rel_path);
    let stripped = strip(source);
    let source_lines: Vec<&str> = source.lines().collect();
    for err in &stripped.errors {
        report.annotation_issues.push(AnnotationIssue {
            path: rel_path.to_string(),
            line: err.line,
            message: err.message.clone(),
        });
    }
    for (rule, line) in match_rules(&loc, &stripped.code) {
        let allowed = stripped
            .allows
            .iter()
            .find(|a| a.rule == rule && a.target_line == line)
            .map(|a| a.reason.clone());
        let snippet = if rule == RuleId::ForbidUnsafe {
            "missing #![forbid(unsafe_code)] at the crate root".to_string()
        } else {
            source_lines
                .get(line - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default()
        };
        report.findings.push(Finding {
            rule,
            path: rel_path.to_string(),
            line,
            module_path: loc.module_path(),
            snippet,
            allowed,
        });
    }
}

/// Scans every `crates/*/src/**/*.rs` file under `root` (the workspace
/// root, or a fixture tree mirroring its layout). Files are visited in
/// sorted order, so reports are deterministic.
pub fn scan_root(root: &Path) -> io::Result<Report> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    crate_dirs.sort();
    let mut report = Report::default();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let rel = file
                .strip_prefix(root)
                .expect("file is under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            let source = fs::read_to_string(&file)?;
            scan_into(&rel, &source, &mut report);
            report.files_scanned += 1;
        }
    }
    // Deterministic finding order regardless of filesystem quirks.
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root this analyzer was built in (two levels up from the
/// crate manifest) — the default scan root for `cargo run -p
/// lens-analyzer`.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyzer has a grandparent")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_str_finds_and_allows() {
        let src = "pub fn f() {\n    let m = std::collections::HashMap::<u64, u64>::new();\n    drop(m);\n}\n";
        let report = scan_str("crates/fleet/src/merge.rs", src);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, RuleId::UnorderedCollections);
        assert_eq!(report.findings[0].line, 2);
        assert_eq!(report.findings[0].module_path, "lens-fleet::merge");
        assert_eq!(report.exit_code(), 1);

        let annotated = src.replace(
            "    let m",
            "    // lens-analyzer: allow(unordered-collections): scratch map, drained via sorted keys\n    let m",
        );
        let report = scan_str("crates/fleet/src/merge.rs", &annotated);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(
            report.findings[0].allowed.as_deref(),
            Some("scratch map, drained via sorted keys")
        );
        assert_eq!(report.exit_code(), 0);
    }

    #[test]
    fn bench_crate_is_exempt_from_wall_clock() {
        let src = "pub fn t() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
        // bench is exempt from both wall-clock and forbid-unsafe:
        assert!(scan_str("crates/bench/src/lib.rs", src).is_clean());
        // while the same text in a non-bench crate fires twice (two
        // Instant lines):
        let report = scan_str("crates/runtime/src/clock.rs", src);
        assert_eq!(report.findings.len(), 2);
        assert!(report.findings.iter().all(|f| f.rule == RuleId::WallClock));
    }

    #[test]
    fn workspace_root_points_at_the_repo() {
        assert!(workspace_root()
            .join("crates/analyzer/Cargo.toml")
            .is_file());
    }
}
