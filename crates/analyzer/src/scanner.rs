//! Lexical pass: strips comments and literal contents from Rust source
//! while preserving line structure, and extracts `lens-analyzer:`
//! allowlist annotations from `//` comments.
//!
//! The rules in [`crate::rules`] match on the *stripped* text, so a
//! `HashMap` mentioned in a doc comment or inside a string literal (the
//! analyzer's own pattern tables, for instance) never fires. Blanked
//! characters are replaced with spaces, so line numbers — and, roughly,
//! columns — survive into diagnostics.

use crate::rules::RuleId;

/// One `// lens-analyzer: allow(<rule>): <reason>` annotation, resolved
/// to the code line it suppresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being allowed.
    pub rule: RuleId,
    /// The justification after the second colon (always non-empty; an
    /// annotation without a reason is rejected as an annotation error).
    pub reason: String,
    /// 1-based line of the annotation comment itself.
    pub comment_line: usize,
    /// 1-based line of the code the annotation applies to: the same line
    /// for a trailing comment, otherwise the next line carrying code.
    pub target_line: usize,
}

/// A malformed `lens-analyzer:` annotation. These fail the scan: a typo'd
/// allowlist entry that silently suppressed nothing would be worse than a
/// loud error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotationError {
    /// 1-based line of the bad annotation.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

/// The result of the lexical pass over one file.
#[derive(Debug)]
pub struct Stripped {
    /// Source lines with comments and string/char literal contents
    /// blanked out (one entry per input line).
    pub code: Vec<String>,
    /// Parsed allowlist annotations, resolved to their target lines.
    pub allows: Vec<Allow>,
    /// Malformed annotations.
    pub errors: Vec<AnnotationError>,
}

/// Strips `source` and parses its allowlist annotations.
pub fn strip(source: &str) -> Stripped {
    let chars: Vec<char> = source.chars().collect();
    let mut code = String::with_capacity(source.len());
    // (line, comment body) for every `//` comment, in order.
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Emits `c` into the stripped stream, blanking non-newline chars.
    macro_rules! blank {
        ($c:expr) => {
            if $c == '\n' {
                code.push('\n');
                line += 1;
            } else {
                code.push(' ');
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment (incl. doc comments): capture body for
                // annotation parsing, blank it from the code stream.
                let start_line = line;
                let mut body = String::new();
                while i < chars.len() && chars[i] != '\n' {
                    body.push(chars[i]);
                    code.push(' ');
                    i += 1;
                }
                comments.push((start_line, body));
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment, with nesting.
                let mut depth = 0usize;
                while i < chars.len() {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        blank!(chars[i]);
                        i += 1;
                        blank!(chars[i]);
                        i += 1;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        blank!(chars[i]);
                        i += 1;
                        blank!(chars[i]);
                        i += 1;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        blank!(chars[i]);
                        i += 1;
                    }
                }
            }
            '"' => {
                // Ordinary string literal: blank the contents, keep the
                // delimiters so token boundaries survive.
                code.push('"');
                i += 1;
                while i < chars.len() {
                    if chars[i] == '\\' {
                        blank!(chars[i]);
                        i += 1;
                        if i < chars.len() {
                            blank!(chars[i]);
                            i += 1;
                        }
                    } else if chars[i] == '"' {
                        code.push('"');
                        i += 1;
                        break;
                    } else {
                        blank!(chars[i]);
                        i += 1;
                    }
                }
            }
            'r' | 'b' if is_raw_string_start(&chars, i) => {
                // Raw (byte) string: r"..", r#".."#, br#".."#, …
                let mut j = i;
                while chars.get(j) == Some(&'r') || chars.get(j) == Some(&'b') {
                    code.push(chars[j]);
                    j += 1;
                }
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    code.push('#');
                    hashes += 1;
                    j += 1;
                }
                code.push('"'); // the opening quote
                j += 1;
                // Scan to `"` followed by `hashes` of `#`.
                while j < chars.len() {
                    if chars[j] == '"' && (0..hashes).all(|k| chars.get(j + 1 + k) == Some(&'#')) {
                        code.push('"');
                        j += 1;
                        for _ in 0..hashes {
                            code.push('#');
                            j += 1;
                        }
                        break;
                    }
                    blank!(chars[j]);
                    j += 1;
                }
                i = j;
                continue;
            }
            '\'' => {
                // Char literal vs lifetime: a backslash or a closing quote
                // two chars ahead means a literal; otherwise keep the tick
                // (lifetime or loop label) and move on.
                if chars.get(i + 1) == Some(&'\\') {
                    code.push('\'');
                    i += 1;
                    while i < chars.len() && chars[i] != '\'' {
                        blank!(chars[i]);
                        i += 1;
                    }
                    if i < chars.len() {
                        code.push('\'');
                        i += 1;
                    }
                } else if chars.get(i + 2) == Some(&'\'') {
                    code.push('\'');
                    blank!(chars[i + 1]);
                    code.push('\'');
                    i += 3;
                } else {
                    code.push('\'');
                    i += 1;
                }
                continue;
            }
            '\n' => {
                code.push('\n');
                line += 1;
                i += 1;
                continue;
            }
            _ => {
                code.push(c);
                i += 1;
                continue;
            }
        }
        // Fall-through for the comment/string arms that used `i` directly.
    }

    let code_lines: Vec<String> = code.lines().map(str::to_string).collect();
    let (allows, errors) = parse_annotations(&comments, &code_lines);
    Stripped {
        code: code_lines,
        allows,
        errors,
    }
}

/// Does `chars[i..]` open a raw/byte string (`r"`, `r#`, `br"`, `b"`, …)?
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Must not be the tail of an identifier (`for`, `expr` …).
    if i > 0 && is_word(chars[i - 1]) {
        return false;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
    } else if j == i + 1 {
        // plain b"…" byte string
        return chars.get(j) == Some(&'"');
    } else {
        return false;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

pub(crate) fn is_word(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

const MARKER: &str = "lens-analyzer:";

/// Parses `lens-analyzer: allow(<rule>): <reason>` out of the collected
/// `//` comments and resolves each to its target code line.
fn parse_annotations(
    comments: &[(usize, String)],
    code_lines: &[String],
) -> (Vec<Allow>, Vec<AnnotationError>) {
    let mut allows = Vec::new();
    let mut errors = Vec::new();
    for (line, body) in comments {
        let text = body.trim_start_matches('/').trim();
        // The marker must *lead* the comment — prose that merely mentions
        // the annotation syntax (like this sentence) is not a directive.
        let Some(rest) = text.strip_prefix(MARKER) else {
            continue;
        };
        let directive = rest.trim();
        if directive.starts_with("fixture") {
            // Reserved for fixture metadata; not an allowlist entry.
            continue;
        }
        let Some(rest) = directive.strip_prefix("allow(") else {
            errors.push(AnnotationError {
                line: *line,
                message: format!(
                    "unrecognized directive {directive:?} (expected `allow(<rule>): <reason>`)"
                ),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            errors.push(AnnotationError {
                line: *line,
                message: "unclosed `allow(` annotation".to_string(),
            });
            continue;
        };
        let rule_name = rest[..close].trim();
        let Some(rule) = RuleId::parse(rule_name) else {
            errors.push(AnnotationError {
                line: *line,
                message: format!("unknown rule {rule_name:?} in allow annotation"),
            });
            continue;
        };
        let reason = rest[close + 1..]
            .trim_start()
            .strip_prefix(':')
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            errors.push(AnnotationError {
                line: *line,
                message: format!(
                    "allow({}) annotation without a reason — write `allow({}): <why this is deterministic>`",
                    rule.id(),
                    rule.id()
                ),
            });
            continue;
        }
        allows.push(Allow {
            rule,
            reason: reason.to_string(),
            comment_line: *line,
            target_line: resolve_target(*line, code_lines),
        });
    }
    (allows, errors)
}

/// A trailing annotation targets its own line; an annotation on an
/// otherwise-blank line targets the next line that carries code (runs of
/// annotation/comment-only lines chain through to the same target).
fn resolve_target(comment_line: usize, code_lines: &[String]) -> usize {
    let own = code_lines
        .get(comment_line - 1)
        .is_some_and(|l| !l.trim().is_empty());
    if own {
        return comment_line;
    }
    let mut l = comment_line; // 1-based; start at the next line
    while let Some(text) = code_lines.get(l) {
        if !text.trim().is_empty() {
            return l + 1;
        }
        l += 1;
    }
    comment_line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"HashMap\"; // HashMap in a comment\nlet y = 1;\n";
        let s = strip(src);
        assert_eq!(s.code.len(), 2);
        assert!(!s.code[0].contains("HashMap"), "{:?}", s.code[0]);
        assert!(s.code[0].contains("let x = "));
        assert_eq!(s.code[1], "let y = 1;");
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char {\n    let _r = r#\"Instant\"#;\n    let c = 'I';\n    c\n}\n";
        let s = strip(src);
        assert!(s.code[1].contains("let _r = r#\""));
        assert!(!s.code[1].contains("Instant"));
        assert!(s.code[0].contains("fn f<'a>"));
        assert!(!s.code[2].contains('I'), "{:?}", s.code[2]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* Instant */ still comment */ let z = 3;\n";
        let s = strip(src);
        assert!(!s.code[0].contains("Instant"));
        assert!(s.code[0].contains("let z = 3;"));
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let src = "let m = foo(); // lens-analyzer: allow(wall-clock): test fixture\n";
        let s = strip(src);
        assert_eq!(s.allows.len(), 1);
        assert_eq!(s.allows[0].rule, RuleId::WallClock);
        assert_eq!(s.allows[0].target_line, 1);
        assert_eq!(s.allows[0].reason, "test fixture");
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let src = "\n// lens-analyzer: allow(unordered-collections): drained in sorted order\n\nlet m = make();\n";
        let s = strip(src);
        assert_eq!(s.allows.len(), 1);
        assert_eq!(s.allows[0].target_line, 4);
    }

    #[test]
    fn missing_reason_is_an_error() {
        let src = "// lens-analyzer: allow(wall-clock)\nlet t = now();\n";
        let s = strip(src);
        assert!(s.allows.is_empty());
        assert_eq!(s.errors.len(), 1);
        assert!(s.errors[0].message.contains("without a reason"));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let src = "// lens-analyzer: allow(no-such-rule): because\nlet t = 1;\n";
        let s = strip(src);
        assert!(s.allows.is_empty());
        assert_eq!(s.errors.len(), 1);
        assert!(s.errors[0].message.contains("unknown rule"));
    }
}
