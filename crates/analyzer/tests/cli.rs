//! End-to-end tests of the `lens-analyzer` binary — the exact artifact
//! the CI `static-analysis` job runs.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyzer has a grandparent")
        .to_path_buf()
}

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lens-analyzer"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn workspace_scan_is_clean_in_json_mode() {
    let root = repo_root();
    let out = run(&["--root", root.to_str().unwrap(), "--format", "json"]);
    let stdout = String::from_utf8(out.stdout).expect("utf8 json");
    assert!(
        out.status.success(),
        "clean workspace must exit 0; stdout:\n{stdout}"
    );
    assert!(stdout.contains("\"total_unallowed\": 0"), "{stdout}");
    assert!(stdout.contains("\"annotation_issues\": 0"), "{stdout}");
}

#[test]
fn default_root_resolves_the_workspace() {
    // No --root: the binary locates the workspace from its own manifest.
    let out = run(&[]);
    assert!(out.status.success(), "default-root scan must be clean");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("file(s) scanned"), "{stdout}");
}

#[test]
fn every_fixture_fails_the_binary_with_exit_1() {
    for rule in lens_analyzer::RuleId::ALL {
        let fixture = repo_root().join("crates/analyzer/fixtures").join(rule.id());
        let out = run(&["--root", fixture.to_str().unwrap()]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "fixture {} must fail the audit",
            rule.id()
        );
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert!(
            stdout.contains(rule.id()),
            "verdict names the rule: {stdout}"
        );
    }
}

#[test]
fn usage_errors_exit_2() {
    let out = run(&["--format", "yaml"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown format is a usage error"
    );
    let out = run(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2), "unknown flag is a usage error");
    let out = run(&["--root", "/nonexistent/path/for/lens-analyzer"]);
    assert_eq!(out.status.code(), Some(2), "unreadable root is an IO error");
}
