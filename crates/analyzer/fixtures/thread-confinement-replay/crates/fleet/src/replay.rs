//! Fixture: the barrier replay module is a sanctioned concurrency site.
//! Scoped threads here are joined in fixed region order by the engine,
//! so `thread-confinement` must stay silent on this path — while the
//! sibling `cloud.rs` in this tree still fires.

pub fn replay_regions(values: &mut [u64]) {
    std::thread::scope(|scope| {
        for value in values.iter_mut() {
            scope.spawn(move || *value += 1);
        }
    });
}
