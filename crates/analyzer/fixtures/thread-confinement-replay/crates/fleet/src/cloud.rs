//! Fixture sibling: the replay carve-out must not leak to the rest of
//! the fleet crate — a stray thread here still races the barrier's
//! deterministic merge order, so `thread-confinement` fires once.

pub fn fan_out() -> u64 {
    let handle = std::thread::spawn(|| 7u64);
    handle.join().unwrap_or(0)
}
