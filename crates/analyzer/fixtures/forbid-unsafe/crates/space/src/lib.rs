//! Fixture: `forbid-unsafe` must fire exactly once — this crate root is
//! deliberately missing `#![forbid(unsafe_code)]`, the attribute every
//! non-bench crate must carry.

pub fn answer() -> u64 {
    42
}
