//! Fixture: `wall-clock` must fire exactly once. Simulated time comes
//! from the event heap; a host-clock read makes runs irreproducible.

pub fn elapsed_nanos() -> u128 {
    let started = std::time::Instant::now();
    started.elapsed().as_nanos()
}
