//! Fixture: `float-accumulation` must fire exactly once. A raw `f64`
//! running sum in a report path makes the digest depend on merge order;
//! real code routes through the `to_fp`/`i128` fixed-point machinery.

pub fn mean_latency(samples: &[f64]) -> f64 {
    let mut total = 0.0;
    for sample in samples {
        total += sample;
    }
    total / samples.len() as f64
}
