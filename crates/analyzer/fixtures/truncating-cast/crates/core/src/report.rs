//! Fixture: `truncating-cast` must fire exactly once. A report counter
//! narrowed with `as` silently wraps at population scale, so the digest
//! would depend on fleet size instead of behavior.

pub fn narrow_counter(inferences: u64) -> u32 {
    inferences as u32
}
