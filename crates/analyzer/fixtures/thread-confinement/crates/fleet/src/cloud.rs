//! Fixture: `thread-confinement` must fire exactly once. Only the
//! engine's shard module may fork workers — a stray thread here would
//! race the barrier's deterministic merge order.

pub fn fan_out() -> u64 {
    let handle = std::thread::spawn(|| 7u64);
    handle.join().unwrap_or(0)
}
