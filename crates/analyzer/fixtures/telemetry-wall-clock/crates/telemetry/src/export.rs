//! Fixture: `wall-clock` must keep firing inside `crates/telemetry`
//! sources. The observability layer is sim-time-only by contract — a
//! host-clock timestamp smuggled into an export would break the
//! bit-identity of the trace across runs and shard counts.

pub fn export_stamp_micros() -> u64 {
    let stamp = std::time::SystemTime::now();
    match stamp.duration_since(std::time::UNIX_EPOCH) {
        Ok(elapsed) => elapsed.as_secs() * 1_000_000 + u64::from(elapsed.subsec_micros()),
        Err(_) => 0,
    }
}
