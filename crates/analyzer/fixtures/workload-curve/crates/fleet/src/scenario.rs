//! Seeded fixture: a workload curve evaluated by accumulating raw `f64`
//! multipliers. Curve multipliers gate every offload draw, so this shape
//! would perturb the report digest with merge order — the
//! float-accumulation rule must catch it now that
//! `crates/fleet/src/scenario.rs` sits inside its scope.

pub struct WorkloadCurve {
    phases: Vec<(u64, f64)>,
}

impl WorkloadCurve {
    pub fn mean_multiplier(&self) -> f64 {
        let mut total: f64 = 0.0;
        for &(_, multiplier) in &self.phases {
            total += multiplier;
        }
        total / self.phases.len() as f64
    }
}
