//! Seeded fixture: a staged-transfer pricer that totals its hop costs by
//! accumulating raw `f64` milliseconds. Transfer prices shift integer
//! arrival stamps in the per-request replay, so
//! `crates/wireless/src/transfer.rs` sits inside the float-accumulation
//! scope and the rule must catch this exactly once. The real module
//! quantizes the link rate once and folds hop costs in integer
//! microseconds; floats are derived from the integers at the end.

pub struct HopPricer {
    hop_ms: Vec<f64>,
}

impl HopPricer {
    pub fn new(hop_ms: Vec<f64>) -> Self {
        Self { hop_ms }
    }

    pub fn total_ms(&self) -> f64 {
        let mut total: f64 = 0.0;
        for &hop in &self.hop_ms {
            total += hop;
        }
        total
    }
}
