//! Fixture: `unordered-collections` must fire exactly once (line 5).
//! A merge buffer with randomized iteration order would let shard-merge
//! sequence leak into the report digest.

pub fn tally(pairs: &[(u64, u64)]) -> usize {
    let mut counts = std::collections::HashMap::new();
    for (key, value) in pairs {
        counts.insert(*key, *value);
    }
    counts.len()
}
