//! Fixture: `ambient-entropy` must fire exactly once. Every RNG stream
//! must be derived from the scenario seed; an OS-entropy generator makes
//! two identically-seeded runs diverge.

pub fn sample() -> u32 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
