//! The deterministic CIFAR-10 test-error surrogate.
//!
//! Shape of the model (all constants calibrated to land in the ranges
//! visible in the paper's Fig 6/7, i.e. ~12–65 % error after 10 epochs):
//!
//! * **Capacity**: error decays exponentially in `log10` of the
//!   convolutional parameter count (feature extraction drives CIFAR-10
//!   accuracy); FC parameters contribute with a small weight.
//! * **Depth**: each conv layer beyond the minimum five buys a small
//!   improvement, saturating — deep stacks train slightly better features.
//! * **Kernel size**: kernels above 3×3 on 32×32 inputs waste parameters;
//!   mild penalty per unit of mean kernel size.
//! * **Under-training**: with only 10 epochs, architectures with enormous
//!   FC heads (≥ several million parameters) are not converged; smooth
//!   penalty in `log10(total params)`.
//! * **Training noise**: a seeded, per-architecture Gaussian perturbation —
//!   two different architectures get independent noise, the same
//!   architecture always gets the same value.

use crate::{AccuracyError, AccuracyEstimator};
use lens_nn::{LayerKind, Network, NetworkAnalysis};
use lens_num::dist;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic surrogate for "CIFAR-10 test error (%) after 10 epochs".
///
/// See the [crate docs](crate) and DESIGN.md substitution #2 for why this
/// stands in for real training.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateAccuracy {
    noise_std: f64,
    seed_salt: u64,
}

impl SurrogateAccuracy {
    /// The calibrated CIFAR-10 surrogate with default training noise.
    pub fn cifar10() -> Self {
        SurrogateAccuracy {
            noise_std: 1.2,
            seed_salt: 0x1e25,
        }
    }

    /// Overrides the training-noise standard deviation (percentage points).
    ///
    /// # Panics
    ///
    /// Panics if `noise_std` is negative.
    pub fn with_noise(mut self, noise_std: f64) -> Self {
        assert!(noise_std >= 0.0, "noise_std must be non-negative");
        self.noise_std = noise_std;
        self
    }

    /// Overrides the seed salt, giving an independent "training run".
    pub fn with_seed_salt(mut self, salt: u64) -> Self {
        self.seed_salt = salt;
        self
    }

    /// The noise-free part of the surrogate (exposed for tests/ablations).
    pub fn deterministic_error(&self, analysis: &NetworkAnalysis) -> f64 {
        let stats = ArchStats::of(analysis);

        // Capacity: conv parameters dominate; FC contributes weakly.
        let effective_params = stats.conv_params as f64 + 0.15 * stats.fc_params as f64;
        let c = effective_params.max(1.0).log10();
        let capacity_err = 52.0 * (-(0.9 * (c - 4.0).max(0.0))).exp();

        // Depth: up to ~4.5 points for very deep conv stacks.
        let depth_bonus = 1.1 * (stats.conv_layers as f64 - 5.0).clamp(0.0, 4.0);

        // Kernel penalty: mean kernel above 3 wastes capacity on 32x32.
        let kernel_penalty = 0.6 * (stats.mean_kernel - 3.0).max(0.0);

        // Under-training of giant models in 10 epochs: smooth logistic in
        // log10(total params), ~+7 points for ~100M-parameter FC heads.
        let total = (stats.conv_params + stats.fc_params) as f64;
        let t = total.max(1.0).log10();
        let under_train = 7.0 / (1.0 + (-(t - 7.0) / 0.35).exp());

        (10.0 + capacity_err - depth_bonus + kernel_penalty + under_train).clamp(5.0, 90.0)
    }
}

impl AccuracyEstimator for SurrogateAccuracy {
    fn test_error(&self, network: &Network) -> Result<f64, AccuracyError> {
        let analysis = network.analyze()?;
        let base = self.deterministic_error(&analysis);
        // Architecture-keyed noise: hash the structure, not the name.
        let mut seed = self.seed_salt;
        for l in analysis.layers() {
            seed = seed
                .wrapping_mul(0x100000001B3)
                .wrapping_add(l.macs ^ (l.params << 1) ^ l.output_bytes.get());
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let noise = dist::normal(&mut rng, 0.0, self.noise_std);
        Ok((base + noise).clamp(5.0, 90.0))
    }
}

/// Aggregate statistics the surrogate consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ArchStats {
    conv_params: u64,
    fc_params: u64,
    conv_layers: usize,
    mean_kernel: f64,
}

impl ArchStats {
    fn of(analysis: &NetworkAnalysis) -> ArchStats {
        let mut conv_params = 0;
        let mut fc_params = 0;
        let mut conv_layers = 0;
        let mut kernel_sum = 0.0;
        for l in analysis.layers() {
            match &l.kind {
                LayerKind::Conv2d { kernel, .. } => {
                    conv_params += l.params;
                    conv_layers += 1;
                    kernel_sum += *kernel as f64;
                }
                LayerKind::Dense { .. } => fc_params += l.params,
                _ => {}
            }
        }
        ArchStats {
            conv_params,
            fc_params,
            conv_layers,
            mean_kernel: if conv_layers > 0 {
                kernel_sum / conv_layers as f64
            } else {
                3.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lens_nn::TensorShape;
    use lens_space::{Architecture, BlockChoice, FcStack, SearchSpace, VggSpace};
    use proptest::prelude::*;
    use rand::Rng;

    fn arch(filters: u16, layers: u8, kernel: u8, fc: u32) -> Network {
        let blocks = (0..5)
            .map(|_| BlockChoice {
                num_layers: layers,
                kernel,
                filters,
                pool: true,
            })
            .collect();
        Architecture::new(blocks, FcStack::One { width: fc })
            .to_network("t", TensorShape::new(3, 32, 32), 10)
            .unwrap()
    }

    #[test]
    fn bigger_conv_capacity_reduces_error() {
        let s = SurrogateAccuracy::cifar10();
        let small = s.deterministic_error(&arch(24, 1, 3, 256).analyze().unwrap());
        let large = s.deterministic_error(&arch(128, 2, 3, 256).analyze().unwrap());
        assert!(
            large < small - 3.0,
            "large {large} should beat small {small} clearly"
        );
    }

    #[test]
    fn depth_helps_at_fixed_kernel() {
        let s = SurrogateAccuracy::cifar10();
        let shallow = s.deterministic_error(&arch(64, 1, 3, 512).analyze().unwrap());
        let deep = s.deterministic_error(&arch(64, 3, 3, 512).analyze().unwrap());
        assert!(deep < shallow, "deep {deep} vs shallow {shallow}");
    }

    #[test]
    fn huge_kernels_penalized() {
        let s = SurrogateAccuracy::cifar10();
        let k3 = s.deterministic_error(&arch(64, 2, 3, 512).analyze().unwrap());
        let k7 = s.deterministic_error(&arch(64, 2, 7, 512).analyze().unwrap());
        // k7 has many more parameters (capacity gain) but pays the kernel
        // penalty; the net effect must not be a dramatic win.
        assert!(k7 > k3 - 6.0, "k7 {k7} vs k3 {k3}");
    }

    #[test]
    fn giant_fc_heads_under_train() {
        let s = SurrogateAccuracy::cifar10();
        // At 224x224 the flattened conv output is large: an 8192-wide FC
        // head crosses 100M params and triggers the under-training term.
        let blocks: Vec<BlockChoice> = (0..5)
            .map(|_| BlockChoice {
                num_layers: 2,
                kernel: 3,
                filters: 128,
                pool: true,
            })
            .collect();
        let big_fc = Architecture::new(
            blocks.clone(),
            FcStack::Two {
                first: 8192,
                second: 8192,
            },
        )
        .to_network("big", TensorShape::new(3, 224, 224), 10)
        .unwrap();
        let small_fc = Architecture::new(blocks, FcStack::One { width: 256 })
            .to_network("small", TensorShape::new(3, 224, 224), 10)
            .unwrap();
        let e_big = s.deterministic_error(&big_fc.analyze().unwrap());
        let e_small = s.deterministic_error(&small_fc.analyze().unwrap());
        assert!(e_big > e_small, "big-FC {e_big} vs small-FC {e_small}");
    }

    #[test]
    fn noise_is_deterministic_per_architecture() {
        let s = SurrogateAccuracy::cifar10();
        let net = arch(64, 2, 3, 1024);
        let a = s.test_error(&net).unwrap();
        let b = s.test_error(&net).unwrap();
        assert_eq!(a, b);
        // A different seed salt gives a different "training run".
        let other = SurrogateAccuracy::cifar10().with_seed_salt(99);
        assert_ne!(a, other.test_error(&net).unwrap());
    }

    #[test]
    fn zero_noise_equals_deterministic() {
        let s = SurrogateAccuracy::cifar10().with_noise(0.0);
        let net = arch(96, 2, 3, 2048);
        let a = s.test_error(&net).unwrap();
        let d = s.deterministic_error(&net.analyze().unwrap());
        assert!((a - d).abs() < 1e-12);
    }

    proptest! {
        /// Every architecture in the space gets an error in the calibrated
        /// range, deterministically.
        #[test]
        fn prop_error_in_range(seed in 0u64..300) {
            let space = VggSpace::for_cifar10();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let enc = space.sample(&mut rng);
            let net = space.decode(&enc).unwrap();
            let s = SurrogateAccuracy::cifar10();
            let e = s.test_error(&net).unwrap();
            prop_assert!((5.0..=90.0).contains(&e), "error {e}");
            prop_assert_eq!(e, s.test_error(&net).unwrap());
            let _ = rng.gen::<u32>();
        }
    }
}
