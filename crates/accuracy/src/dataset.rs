//! Procedurally generated classification datasets.
//!
//! A CIFAR-sized stand-in for real image data: each class is a random
//! prototype direction in feature space, samples are noisy copies pushed
//! through a fixed random nonlinearity so the classes are not linearly
//! separable. Deterministic per seed.

use lens_num::dist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled train/test dataset of dense feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticDataset {
    dim: usize,
    num_classes: usize,
    train: Vec<(Vec<f64>, usize)>,
    test: Vec<(Vec<f64>, usize)>,
}

impl SyntheticDataset {
    /// Generates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `dim`, `num_classes`, `train_per_class`, or
    /// `test_per_class` is zero.
    pub fn generate(
        seed: u64,
        dim: usize,
        num_classes: usize,
        train_per_class: usize,
        test_per_class: usize,
    ) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(num_classes > 1, "need at least two classes");
        assert!(
            train_per_class > 0 && test_per_class > 0,
            "need samples per class"
        );
        let mut rng = StdRng::seed_from_u64(seed);

        // Class prototypes and a fixed random mixing matrix (nonlinearity).
        let prototypes: Vec<Vec<f64>> = (0..num_classes)
            .map(|_| (0..dim).map(|_| dist::normal(&mut rng, 0.0, 1.0)).collect())
            .collect();
        let mixing: Vec<Vec<f64>> = (0..dim)
            .map(|_| {
                (0..dim)
                    .map(|_| dist::normal(&mut rng, 0.0, (1.0 / dim as f64).sqrt()))
                    .collect()
            })
            .collect();

        let make_split = |per_class: usize, rng: &mut StdRng| {
            let mut samples = Vec::with_capacity(per_class * num_classes);
            for (label, proto) in prototypes.iter().enumerate() {
                for _ in 0..per_class {
                    let raw: Vec<f64> = proto
                        .iter()
                        .map(|&p| p + dist::normal(rng, 0.0, 0.9))
                        .collect();
                    // Nonlinear warp: tanh of a random linear mix, plus a
                    // skip connection to keep class information.
                    let warped: Vec<f64> = mixing
                        .iter()
                        .zip(&raw)
                        .map(|(row, &r)| {
                            let mixed: f64 = row.iter().zip(&raw).map(|(m, x)| m * x).sum();
                            mixed.tanh() + 0.5 * r
                        })
                        .collect();
                    samples.push((warped, label));
                }
            }
            // Shuffle deterministically.
            for i in (1..samples.len()).rev() {
                let j = rng.gen_range(0..=i);
                samples.swap(i, j);
            }
            samples
        };

        let train = make_split(train_per_class, &mut rng);
        let test = make_split(test_per_class, &mut rng);
        SyntheticDataset {
            dim,
            num_classes,
            train,
            test,
        }
    }

    /// A small default: 10 classes (CIFAR-10-like), 64-dim features.
    pub fn cifar_like(seed: u64) -> Self {
        SyntheticDataset::generate(seed, 64, 10, 80, 20)
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Training samples `(features, label)`.
    pub fn train(&self) -> &[(Vec<f64>, usize)] {
        &self.train
    }

    /// Test samples `(features, label)`.
    pub fn test(&self) -> &[(Vec<f64>, usize)] {
        &self.test
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticDataset::cifar_like(5);
        let b = SyntheticDataset::cifar_like(5);
        assert_eq!(a, b);
        assert_ne!(a, SyntheticDataset::cifar_like(6));
    }

    #[test]
    fn shapes_and_labels() {
        let d = SyntheticDataset::generate(1, 16, 4, 10, 5);
        assert_eq!(d.train().len(), 40);
        assert_eq!(d.test().len(), 20);
        assert_eq!(d.dim(), 16);
        for (x, y) in d.train().iter().chain(d.test()) {
            assert_eq!(x.len(), 16);
            assert!(*y < 4);
        }
    }

    #[test]
    fn classes_are_distinguishable_by_nearest_prototype() {
        // A trivial nearest-class-mean classifier on the train split should
        // beat chance on the test split — the classes carry real signal.
        let d = SyntheticDataset::cifar_like(7);
        let k = d.num_classes();
        let mut means = vec![vec![0.0; d.dim()]; k];
        let mut counts = vec![0usize; k];
        for (x, y) in d.train() {
            counts[*y] += 1;
            for (m, v) in means[*y].iter_mut().zip(x) {
                *m += v;
            }
        }
        for (m, c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= *c as f64;
            }
        }
        let mut correct = 0;
        for (x, y) in d.test() {
            let pred = (0..k)
                .min_by(|&a, &b| {
                    let da: f64 = means[a].iter().zip(x).map(|(m, v)| (m - v).powi(2)).sum();
                    let db: f64 = means[b].iter().zip(x).map(|(m, v)| (m - v).powi(2)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if pred == *y {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.test().len() as f64;
        assert!(acc > 0.3, "nearest-mean accuracy {acc} barely above chance");
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn one_class_panics() {
        SyntheticDataset::generate(0, 4, 1, 5, 5);
    }
}
