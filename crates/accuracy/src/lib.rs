//! Accuracy-objective substrate.
//!
//! In the paper, every sampled architecture is trained on CIFAR-10 for 10
//! epochs (with moderate augmentation, 45 k train / 5 k val / 10 k test) and
//! its *test error* is the first objective of the multi-objective search.
//! Training 300 CNNs needs a GPU deep-learning stack — the reproduction gate
//! flagged in the calibration bands (`repro_why`: "tch-rs bindings thin") —
//! so this crate substitutes per DESIGN.md #2:
//!
//! * [`SurrogateAccuracy`] — the default: a deterministic, architecture-
//!   seeded model of "CIFAR-10 test error after 10 epochs". Error falls with
//!   capacity (log conv parameters) with diminishing returns, improves
//!   mildly with depth, degrades with oversized kernels and with
//!   under-trained giant FC heads, and carries seeded training noise. It
//!   preserves the property the search actually exercises: an expensive,
//!   noisy, black-box error objective in tension with latency/energy.
//! * [`TrainedAccuracy`] — a genuine (small) trainer: a from-scratch MLP
//!   with softmax cross-entropy and SGD-with-momentum, trained on a
//!   procedurally generated classification dataset, wired through the same
//!   [`AccuracyEstimator`] trait to prove the search is estimator-agnostic.
//!
//! # Examples
//!
//! ```
//! use lens_accuracy::{AccuracyEstimator, SurrogateAccuracy};
//! use lens_space::{SearchSpace, VggSpace};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let space = VggSpace::for_cifar10();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let net = space.decode(&space.sample(&mut rng))?;
//! let estimator = SurrogateAccuracy::cifar10();
//! let err = estimator.test_error(&net)?;
//! assert!((5.0..=90.0).contains(&err));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod cnn;
pub mod dataset;
pub mod surrogate;
pub mod train;

pub use cnn::CnnTrainedAccuracy;
pub use dataset::SyntheticDataset;
pub use surrogate::SurrogateAccuracy;
pub use train::{Mlp, TrainedAccuracy};

use lens_nn::{Network, NnError};
use std::error::Error;
use std::fmt;

/// Errors produced by accuracy estimation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AccuracyError {
    /// The network could not be analyzed.
    Network(NnError),
    /// The network has no trainable layers to map onto the trainer.
    Untrainable(String),
}

impl fmt::Display for AccuracyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccuracyError::Network(e) => write!(f, "network analysis failed: {e}"),
            AccuracyError::Untrainable(why) => write!(f, "untrainable network: {why}"),
        }
    }
}

impl Error for AccuracyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AccuracyError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for AccuracyError {
    fn from(e: NnError) -> Self {
        AccuracyError::Network(e)
    }
}

/// Estimates the test error (in percent, `0..=100`) of a candidate network
/// — the paper's accuracy objective. Implementations must be deterministic
/// per network so the search is reproducible.
pub trait AccuracyEstimator {
    /// Returns the estimated test error in percent.
    ///
    /// # Errors
    ///
    /// Returns [`AccuracyError`] when the network cannot be evaluated.
    fn test_error(&self, network: &Network) -> Result<f64, AccuracyError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait stays object-safe: heterogeneous estimators behind dyn.
    #[test]
    fn estimator_is_object_safe() {
        let estimators: Vec<Box<dyn AccuracyEstimator>> =
            vec![Box::new(SurrogateAccuracy::cifar10())];
        assert_eq!(estimators.len(), 1);
    }
}
