//! A from-scratch convolutional network trainer.
//!
//! [`TrainedAccuracy`](crate::TrainedAccuracy) approximates training with an
//! MLP; this module closes the remaining gap to the paper's protocol by
//! actually training the *sampled architecture's convolutional structure*:
//! forward and backward passes for Conv2d (+ReLU), MaxPool2d, Flatten, and
//! Dense (+ReLU/softmax) layers, SGD with momentum, on procedurally
//! generated image tensors. It is deliberately small and dependency-free —
//! CHW `f64` tensors and direct loops — sized so a search-space candidate
//! at 32×32×3 trains in seconds, not hours.
//!
//! [`CnnTrainedAccuracy`] is the third [`AccuracyEstimator`] backend: a
//! real CNN training loop behind the same trait the surrogate uses.

use crate::{AccuracyError, AccuracyEstimator};
use lens_nn::{Activation, LayerKind, Network, TensorShape};
use lens_num::dist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A CHW tensor with contiguous storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: TensorShape,
    data: Vec<f64>,
}

impl Tensor {
    /// Zero tensor of a shape.
    pub fn zeros(shape: TensorShape) -> Self {
        Tensor {
            data: vec![0.0; shape.num_elements() as usize],
            shape,
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape.
    pub fn from_data(shape: TensorShape, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            shape.num_elements() as usize,
            "tensor data length mismatch"
        );
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> TensorShape {
        self.shape
    }

    /// Raw data in CHW order.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    #[inline]
    fn idx(&self, c: u32, y: u32, x: u32) -> usize {
        ((c * self.shape.height() + y) * self.shape.width() + x) as usize
    }

    #[inline]
    fn get(&self, c: u32, y: i64, x: i64) -> f64 {
        if y < 0 || x < 0 || y >= self.shape.height() as i64 || x >= self.shape.width() as i64 {
            0.0 // zero padding
        } else {
            self.data[self.idx(c, y as u32, x as u32)]
        }
    }
}

/// Clamps a gradient component; a handful of huge early steps is what
/// kills small ReLU nets (dead units -> uniform predictions).
#[inline]
fn clip(g: f64) -> f64 {
    g.clamp(-1.0, 1.0)
}

fn layer_groups(kind: &LayerKind) -> u32 {
    match kind {
        LayerKind::Conv2d { groups, .. } => *groups,
        _ => 1,
    }
}

/// One trainable CNN layer with its parameters and momentum buffers.
#[derive(Debug, Clone)]
enum CnnLayer {
    Conv {
        out_ch: u32,
        kernel: u32,
        padding: u32,
        relu: bool,
        /// `[out_ch][in_ch * k * k]`
        weights: Vec<Vec<f64>>,
        bias: Vec<f64>,
        vel_w: Vec<Vec<f64>>,
        vel_b: Vec<f64>,
    },
    MaxPool {
        kernel: u32,
        stride: u32,
    },
    AvgPool {
        kernel: u32,
        stride: u32,
    },
    Flatten,
    Dense {
        out_features: u32,
        relu: bool,
        /// `[out][in]`
        weights: Vec<Vec<f64>>,
        bias: Vec<f64>,
        vel_w: Vec<Vec<f64>>,
        vel_b: Vec<f64>,
    },
}

/// A small trainable CNN mirroring a [`Network`]'s structure.
#[derive(Debug, Clone)]
pub struct Cnn {
    input: TensorShape,
    layers: Vec<CnnLayer>,
}

impl Cnn {
    /// Builds a trainable CNN from a network description, He-initialized.
    ///
    /// Stride-1 convolutions with "same"-style padding (as the search space
    /// produces) are supported; batch-norm/LRN/dropout are ignored at this
    /// fidelity. To keep candidate training tractable, channel/width counts
    /// are capped at `channel_cap`.
    ///
    /// # Errors
    ///
    /// Returns [`AccuracyError::Untrainable`] for strided convolutions or
    /// unsupported layer kinds.
    pub fn from_network(
        network: &Network,
        channel_cap: u32,
        seed: u64,
    ) -> Result<Self, AccuracyError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::new();
        let mut current = network.input();
        for layer in network.layers() {
            match layer.kind() {
                LayerKind::Conv2d {
                    out_channels,
                    kernel,
                    stride,
                    padding,
                    activation,
                    ..
                } => {
                    if *stride != 1 {
                        return Err(AccuracyError::Untrainable(format!(
                            "layer `{}`: strided convolutions are not supported by the trainer",
                            layer.name()
                        )));
                    }
                    if layer_groups(layer.kind()) != 1 {
                        return Err(AccuracyError::Untrainable(format!(
                            "layer `{}`: grouped convolutions are not supported by the trainer",
                            layer.name()
                        )));
                    }
                    let out_ch = (*out_channels).min(channel_cap);
                    let in_ch = current.channels();
                    let fan_in = (in_ch * kernel * kernel) as f64;
                    let scale = (2.0 / fan_in).sqrt();
                    let weights: Vec<Vec<f64>> = (0..out_ch)
                        .map(|_| {
                            (0..in_ch * kernel * kernel)
                                .map(|_| dist::normal(&mut rng, 0.0, scale))
                                .collect()
                        })
                        .collect();
                    let vel_w = weights.iter().map(|w| vec![0.0; w.len()]).collect();
                    layers.push(CnnLayer::Conv {
                        out_ch,
                        kernel: *kernel,
                        padding: *padding,
                        relu: *activation == Activation::Relu,
                        bias: vec![0.0; out_ch as usize],
                        vel_b: vec![0.0; out_ch as usize],
                        weights,
                        vel_w,
                    });
                    current = TensorShape::new(out_ch, current.height(), current.width());
                }
                LayerKind::MaxPool2d { kernel, stride } => {
                    layers.push(CnnLayer::MaxPool {
                        kernel: *kernel,
                        stride: *stride,
                    });
                    let h = (current.height() - kernel) / stride + 1;
                    let w = (current.width() - kernel) / stride + 1;
                    current = TensorShape::new(current.channels(), h, w);
                }
                LayerKind::AvgPool2d { kernel, stride } => {
                    layers.push(CnnLayer::AvgPool {
                        kernel: *kernel,
                        stride: *stride,
                    });
                    let h = (current.height() - kernel) / stride + 1;
                    let w = (current.width() - kernel) / stride + 1;
                    current = TensorShape::new(current.channels(), h, w);
                }
                LayerKind::Flatten => {
                    layers.push(CnnLayer::Flatten);
                    current = current.flattened();
                }
                LayerKind::Dense {
                    out_features,
                    activation,
                } => {
                    let is_last_like = *activation == Activation::Softmax;
                    let out = if is_last_like {
                        *out_features
                    } else {
                        (*out_features).min(channel_cap * 4)
                    };
                    let fan_in = current.num_elements() as f64;
                    let scale = (2.0 / fan_in).sqrt();
                    let weights: Vec<Vec<f64>> = (0..out)
                        .map(|_| {
                            (0..current.num_elements())
                                .map(|_| dist::normal(&mut rng, 0.0, scale))
                                .collect()
                        })
                        .collect();
                    let vel_w = weights.iter().map(|w| vec![0.0; w.len()]).collect();
                    layers.push(CnnLayer::Dense {
                        out_features: out,
                        relu: *activation == Activation::Relu,
                        bias: vec![0.0; out as usize],
                        vel_b: vec![0.0; out as usize],
                        weights,
                        vel_w,
                    });
                    current = TensorShape::flat(out);
                }
                LayerKind::Dropout { .. } => { /* inference-free; skip */ }
            }
        }
        if layers.is_empty() {
            return Err(AccuracyError::Untrainable("network has no layers".into()));
        }
        Ok(Cnn {
            input: network.input(),
            layers,
        })
    }

    /// The expected input shape.
    pub fn input(&self) -> TensorShape {
        self.input
    }

    /// Forward pass returning the activations entering each layer plus the
    /// final logits. For max-pool layers the argmax indices are recorded
    /// for the backward pass.
    fn forward(&self, x: &Tensor) -> (Vec<Tensor>, Vec<Vec<usize>>) {
        let mut acts = vec![x.clone()];
        let mut pool_argmax: Vec<Vec<usize>> = Vec::new();
        for layer in &self.layers {
            let input = acts.last().expect("non-empty activations");
            let out = match layer {
                CnnLayer::Conv {
                    out_ch,
                    kernel,
                    padding,
                    relu,
                    weights,
                    bias,
                    ..
                } => {
                    let (h, w) = (input.shape.height(), input.shape.width());
                    let mut out = Tensor::zeros(TensorShape::new(*out_ch, h, w));
                    let in_ch = input.shape.channels();
                    let k = *kernel;
                    let pad = *padding as i64;
                    for oc in 0..*out_ch {
                        let wrow = &weights[oc as usize];
                        for y in 0..h {
                            for x2 in 0..w {
                                let mut sum = bias[oc as usize];
                                let mut wi = 0usize;
                                for ic in 0..in_ch {
                                    for ky in 0..k {
                                        for kx in 0..k {
                                            let sy = y as i64 + ky as i64 - pad;
                                            let sx = x2 as i64 + kx as i64 - pad;
                                            sum += wrow[wi] * input.get(ic, sy, sx);
                                            wi += 1;
                                        }
                                    }
                                }
                                if *relu && sum < 0.0 {
                                    sum = 0.0;
                                }
                                let idx = out.idx(oc, y, x2);
                                out.data[idx] = sum;
                            }
                        }
                    }
                    out
                }
                CnnLayer::MaxPool { kernel, stride } => {
                    let ch = input.shape.channels();
                    let oh = (input.shape.height() - kernel) / stride + 1;
                    let ow = (input.shape.width() - kernel) / stride + 1;
                    let mut out = Tensor::zeros(TensorShape::new(ch, oh, ow));
                    let mut argmax = vec![0usize; out.data.len()];
                    for c in 0..ch {
                        for y in 0..oh {
                            for x2 in 0..ow {
                                let mut best = f64::NEG_INFINITY;
                                let mut best_idx = 0usize;
                                for ky in 0..*kernel {
                                    for kx in 0..*kernel {
                                        let sy = y * stride + ky;
                                        let sx = x2 * stride + kx;
                                        let idx = input.idx(c, sy, sx);
                                        if input.data[idx] > best {
                                            best = input.data[idx];
                                            best_idx = idx;
                                        }
                                    }
                                }
                                let oidx = out.idx(c, y, x2);
                                out.data[oidx] = best;
                                argmax[oidx] = best_idx;
                            }
                        }
                    }
                    pool_argmax.push(argmax);
                    out
                }
                CnnLayer::AvgPool { kernel, stride } => {
                    let ch = input.shape.channels();
                    let oh = (input.shape.height() - kernel) / stride + 1;
                    let ow = (input.shape.width() - kernel) / stride + 1;
                    let mut out = Tensor::zeros(TensorShape::new(ch, oh, ow));
                    let window = (*kernel * *kernel) as f64;
                    for c in 0..ch {
                        for y in 0..oh {
                            for x2 in 0..ow {
                                let mut sum = 0.0;
                                for ky in 0..*kernel {
                                    for kx in 0..*kernel {
                                        sum += input.data
                                            [input.idx(c, y * stride + ky, x2 * stride + kx)];
                                    }
                                }
                                let oidx = out.idx(c, y, x2);
                                out.data[oidx] = sum / window;
                            }
                        }
                    }
                    out
                }
                CnnLayer::Flatten => Tensor::from_data(input.shape.flattened(), input.data.clone()),
                CnnLayer::Dense {
                    out_features,
                    relu,
                    weights,
                    bias,
                    ..
                } => {
                    let mut out = Tensor::zeros(TensorShape::flat(*out_features));
                    for (o, (wrow, b)) in weights.iter().zip(bias).enumerate() {
                        let mut sum = *b;
                        for (wi, xi) in wrow.iter().zip(&input.data) {
                            sum += wi * xi;
                        }
                        out.data[o] = if *relu { sum.max(0.0) } else { sum };
                    }
                    out
                }
            };
            acts.push(out);
        }
        (acts, pool_argmax)
    }

    /// Predicted class for one image.
    pub fn predict(&self, x: &Tensor) -> usize {
        let (acts, _) = self.forward(x);
        let logits = &acts.last().expect("non-empty activations").data;
        let mut best = 0;
        for (i, v) in logits.iter().enumerate() {
            if *v > logits[best] {
                best = i;
            }
        }
        best
    }

    /// Classification accuracy over labelled images.
    pub fn accuracy(&self, samples: &[(Tensor, usize)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .filter(|(x, y)| self.predict(x) == *y)
            .count();
        correct as f64 / samples.len() as f64
    }

    /// One SGD-with-momentum step; returns the cross-entropy loss.
    pub fn train_step(&mut self, x: &Tensor, label: usize, lr: f64, momentum: f64) -> f64 {
        let (acts, pool_argmax) = self.forward(x);
        let logits = &acts.last().expect("non-empty").data;

        // Softmax cross-entropy.
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|v| (v - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        let loss = -(exps[label] / sum).max(1e-12).ln();
        let mut delta: Vec<f64> = exps.iter().map(|e| e / sum).collect();
        delta[label] -= 1.0;

        let mut pool_cursor = pool_argmax.len();
        for l in (0..self.layers.len()).rev() {
            let input = &acts[l];
            let output = &acts[l + 1];
            match &mut self.layers[l] {
                CnnLayer::Dense {
                    relu,
                    weights,
                    bias,
                    vel_w,
                    vel_b,
                    ..
                } => {
                    if *relu {
                        for (d, o) in delta.iter_mut().zip(&output.data) {
                            if *o <= 0.0 {
                                *d = 0.0;
                            }
                        }
                    }
                    let mut prev = vec![0.0; input.data.len()];
                    for (o, wrow) in weights.iter_mut().enumerate() {
                        let d = delta[o];
                        for (i, wi) in wrow.iter_mut().enumerate() {
                            prev[i] += *wi * d;
                            let v = &mut vel_w[o][i];
                            *v = momentum * *v - lr * clip(d * input.data[i]);
                            *wi += *v;
                        }
                        let vb = &mut vel_b[o];
                        *vb = momentum * *vb - lr * clip(d);
                        bias[o] += *vb;
                    }
                    delta = prev;
                }
                CnnLayer::Flatten => { /* gradient passes through unchanged */ }
                CnnLayer::MaxPool { .. } => {
                    pool_cursor -= 1;
                    let argmax = &pool_argmax[pool_cursor];
                    let mut prev = vec![0.0; input.data.len()];
                    for (oidx, &iidx) in argmax.iter().enumerate() {
                        prev[iidx] += delta[oidx];
                    }
                    delta = prev;
                }
                CnnLayer::AvgPool { kernel, stride } => {
                    let ch = input.shape.channels();
                    let oh = output.shape.height();
                    let ow = output.shape.width();
                    let window = (*kernel * *kernel) as f64;
                    let mut prev = vec![0.0; input.data.len()];
                    for c in 0..ch {
                        for y in 0..oh {
                            for x2 in 0..ow {
                                let d = delta[((c * oh + y) * ow + x2) as usize] / window;
                                for ky in 0..*kernel {
                                    for kx in 0..*kernel {
                                        prev[input.idx(c, y * *stride + ky, x2 * *stride + kx)] +=
                                            d;
                                    }
                                }
                            }
                        }
                    }
                    delta = prev;
                }
                CnnLayer::Conv {
                    out_ch,
                    kernel,
                    padding,
                    relu,
                    weights,
                    bias,
                    vel_w,
                    vel_b,
                } => {
                    if *relu {
                        for (d, o) in delta.iter_mut().zip(&output.data) {
                            if *o <= 0.0 {
                                *d = 0.0;
                            }
                        }
                    }
                    let (h, w) = (input.shape.height(), input.shape.width());
                    let in_ch = input.shape.channels();
                    let k = *kernel;
                    let pad = *padding as i64;
                    let mut prev = vec![0.0; input.data.len()];
                    for oc in 0..*out_ch {
                        let wrow = &mut weights[oc as usize];
                        let vrow = &mut vel_w[oc as usize];
                        // Accumulate the full gradient over all output
                        // positions first; one momentum update per step.
                        let mut w_grad = vec![0.0; wrow.len()];
                        let mut bias_grad = 0.0;
                        for y in 0..h {
                            for x2 in 0..w {
                                let d = delta[((oc * h + y) * w + x2) as usize];
                                if d == 0.0 {
                                    continue;
                                }
                                bias_grad += d;
                                let mut wi = 0usize;
                                for ic in 0..in_ch {
                                    for ky in 0..k {
                                        for kx in 0..k {
                                            let sy = y as i64 + ky as i64 - pad;
                                            let sx = x2 as i64 + kx as i64 - pad;
                                            if sy >= 0
                                                && sx >= 0
                                                && (sy as u32) < h
                                                && (sx as u32) < w
                                            {
                                                let iidx =
                                                    ((ic * h + sy as u32) * w + sx as u32) as usize;
                                                prev[iidx] += wrow[wi] * d;
                                                w_grad[wi] += d * input.data[iidx];
                                            }
                                            wi += 1;
                                        }
                                    }
                                }
                            }
                        }
                        for ((wi, v), g) in wrow.iter_mut().zip(vrow.iter_mut()).zip(&w_grad) {
                            *v = momentum * *v - lr * clip(*g);
                            *wi += *v;
                        }
                        let vb = &mut vel_b[oc as usize];
                        *vb = momentum * *vb - lr * clip(bias_grad);
                        bias[oc as usize] += *vb;
                    }
                    delta = prev;
                }
            }
        }
        loss
    }
}

/// A labelled image set: `(image, class)` pairs.
pub type LabelledImages = Vec<(Tensor, usize)>;

/// Generates a deterministic synthetic *image* dataset: each class has a
/// prototype pattern (oriented gradients + blobs); samples are noisy,
/// shifted copies.
pub fn synthetic_images(
    seed: u64,
    shape: TensorShape,
    num_classes: usize,
    train_per_class: usize,
    test_per_class: usize,
) -> (LabelledImages, LabelledImages) {
    let mut rng = StdRng::seed_from_u64(seed);
    let prototypes: Vec<Tensor> = (0..num_classes)
        .map(|class| {
            let mut t = Tensor::zeros(shape);
            let fx = (class % 4 + 1) as f64;
            let fy = (class / 4 + 1) as f64;
            for c in 0..shape.channels() {
                for y in 0..shape.height() {
                    for x in 0..shape.width() {
                        let u = x as f64 / shape.width() as f64;
                        let v = y as f64 / shape.height() as f64;
                        let idx = t.idx(c, y, x);
                        t.data[idx] = (fx * u * std::f64::consts::TAU).sin()
                            * (fy * v * std::f64::consts::TAU).cos()
                            + 0.3 * (c as f64 - 1.0);
                    }
                }
            }
            t
        })
        .collect();
    let split = |per_class: usize, rng: &mut StdRng| {
        let mut out = Vec::new();
        for (label, proto) in prototypes.iter().enumerate() {
            for _ in 0..per_class {
                let mut data = proto.data.clone();
                for v in &mut data {
                    *v += dist::normal(rng, 0.0, 0.4);
                }
                out.push((Tensor::from_data(shape, data), label));
            }
        }
        for i in (1..out.len()).rev() {
            let j = rng.gen_range(0..=i);
            out.swap(i, j);
        }
        out
    };
    let train = split(train_per_class, &mut rng);
    let test = split(test_per_class, &mut rng);
    (train, test)
}

/// Accuracy estimator that *really trains the candidate CNN* (downscaled)
/// on synthetic images — the closest this reproduction gets to the paper's
/// "each sampled architectural model is trained for 10 epochs".
///
/// # Examples
///
/// ```no_run
/// use lens_accuracy::cnn::CnnTrainedAccuracy;
/// use lens_accuracy::AccuracyEstimator;
/// use lens_space::{SearchSpace, VggSpace};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = VggSpace::for_cifar10();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let net = space.decode(&space.sample(&mut rng))?;
/// let estimator = CnnTrainedAccuracy::new(42, 3);
/// let err = estimator.test_error(&net)?;
/// assert!((0.0..=100.0).contains(&err));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CnnTrainedAccuracy {
    seed: u64,
    epochs: usize,
    channel_cap: u32,
    image_side: u32,
    learning_rate: f64,
    momentum: f64,
    train_per_class: usize,
    test_per_class: usize,
}

impl CnnTrainedAccuracy {
    /// Creates the estimator; `epochs` mirrors the paper's 10-epoch budget.
    pub fn new(seed: u64, epochs: usize) -> Self {
        CnnTrainedAccuracy {
            seed,
            epochs,
            channel_cap: 8,
            image_side: 32,
            learning_rate: 0.005,
            momentum: 0.8,
            train_per_class: 20,
            test_per_class: 8,
        }
    }

    /// Overrides the per-class train/test sample counts (smaller = faster).
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn with_dataset_size(mut self, train_per_class: usize, test_per_class: usize) -> Self {
        assert!(
            train_per_class > 0 && test_per_class > 0,
            "counts must be positive"
        );
        self.train_per_class = train_per_class;
        self.test_per_class = test_per_class;
        self
    }

    /// Overrides the per-layer channel cap (higher = slower, closer to the
    /// true architecture).
    pub fn with_channel_cap(mut self, cap: u32) -> Self {
        assert!(cap > 0, "channel cap must be positive");
        self.channel_cap = cap;
        self
    }
}

impl AccuracyEstimator for CnnTrainedAccuracy {
    fn test_error(&self, network: &Network) -> Result<f64, AccuracyError> {
        // Rebuild the architecture at a reduced image size so training is
        // tractable: same layer structure, capped channels.
        let analysis = network.analyze()?;
        let num_classes = analysis.output_shape().num_elements() as usize;

        // Re-express the network at the training image size by cloning the
        // layer stack onto a smaller input. Pools shrink 16 -> 1 after 4,
        // so cap pools the same way VggSpace guarantees validity.
        let side = self.image_side;
        let train_net = network
            .with_input(TensorShape::new(3, side, side))
            .map_err(AccuracyError::Network)?;

        let mut cnn = Cnn::from_network(&train_net, self.channel_cap, self.seed)?;
        let (train, test) = synthetic_images(
            self.seed ^ 0xDA7A,
            TensorShape::new(3, side, side),
            num_classes.min(10),
            self.train_per_class,
            self.test_per_class,
        );
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0DD);
        let mut order: Vec<usize> = (0..train.len()).collect();
        for _ in 0..self.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                let (x, y) = &train[i];
                if *y < num_classes {
                    cnn.train_step(x, *y, self.learning_rate, self.momentum);
                }
            }
        }
        Ok(100.0 * (1.0 - cnn.accuracy(&test)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lens_nn::{Layer, NetworkBuilder};

    fn tiny_cnn_network() -> Network {
        NetworkBuilder::new("tiny", TensorShape::new(3, 8, 8))
            .layer(Layer::conv("c1", 4, 3, 1))
            .layer(Layer::max_pool2("p1"))
            .layer(Layer::conv("c2", 8, 3, 1))
            .layer(Layer::max_pool2("p2"))
            .flatten()
            .layer(Layer::dense("fc", 16))
            .layer(Layer::new(
                "cls",
                LayerKind::Dense {
                    out_features: 3,
                    activation: Activation::Softmax,
                },
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn forward_shapes_follow_network() {
        let net = tiny_cnn_network();
        let cnn = Cnn::from_network(&net, 64, 1).unwrap();
        let x = Tensor::zeros(TensorShape::new(3, 8, 8));
        let (acts, _) = cnn.forward(&x);
        assert_eq!(acts.last().unwrap().shape(), TensorShape::flat(3));
    }

    #[test]
    fn training_reduces_loss_on_one_example() {
        let net = tiny_cnn_network();
        let mut cnn = Cnn::from_network(&net, 64, 2).unwrap();
        let (train, _) = synthetic_images(3, TensorShape::new(3, 8, 8), 3, 2, 1);
        let (x, y) = &train[0];
        let first = cnn.train_step(x, *y, 0.02, 0.0);
        let mut last = first;
        for _ in 0..30 {
            last = cnn.train_step(x, *y, 0.02, 0.0);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn cnn_learns_synthetic_images_above_chance() {
        let net = tiny_cnn_network();
        let mut cnn = Cnn::from_network(&net, 64, 5).unwrap();
        let (train, test) = synthetic_images(7, TensorShape::new(3, 8, 8), 3, 20, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let mut order: Vec<usize> = (0..train.len()).collect();
        for _ in 0..6 {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                let (x, y) = &train[i];
                cnn.train_step(x, *y, 0.005, 0.8);
            }
        }
        let acc = cnn.accuracy(&test);
        assert!(acc > 0.5, "accuracy {acc} barely above 1/3 chance");
    }

    #[test]
    fn strided_convs_are_rejected() {
        let net = NetworkBuilder::new("strided", TensorShape::new(3, 8, 8))
            .layer(Layer::new(
                "c",
                LayerKind::Conv2d {
                    out_channels: 4,
                    kernel: 3,
                    stride: 2,
                    padding: 1,
                    groups: 1,
                    activation: Activation::Relu,
                    batch_norm: false,
                    local_response_norm: false,
                },
            ))
            .flatten()
            .layer(Layer::dense("fc", 4))
            .build()
            .unwrap();
        assert!(matches!(
            Cnn::from_network(&net, 8, 0),
            Err(AccuracyError::Untrainable(_))
        ));
    }

    #[test]
    fn synthetic_images_are_deterministic_and_labelled() {
        let (a_train, a_test) = synthetic_images(9, TensorShape::new(3, 8, 8), 4, 3, 2);
        let (b_train, _) = synthetic_images(9, TensorShape::new(3, 8, 8), 4, 3, 2);
        assert_eq!(a_train, b_train);
        assert_eq!(a_train.len(), 12);
        assert_eq!(a_test.len(), 8);
        assert!(a_train.iter().all(|(_, y)| *y < 4));
    }

    #[test]
    fn estimator_runs_on_space_architecture() {
        use lens_space::{SearchSpace, VggSpace};
        let space = VggSpace::for_cifar10();
        let mut rng = StdRng::seed_from_u64(11);
        let net = space.decode(&space.sample(&mut rng)).unwrap();
        let est = CnnTrainedAccuracy::new(5, 1)
            .with_channel_cap(4)
            .with_dataset_size(3, 2);
        let err = est.test_error(&net).unwrap();
        assert!((0.0..=100.0).contains(&err));
        assert_eq!(err, est.test_error(&net).unwrap(), "deterministic");
    }
}
