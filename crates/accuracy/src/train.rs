//! A from-scratch MLP trainer and the [`TrainedAccuracy`] estimator.
//!
//! This is the "prove the plumbing" half of DESIGN.md substitution #2: a
//! real gradient-descent training loop (dense layers, ReLU, softmax
//! cross-entropy, SGD with momentum) implementing the same
//! [`AccuracyEstimator`] trait the surrogate uses, so `lens-core` can run
//! the full LENS search against genuine training when the user wants it
//! (see `examples/custom_search_space.rs`).
//!
//! The candidate network's FC stack determines the MLP's hidden layers
//! (widths capped for tractability), and its convolutional capacity
//! determines how much of the synthetic feature space the model gets to see
//! — a stand-in for feature-extraction quality.

use crate::dataset::SyntheticDataset;
use crate::{AccuracyError, AccuracyEstimator};
use lens_nn::{LayerKind, Network};
use lens_num::dist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense multilayer perceptron with ReLU hidden activations and a softmax
/// cross-entropy head, trained by SGD with momentum.
#[derive(Debug, Clone)]
pub struct Mlp {
    // weights[l] is (out x in), biases[l] is (out).
    weights: Vec<Vec<Vec<f64>>>,
    biases: Vec<Vec<f64>>,
    velocity_w: Vec<Vec<Vec<f64>>>,
    velocity_b: Vec<Vec<f64>>,
}

impl Mlp {
    /// Creates an MLP with He-initialized weights.
    ///
    /// `dims` is `[input, hidden..., output]`.
    ///
    /// # Panics
    ///
    /// Panics if `dims` has fewer than two entries or any zero entry.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        assert!(dims.iter().all(|&d| d > 0), "dims must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights: Vec<Vec<Vec<f64>>> = Vec::new();
        let mut biases: Vec<Vec<f64>> = Vec::new();
        for w in dims.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let scale = (2.0 / fan_in as f64).sqrt();
            weights.push(
                (0..fan_out)
                    .map(|_| {
                        (0..fan_in)
                            .map(|_| dist::normal(&mut rng, 0.0, scale))
                            .collect()
                    })
                    .collect(),
            );
            biases.push(vec![0.0; fan_out]);
        }
        let velocity_w = weights
            .iter()
            .map(|w| w.iter().map(|r| vec![0.0; r.len()]).collect())
            .collect();
        let velocity_b = biases.iter().map(|b| vec![0.0; b.len()]).collect();
        Mlp {
            weights,
            biases,
            velocity_w,
            velocity_b,
        }
    }

    /// Forward pass returning all layer activations (post-ReLU, final
    /// pre-softmax logits last).
    fn forward(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut activations = vec![x.to_vec()];
        let last = self.weights.len() - 1;
        for (l, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let prev = activations.last().expect("non-empty activations");
            let mut z: Vec<f64> = w
                .iter()
                .zip(b)
                .map(|(row, bias)| row.iter().zip(prev).map(|(wi, xi)| wi * xi).sum::<f64>() + bias)
                .collect();
            if l < last {
                for v in &mut z {
                    *v = v.max(0.0);
                }
            }
            activations.push(z);
        }
        activations
    }

    /// Predicted class for one input.
    pub fn predict(&self, x: &[f64]) -> usize {
        let acts = self.forward(x);
        let logits = acts.last().expect("non-empty activations");
        let mut best = 0;
        for (i, v) in logits.iter().enumerate() {
            if *v > logits[best] {
                best = i;
            }
        }
        best
    }

    /// Classification accuracy over a labelled set.
    pub fn accuracy(&self, samples: &[(Vec<f64>, usize)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .filter(|(x, y)| self.predict(x) == *y)
            .count();
        correct as f64 / samples.len() as f64
    }

    /// One SGD-with-momentum step on a single example; returns the
    /// cross-entropy loss.
    pub fn train_step(&mut self, x: &[f64], label: usize, lr: f64, momentum: f64) -> f64 {
        let acts = self.forward(x);
        let logits = acts.last().expect("non-empty activations");

        // Softmax + cross-entropy gradient: p - onehot.
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|v| (v - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        let probs: Vec<f64> = exps.iter().map(|e| e / sum).collect();
        let loss = -probs[label].max(1e-12).ln();
        let mut delta: Vec<f64> = probs;
        delta[label] -= 1.0;

        // Backpropagate.
        for l in (0..self.weights.len()).rev() {
            let input = &acts[l];
            // Gradient w.r.t. previous activations (before applying ReLU').
            let mut prev_delta = vec![0.0; input.len()];
            for (j, row) in self.weights[l].iter().enumerate() {
                for (i, wi) in row.iter().enumerate() {
                    prev_delta[i] += wi * delta[j];
                }
            }
            // Parameter updates.
            for (j, row) in self.weights[l].iter_mut().enumerate() {
                for (i, wi) in row.iter_mut().enumerate() {
                    let g = delta[j] * input[i];
                    let v = &mut self.velocity_w[l][j][i];
                    *v = momentum * *v - lr * g;
                    *wi += *v;
                }
                let vb = &mut self.velocity_b[l][j];
                *vb = momentum * *vb - lr * delta[j];
                self.biases[l][j] += *vb;
            }
            if l > 0 {
                // ReLU derivative on the hidden activation.
                for (d, a) in prev_delta.iter_mut().zip(&acts[l]) {
                    if *a <= 0.0 {
                        *d = 0.0;
                    }
                }
                delta = prev_delta;
            }
        }
        loss
    }

    /// Trains for `epochs` passes over the (shuffled) training set.
    pub fn fit(
        &mut self,
        data: &[(Vec<f64>, usize)],
        epochs: usize,
        lr: f64,
        momentum: f64,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..epochs {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                let (x, y) = &data[i];
                self.train_step(x, *y, lr, momentum);
            }
        }
    }
}

/// Accuracy estimator backed by *real* training on a synthetic dataset.
///
/// # Examples
///
/// ```no_run
/// use lens_accuracy::{AccuracyEstimator, TrainedAccuracy};
/// use lens_space::{SearchSpace, VggSpace};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = VggSpace::for_cifar10();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let net = space.decode(&space.sample(&mut rng))?;
/// let estimator = TrainedAccuracy::new(11, 10);
/// let err = estimator.test_error(&net)?; // trains an MLP, returns test error %
/// assert!(err < 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedAccuracy {
    dataset_seed: u64,
    epochs: usize,
    learning_rate: f64,
    momentum: f64,
    hidden_cap: usize,
}

impl TrainedAccuracy {
    /// Creates the estimator (dataset regenerated deterministically from
    /// `dataset_seed`; `epochs` mirrors the paper's 10-epoch budget).
    pub fn new(dataset_seed: u64, epochs: usize) -> Self {
        TrainedAccuracy {
            dataset_seed,
            epochs,
            learning_rate: 0.01,
            momentum: 0.9,
            hidden_cap: 64,
        }
    }

    /// Derives MLP hidden dims and a feature-view width from the network.
    fn derive_dims(&self, network: &Network) -> Result<(usize, Vec<usize>), AccuracyError> {
        let analysis = network.analyze()?;
        let mut hidden = Vec::new();
        let mut conv_params: u64 = 0;
        for l in analysis.layers() {
            match &l.kind {
                LayerKind::Dense { out_features, .. } => {
                    hidden.push((*out_features as usize).min(self.hidden_cap).max(4));
                }
                LayerKind::Conv2d { .. } => conv_params += l.params,
                _ => {}
            }
        }
        if hidden.is_empty() {
            return Err(AccuracyError::Untrainable(
                "network has no dense layers to map onto the MLP".into(),
            ));
        }
        hidden.pop(); // the classifier layer is added by the trainer

        // Feature view: richer conv stacks "extract" more of the feature
        // space (8..=64 dims on a log scale).
        let view = ((conv_params.max(1) as f64).log10() * 8.0) as usize;
        Ok((view.clamp(8, 64), hidden))
    }
}

impl AccuracyEstimator for TrainedAccuracy {
    fn test_error(&self, network: &Network) -> Result<f64, AccuracyError> {
        let (view, hidden) = self.derive_dims(network)?;
        let data = SyntheticDataset::cifar_like(self.dataset_seed);

        // Restrict inputs to the first `view` dims (feature-extraction
        // quality proxy), deterministic per architecture.
        let project = |s: &[(Vec<f64>, usize)]| -> Vec<(Vec<f64>, usize)> {
            s.iter()
                .map(|(x, y)| (x[..view.min(x.len())].to_vec(), *y))
                .collect()
        };
        let train = project(data.train());
        let test = project(data.test());

        let mut dims = vec![train[0].0.len()];
        dims.extend(&hidden);
        dims.push(data.num_classes());

        let mut mlp = Mlp::new(&dims, self.dataset_seed ^ 0xA5A5);
        mlp.fit(
            &train,
            self.epochs,
            self.learning_rate,
            self.momentum,
            self.dataset_seed ^ 0x5A5A,
        );
        Ok(100.0 * (1.0 - mlp.accuracy(&test)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lens_space::{SearchSpace, VggSpace};

    #[test]
    fn mlp_learns_xor_like_separation() {
        // 2-class blobs, linearly inseparable after warp — MLP should beat
        // chance comfortably.
        let data = SyntheticDataset::generate(3, 8, 2, 60, 30);
        let mut mlp = Mlp::new(&[8, 16, 2], 1);
        let before = mlp.accuracy(data.test());
        mlp.fit(data.train(), 20, 0.02, 0.9, 2);
        let after = mlp.accuracy(data.test());
        assert!(after > 0.8, "accuracy {after} (before {before})");
        assert!(after >= before);
    }

    #[test]
    fn train_step_reduces_loss_on_repeated_example() {
        let mut mlp = Mlp::new(&[4, 8, 3], 5);
        let x = [0.5, -0.2, 0.8, 0.1];
        let first = mlp.train_step(&x, 2, 0.05, 0.0);
        let mut last = first;
        for _ in 0..50 {
            last = mlp.train_step(&x, 2, 0.05, 0.0);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn trained_estimator_runs_on_space_architectures() {
        let space = VggSpace::for_cifar10();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let net = space.decode(&space.sample(&mut rng)).unwrap();
        let est = TrainedAccuracy::new(9, 3);
        let err = est.test_error(&net).unwrap();
        assert!((0.0..=100.0).contains(&err));
        // Deterministic.
        assert_eq!(err, est.test_error(&net).unwrap());
    }

    #[test]
    fn untrainable_network_errors() {
        use lens_nn::{Layer, NetworkBuilder, TensorShape};
        let net = NetworkBuilder::new("convs-only", TensorShape::new(3, 8, 8))
            .layer(Layer::conv("c", 4, 3, 1))
            .build()
            .unwrap();
        let est = TrainedAccuracy::new(1, 1);
        assert!(matches!(
            est.test_error(&net),
            Err(AccuracyError::Untrainable(_))
        ));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_needs_two_dims() {
        Mlp::new(&[4], 0);
    }
}
