//! LENS: Layer-Distribution-Enabled Neural Architecture Search — the
//! paper's core methodology (§IV).
//!
//! LENS performs multi-objective NAS for two-tiered edge–cloud systems,
//! minimizing `(test error, latency, energy)` where the two performance
//! objectives are evaluated **at each candidate's best deployment option**
//! under the user's expected wireless conditions:
//!
//! * [`objectives`] — Algorithm 1: per-layer cost accumulation, viable
//!   partition-point identification, and the minimal latency/energy across
//!   All-Edge / All-Cloud / every split.
//! * [`evaluate`] — the full `Evaluate(x, F, Tech, t_u)` step: decode the
//!   encoding, estimate test error, evaluate the performance objectives.
//! * [`search`] — Algorithm 2: the MOBO loop over the search space.
//! * [`traditional`] — the paper's baseline: platform-aware (All-Edge) NAS
//!   followed by *post-hoc* partitioning of its Pareto set (§V.A), and the
//!   "partitioning within vs after optimization" comparison (§V.B).
//! * [`report`] — criteria counts (Fig 7), frontier metrics, CSV output.
//!
//! The easiest entry point is the [`Lens`] builder:
//!
//! ```
//! use lens_core::Lens;
//! use lens_nn::units::Mbps;
//! use lens_wireless::WirelessTechnology;
//!
//! # fn main() -> Result<(), lens_core::LensError> {
//! let lens = Lens::builder()
//!     .technology(WirelessTechnology::Wifi)
//!     .expected_throughput(Mbps::new(3.0))
//!     .iterations(4)         // paper uses 300; tiny here for the doctest
//!     .initial_samples(4)
//!     .seed(7)
//!     .build()?;
//! let outcome = lens.search()?;
//! assert!(outcome.pareto_front().len() >= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod evaluate;
pub mod objectives;
pub mod report;
pub mod search;
pub mod traditional;

pub use evaluate::{CandidateEvaluation, LensEvaluator, Objectives};
pub use objectives::{PartitionPolicy, PerfEvaluation, PerfEvaluator};
pub use report::{write_csv, CriteriaCounts, FrontierComparison};
pub use search::{ExploredCandidate, SearchConfig, SearchOutcome};
pub use traditional::partition_frontier;

use lens_accuracy::{AccuracyError, AccuracyEstimator, SurrogateAccuracy};
use lens_device::{DeviceError, DeviceProfile, LayerPerformanceModel, PerformancePredictor};
use lens_gp::{GpError, MoboConfig};
use lens_nn::units::Mbps;
use lens_nn::NnError;
use lens_runtime::RuntimeError;
use lens_space::{SearchSpace, SpaceError, VggSpace};
use lens_wireless::{WirelessLink, WirelessTechnology};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Unified error type of the LENS core.
#[derive(Debug)]
#[non_exhaustive]
pub enum LensError {
    /// Search-space encode/decode failure.
    Space(SpaceError),
    /// Network construction/analysis failure.
    Network(NnError),
    /// Accuracy estimation failure.
    Accuracy(AccuracyError),
    /// Device-model failure.
    Device(DeviceError),
    /// Bayesian-optimization failure.
    Optimizer(GpError),
    /// Runtime/deployment analysis failure.
    Runtime(RuntimeError),
    /// Invalid configuration.
    Config(String),
    /// I/O failure while writing reports.
    Io(std::io::Error),
}

impl fmt::Display for LensError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LensError::Space(e) => write!(f, "search space error: {e}"),
            LensError::Network(e) => write!(f, "network error: {e}"),
            LensError::Accuracy(e) => write!(f, "accuracy estimation error: {e}"),
            LensError::Device(e) => write!(f, "device model error: {e}"),
            LensError::Optimizer(e) => write!(f, "optimizer error: {e}"),
            LensError::Runtime(e) => write!(f, "runtime analysis error: {e}"),
            LensError::Config(why) => write!(f, "invalid configuration: {why}"),
            LensError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for LensError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LensError::Space(e) => Some(e),
            LensError::Network(e) => Some(e),
            LensError::Accuracy(e) => Some(e),
            LensError::Device(e) => Some(e),
            LensError::Optimizer(e) => Some(e),
            LensError::Runtime(e) => Some(e),
            LensError::Io(e) => Some(e),
            LensError::Config(_) => None,
        }
    }
}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for LensError {
            fn from(e: $ty) -> Self {
                LensError::$variant(e)
            }
        }
    };
}
from_err!(Space, SpaceError);
from_err!(Network, NnError);
from_err!(Accuracy, AccuracyError);
from_err!(Device, DeviceError);
from_err!(Optimizer, GpError);
from_err!(Runtime, RuntimeError);
from_err!(Io, std::io::Error);

/// High-level LENS instance: the design-time inputs of Fig 3 (wireless
/// technology, expected conditions, search-space definition, device) plus
/// the search configuration, wired together.
#[derive(Clone)]
pub struct Lens {
    evaluator: LensEvaluator,
    traditional_evaluator: LensEvaluator,
    config: SearchConfig,
}

impl Lens {
    /// Starts a builder with the paper's defaults (TX2 GPU, WiFi at
    /// 3 Mbps, VGG16-derived space, 300 iterations).
    pub fn builder() -> LensBuilder {
        LensBuilder::default()
    }

    /// The candidate evaluator (partitioning within the optimization).
    pub fn evaluator(&self) -> &LensEvaluator {
        &self.evaluator
    }

    /// The Traditional baseline's evaluator (All-Edge objectives).
    pub fn traditional_evaluator(&self) -> &LensEvaluator {
        &self.traditional_evaluator
    }

    /// The search configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Runs the LENS search (Algorithm 2 with Algorithm 1 objectives).
    ///
    /// # Errors
    ///
    /// Propagates evaluation or optimizer failures.
    pub fn search(&self) -> Result<SearchOutcome, LensError> {
        search::run_search(&self.evaluator, &self.config)
    }

    /// Runs the Traditional baseline: identical search, but candidates are
    /// scored at their All-Edge deployment (platform-aware NAS for the
    /// target edge device).
    ///
    /// # Errors
    ///
    /// Propagates evaluation or optimizer failures.
    pub fn traditional_search(&self) -> Result<SearchOutcome, LensError> {
        search::run_search(&self.traditional_evaluator, &self.config)
    }

    /// Re-evaluates a frontier with partitioning enabled — the paper's
    /// "applying the optimal distribution of layers ... for its optimal set
    /// of architectures" post-processing of the Traditional solution.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn partition_frontier(
        &self,
        outcome: &SearchOutcome,
    ) -> Result<Vec<CandidateEvaluation>, LensError> {
        traditional::partition_frontier(&self.evaluator, outcome)
    }
}

impl fmt::Debug for Lens {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Lens")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// Builder for [`Lens`].
#[derive(Clone)]
pub struct LensBuilder {
    technology: WirelessTechnology,
    throughput: Mbps,
    round_trip: Option<lens_nn::units::Millis>,
    device: DeviceProfile,
    use_predictor: bool,
    predictor_noise: f64,
    accuracy: Option<Arc<dyn AccuracyEstimator + Send + Sync>>,
    deploy_space: Option<Arc<dyn SearchSpace + Send + Sync>>,
    train_space: Option<Arc<dyn SearchSpace + Send + Sync>>,
    config: SearchConfig,
}

impl Default for LensBuilder {
    fn default() -> Self {
        LensBuilder {
            technology: WirelessTechnology::Wifi,
            throughput: Mbps::new(3.0),
            round_trip: None,
            device: DeviceProfile::jetson_tx2_gpu(),
            use_predictor: true,
            predictor_noise: 0.05,
            accuracy: None,
            deploy_space: None,
            train_space: None,
            config: SearchConfig::default(),
        }
    }
}

impl fmt::Debug for LensBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LensBuilder")
            .field("technology", &self.technology)
            .field("throughput", &self.throughput)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl LensBuilder {
    /// Sets the supported wireless technology (`Tech` in Algorithms 1–2).
    pub fn technology(mut self, technology: WirelessTechnology) -> Self {
        self.technology = technology;
        self
    }

    /// Sets the expected uplink throughput `t_u`.
    pub fn expected_throughput(mut self, throughput: Mbps) -> Self {
        self.throughput = throughput;
        self
    }

    /// Overrides the measured round-trip latency `L_RT`.
    pub fn round_trip(mut self, rtt: lens_nn::units::Millis) -> Self {
        self.round_trip = Some(rtt);
        self
    }

    /// Sets the target edge device.
    pub fn device(mut self, device: DeviceProfile) -> Self {
        self.device = device;
        self
    }

    /// If `true` (default, as in the paper) the search uses trained
    /// per-layer regression predictors; if `false` it reads the analytic
    /// ground truth directly (an ablation).
    pub fn use_predictor(mut self, yes: bool) -> Self {
        self.use_predictor = yes;
        self
    }

    /// Measurement noise used when training the predictors.
    pub fn predictor_noise(mut self, sigma: f64) -> Self {
        self.predictor_noise = sigma;
        self
    }

    /// Replaces the accuracy estimator (default:
    /// [`SurrogateAccuracy::cifar10`]).
    pub fn accuracy_estimator(
        mut self,
        estimator: Arc<dyn AccuracyEstimator + Send + Sync>,
    ) -> Self {
        self.accuracy = Some(estimator);
        self
    }

    /// Replaces the search space. `deploy` is decoded for performance
    /// evaluation (224×224 input by default); `train` for the accuracy
    /// objective (32×32 CIFAR-10 by default). The two must share gene
    /// dimensions.
    pub fn spaces(
        mut self,
        deploy: Arc<dyn SearchSpace + Send + Sync>,
        train: Arc<dyn SearchSpace + Send + Sync>,
    ) -> Self {
        self.deploy_space = Some(deploy);
        self.train_space = Some(train);
        self
    }

    /// Number of MOBO iterations (`N_iter`, paper: 300).
    pub fn iterations(mut self, n: usize) -> Self {
        self.config.iterations = n;
        self
    }

    /// Number of random initial samples (`C_init`).
    pub fn initial_samples(mut self, n: usize) -> Self {
        self.config.initial_samples = n;
        self
    }

    /// RNG seed for the whole pipeline.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Overrides the MOBO configuration (acquisition rule etc.).
    pub fn mobo(mut self, mobo: MoboConfig) -> Self {
        self.config.mobo = mobo;
        self
    }

    /// Overrides the whole search configuration.
    pub fn search_config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Assembles the [`Lens`] instance: trains the performance predictors
    /// (unless disabled) and wires both the LENS and Traditional
    /// evaluators.
    ///
    /// # Errors
    ///
    /// Returns [`LensError::Config`] for inconsistent spaces or zero
    /// iteration counts, and propagates predictor-training failures.
    pub fn build(self) -> Result<Lens, LensError> {
        if self.config.initial_samples == 0 {
            return Err(LensError::Config(
                "initial_samples must be at least 1".into(),
            ));
        }
        let deploy_space = self
            .deploy_space
            .unwrap_or_else(|| Arc::new(VggSpace::for_deployment()));
        let train_space = self
            .train_space
            .unwrap_or_else(|| Arc::new(VggSpace::for_cifar10()));
        if deploy_space.dims() != train_space.dims() {
            return Err(LensError::Config(
                "deployment and training spaces must share gene dimensions".into(),
            ));
        }
        let accuracy = self
            .accuracy
            .unwrap_or_else(|| Arc::new(SurrogateAccuracy::cifar10()));

        let model: Arc<dyn LayerPerformanceModel + Send + Sync> = if self.use_predictor {
            Arc::new(PerformancePredictor::train(
                &self.device,
                self.predictor_noise,
                self.config.seed ^ 0x0DE51CE5,
            )?)
        } else {
            Arc::new(self.device.clone())
        };

        let link = match self.round_trip {
            Some(rtt) => WirelessLink::with_round_trip(self.technology, self.throughput, rtt),
            None => WirelessLink::new(self.technology, self.throughput),
        };

        let perf = PerfEvaluator::new(
            link,
            Arc::clone(&model),
            PartitionPolicy::WithinOptimization,
        );
        let perf_edge = PerfEvaluator::new(link, model, PartitionPolicy::EdgeOnly);

        let evaluator = LensEvaluator::new(
            Arc::clone(&deploy_space),
            Arc::clone(&train_space),
            Arc::clone(&accuracy),
            perf,
        );
        let traditional_evaluator =
            LensEvaluator::new(deploy_space, train_space, accuracy, perf_edge);

        Ok(Lens {
            evaluator,
            traditional_evaluator,
            config: self.config,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_build() {
        let lens = Lens::builder()
            .iterations(1)
            .initial_samples(2)
            .use_predictor(false)
            .build()
            .unwrap();
        assert_eq!(lens.config().iterations, 1);
    }

    #[test]
    fn builder_rejects_zero_init() {
        let err = Lens::builder().initial_samples(0).build().unwrap_err();
        assert!(matches!(err, LensError::Config(_)));
    }

    #[test]
    fn builder_rejects_mismatched_spaces() {
        use lens_nn::TensorShape;
        let deploy = Arc::new(VggSpace::for_deployment());
        // A "space" with different dims: reuse VggSpace but wrap to fake
        // dims is overkill; instead check same-type different-instance is
        // fine and rely on the dims equality check.
        let train = Arc::new(VggSpace::new(TensorShape::new(3, 32, 32), 10));
        assert!(Lens::builder()
            .spaces(deploy, train)
            .iterations(0)
            .initial_samples(1)
            .use_predictor(false)
            .build()
            .is_ok());
    }

    #[test]
    fn error_display_covers_variants() {
        let e = LensError::Config("bad".into());
        assert!(format!("{e}").contains("bad"));
        let e: LensError = SpaceError::ConstraintViolated("x".into()).into();
        assert!(format!("{e}").contains("search space"));
    }
}
