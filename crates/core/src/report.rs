//! Reporting utilities: the Fig 7 criteria counts, the Fig 6 frontier
//! comparison numbers, and CSV output for the experiment harness.

use crate::evaluate::{CandidateEvaluation, Objectives};
use crate::search::SearchOutcome;
use lens_pareto::{combined_composition, coverage, CombinedComposition};
use std::fmt;
use std::io::Write;
use std::path::Path;

/// The Fig 7 architecture-count criteria (error in %, energy in mJ).
///
/// The thresholds default to the paper's (`Err<20`, `Err<25`, `Ergy<200`,
/// `Ergy<250`) but are configurable because our simulated testbed's energy
/// scale differs from the authors' physical TX2 (DESIGN.md #1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriteriaCounts {
    /// The error threshold pair `(tight, loose)`, e.g. (20, 25).
    pub error_thresholds: (f64, f64),
    /// The energy threshold pair `(tight, loose)`, e.g. (200, 250).
    pub energy_thresholds: (f64, f64),
    /// `# {Err < tight}`.
    pub err_tight: usize,
    /// `# {Err < loose}`.
    pub err_loose: usize,
    /// `# {Ergy < tight}`.
    pub energy_tight: usize,
    /// `# {Ergy < loose}`.
    pub energy_loose: usize,
    /// `# {Err < loose ∧ Ergy < loose}` (the paper's hardest criterion).
    pub combined: usize,
}

impl CriteriaCounts {
    /// Counts the explored architectures of a search outcome against the
    /// given thresholds.
    pub fn of(
        outcome: &SearchOutcome,
        error_thresholds: (f64, f64),
        energy_thresholds: (f64, f64),
    ) -> Self {
        let count = |pred: &dyn Fn(&Objectives) -> bool| outcome.count_where(pred);
        CriteriaCounts {
            error_thresholds,
            energy_thresholds,
            err_tight: count(&|o| o.error_pct < error_thresholds.0),
            err_loose: count(&|o| o.error_pct < error_thresholds.1),
            energy_tight: count(&|o| o.energy_mj < energy_thresholds.0),
            energy_loose: count(&|o| o.energy_mj < energy_thresholds.1),
            combined: count(&|o| {
                o.error_pct < error_thresholds.1 && o.energy_mj < energy_thresholds.1
            }),
        }
    }
}

impl fmt::Display for CriteriaCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (et, el) = self.error_thresholds;
        let (gt, gl) = self.energy_thresholds;
        writeln!(f, "Err<{et}: {}", self.err_tight)?;
        writeln!(f, "Err<{el}: {}", self.err_loose)?;
        writeln!(f, "Ergy<{gt}: {}", self.energy_tight)?;
        writeln!(f, "Ergy<{gl}: {}", self.energy_loose)?;
        write!(f, "Err<{el} & Ergy<{gl}: {}", self.combined)
    }
}

/// The §V.A frontier-versus-frontier metrics between LENS and the
/// (partitioned) Traditional baseline, in one 2-D objective plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierComparison {
    /// Fraction of the baseline frontier dominated by LENS (C-metric), %.
    pub lens_dominates_pct: f64,
    /// Fraction of the LENS frontier dominated by the baseline, %.
    pub baseline_dominates_pct: f64,
    /// Composition of the combined frontier.
    pub combined: CombinedComposition,
}

impl FrontierComparison {
    /// Compares two frontiers given as objective-vector slices (LENS
    /// first).
    pub fn between(lens: &[&[f64]], baseline: &[&[f64]]) -> Self {
        FrontierComparison {
            lens_dominates_pct: 100.0 * coverage(lens, baseline),
            baseline_dominates_pct: 100.0 * coverage(baseline, lens),
            combined: combined_composition(lens, baseline),
        }
    }
}

impl fmt::Display for FrontierComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "LENS dominates {:.2}% of baseline frontier",
            self.lens_dominates_pct
        )?;
        writeln!(
            f,
            "baseline dominates {:.2}% of LENS frontier",
            self.baseline_dominates_pct
        )?;
        write!(
            f,
            "combined frontier: {:.2}% LENS / {:.2}% baseline ({} members)",
            self.combined.percent_from_a(),
            self.combined.percent_from_b(),
            self.combined.total()
        )
    }
}

/// Writes rows of `(header, rows)` as CSV to `path`, creating parent
/// directories as needed.
///
/// # Errors
///
/// Returns any I/O error encountered.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "{}", header.join(","))?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(())
}

/// Serializes a search outcome's exploration history into CSV rows
/// (`index,error_pct,latency_ms,energy_mj,best_latency_option,best_energy_option,encoding`).
pub fn outcome_rows(outcome: &SearchOutcome) -> Vec<Vec<String>> {
    outcome
        .explored()
        .iter()
        .map(|c| {
            vec![
                c.index.to_string(),
                format!("{:.4}", c.objectives.error_pct),
                format!("{:.4}", c.objectives.latency_ms),
                format!("{:.4}", c.objectives.energy_mj),
                c.best_latency_option.to_string(),
                c.best_energy_option.to_string(),
                format!("\"{}\"", c.encoding),
            ]
        })
        .collect()
}

/// Header matching [`outcome_rows`].
pub const OUTCOME_HEADER: [&str; 7] = [
    "index",
    "error_pct",
    "latency_ms",
    "energy_mj",
    "best_latency_option",
    "best_energy_option",
    "encoding",
];

/// Serializes re-evaluated candidates (e.g. a partitioned frontier).
pub fn evaluation_rows(evaluations: &[CandidateEvaluation]) -> Vec<Vec<String>> {
    evaluations
        .iter()
        .enumerate()
        .map(|(i, c)| {
            vec![
                i.to_string(),
                format!("{:.4}", c.objectives.error_pct),
                format!("{:.4}", c.objectives.latency_ms),
                format!("{:.4}", c.objectives.energy_mj),
                c.perf.best_latency_option.to_string(),
                c.perf.best_energy_option.to_string(),
                format!("\"{}\"", c.encoding),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lens;
    use lens_nn::units::Mbps;
    use lens_wireless::WirelessTechnology;

    fn outcome() -> SearchOutcome {
        Lens::builder()
            .technology(WirelessTechnology::Wifi)
            .expected_throughput(Mbps::new(3.0))
            .iterations(4)
            .initial_samples(6)
            .seed(3)
            .use_predictor(false)
            .build()
            .unwrap()
            .search()
            .unwrap()
    }

    #[test]
    fn criteria_counts_are_monotone_in_thresholds() {
        let o = outcome();
        let c = CriteriaCounts::of(&o, (20.0, 25.0), (200.0, 250.0));
        assert!(c.err_tight <= c.err_loose);
        assert!(c.energy_tight <= c.energy_loose);
        assert!(c.combined <= c.err_loose);
        assert!(c.combined <= c.energy_loose);
        let all = CriteriaCounts::of(&o, (1e9, 1e9), (1e9, 1e9));
        assert_eq!(all.err_tight, o.explored().len());
    }

    #[test]
    fn frontier_comparison_percentages_consistent() {
        let a: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let b: Vec<Vec<f64>> = vec![vec![3.0, 3.0]];
        let ar: Vec<&[f64]> = a.iter().map(|v| v.as_slice()).collect();
        let br: Vec<&[f64]> = b.iter().map(|v| v.as_slice()).collect();
        let cmp = FrontierComparison::between(&ar, &br);
        assert_eq!(cmp.lens_dominates_pct, 100.0);
        assert_eq!(cmp.baseline_dominates_pct, 0.0);
        assert_eq!(cmp.combined.percent_from_a(), 100.0);
        assert!(format!("{cmp}").contains("100.00%"));
    }

    #[test]
    fn csv_round_trip_via_filesystem() {
        let o = outcome();
        let rows = outcome_rows(&o);
        assert_eq!(rows.len(), o.explored().len());
        let dir = std::env::temp_dir().join("lens-report-test");
        let path = dir.join("outcome.csv");
        write_csv(&path, &OUTCOME_HEADER, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("index,error_pct"));
        assert_eq!(text.lines().count(), rows.len() + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn criteria_display_mentions_thresholds() {
        let o = outcome();
        let c = CriteriaCounts::of(&o, (20.0, 25.0), (200.0, 250.0));
        let s = format!("{c}");
        assert!(s.contains("Err<20") && s.contains("Ergy<250"));
    }
}
