//! The full candidate evaluation `Evaluate(x, F, Tech, t_u)` used by
//! Algorithm 2: decode the encoding, estimate test error on the training
//! view, evaluate latency/energy on the deployment view via Algorithm 1.

use crate::objectives::{PerfEvaluation, PerfEvaluator};
use crate::LensError;
use lens_accuracy::AccuracyEstimator;
use lens_space::{Encoding, SearchSpace};
use std::fmt;
use std::sync::Arc;

/// The three minimized objectives of the search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Estimated test error, percent.
    pub error_pct: f64,
    /// Minimal end-to-end latency, ms.
    pub latency_ms: f64,
    /// Minimal edge energy, mJ.
    pub energy_mj: f64,
}

impl Objectives {
    /// The objectives as a minimization vector `[error, latency, energy]`.
    pub fn to_vec(self) -> Vec<f64> {
        vec![self.error_pct, self.latency_ms, self.energy_mj]
    }

    /// Number of objectives.
    pub const COUNT: usize = 3;
}

impl fmt::Display for Objectives {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "err {:.2}%, lat {:.2} ms, energy {:.2} mJ",
            self.error_pct, self.latency_ms, self.energy_mj
        )
    }
}

/// A fully evaluated candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateEvaluation {
    /// The genotype.
    pub encoding: Encoding,
    /// The three objective values.
    pub objectives: Objectives,
    /// The Algorithm 1 details (best options, affine costs).
    pub perf: PerfEvaluation,
}

/// Evaluates encodings into objective vectors.
#[derive(Clone)]
pub struct LensEvaluator {
    deploy_space: Arc<dyn SearchSpace + Send + Sync>,
    train_space: Arc<dyn SearchSpace + Send + Sync>,
    accuracy: Arc<dyn AccuracyEstimator + Send + Sync>,
    perf: PerfEvaluator,
}

impl LensEvaluator {
    /// Wires the two space views, the accuracy estimator, and the
    /// performance evaluator together.
    pub fn new(
        deploy_space: Arc<dyn SearchSpace + Send + Sync>,
        train_space: Arc<dyn SearchSpace + Send + Sync>,
        accuracy: Arc<dyn AccuracyEstimator + Send + Sync>,
        perf: PerfEvaluator,
    ) -> Self {
        LensEvaluator {
            deploy_space,
            train_space,
            accuracy,
            perf,
        }
    }

    /// The deployment-view search space.
    pub fn space(&self) -> &Arc<dyn SearchSpace + Send + Sync> {
        &self.deploy_space
    }

    /// The performance evaluator (Algorithm 1).
    pub fn perf(&self) -> &PerfEvaluator {
        &self.perf
    }

    /// Evaluates one candidate.
    ///
    /// # Errors
    ///
    /// Propagates decode, accuracy, and performance failures.
    pub fn evaluate(&self, encoding: &Encoding) -> Result<CandidateEvaluation, LensError> {
        // Accuracy objective: decoded at the training input (CIFAR-10).
        let train_net = self.train_space.decode(encoding)?;
        let error_pct = self.accuracy.test_error(&train_net)?;

        // Performance objectives: decoded at the deployment input
        // (224x224x3, "to reflect realistic scenarios").
        let deploy_net = self.deploy_space.decode(encoding)?;
        let analysis = deploy_net.analyze()?;
        let perf = self.perf.evaluate(&analysis)?;

        Ok(CandidateEvaluation {
            encoding: encoding.clone(),
            objectives: Objectives {
                error_pct,
                latency_ms: perf.latency.get(),
                energy_mj: perf.energy.get(),
            },
            perf,
        })
    }
}

impl fmt::Debug for LensEvaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LensEvaluator")
            .field("perf", &self.perf)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objectives::PartitionPolicy;
    use lens_accuracy::SurrogateAccuracy;
    use lens_device::DeviceProfile;
    use lens_nn::units::Mbps;
    use lens_space::VggSpace;
    use lens_wireless::{WirelessLink, WirelessTechnology};
    use rand::SeedableRng;

    fn evaluator(policy: PartitionPolicy) -> LensEvaluator {
        LensEvaluator::new(
            Arc::new(VggSpace::for_deployment()),
            Arc::new(VggSpace::for_cifar10()),
            Arc::new(SurrogateAccuracy::cifar10()),
            PerfEvaluator::new(
                WirelessLink::new(WirelessTechnology::Wifi, Mbps::new(3.0)),
                Arc::new(DeviceProfile::jetson_tx2_gpu()),
                policy,
            ),
        )
    }

    #[test]
    fn evaluation_produces_finite_objectives() {
        let e = evaluator(PartitionPolicy::WithinOptimization);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let enc = e.space().sample(&mut rng);
            let c = e.evaluate(&enc).unwrap();
            let v = c.objectives.to_vec();
            assert_eq!(v.len(), Objectives::COUNT);
            assert!(v.iter().all(|x| x.is_finite() && *x > 0.0), "{:?}", v);
        }
    }

    #[test]
    fn lens_objectives_dominate_or_match_traditional() {
        let lens = evaluator(PartitionPolicy::WithinOptimization);
        let trad = evaluator(PartitionPolicy::EdgeOnly);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let enc = lens.space().sample(&mut rng);
            let a = lens.evaluate(&enc).unwrap().objectives;
            let b = trad.evaluate(&enc).unwrap().objectives;
            assert_eq!(a.error_pct, b.error_pct); // same accuracy objective
            assert!(a.latency_ms <= b.latency_ms + 1e-9);
            assert!(a.energy_mj <= b.energy_mj + 1e-9);
        }
    }

    #[test]
    fn display_formats_objectives() {
        let o = Objectives {
            error_pct: 20.5,
            latency_ms: 120.0,
            energy_mj: 250.0,
        };
        let s = format!("{o}");
        assert!(s.contains("20.50%") && s.contains("120.00 ms"));
    }
}
