//! Algorithm 1: performance-objective evaluation with layer distribution.
//!
//! For a candidate model, per-layer latency/power are predicted
//! (`L_Predict`/`P_Predict`), viable partition points identified
//! (`Identify` — output smaller than the input), each option's accumulated
//! cost computed (on-device prefix + communication), and the minima across
//! options returned per metric (`Minimal`). The All-Edge and All-Cloud
//! options are always in the comparison set, matching §III.A's "an
//! application can perform computations locally on the edge or offload
//! part, if not all, of it to the cloud".

use crate::LensError;
use lens_device::{profile_network, LayerPerformanceModel};
use lens_nn::units::{Mbps, Millijoules, Millis};
use lens_nn::NetworkAnalysis;
use lens_runtime::{DeploymentKind, DeploymentOption, DeploymentPlanner, Metric};
use lens_wireless::WirelessLink;
use std::fmt;
use std::sync::Arc;

/// Whether candidates may be distributed across the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionPolicy {
    /// LENS: evaluate each candidate at its best deployment option.
    WithinOptimization,
    /// The Traditional baseline: candidates are scored All-Edge only
    /// (platform-aware NAS for the edge device).
    EdgeOnly,
}

impl fmt::Display for PartitionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionPolicy::WithinOptimization => write!(f, "partition-within-optimization"),
            PartitionPolicy::EdgeOnly => write!(f, "all-edge-only"),
        }
    }
}

/// The result of Algorithm 1 on one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEvaluation {
    /// Minimal latency across allowed deployment options (`L`).
    pub latency: Millis,
    /// Minimal energy across allowed deployment options (`E`).
    pub energy: Millijoules,
    /// The option achieving the minimal latency (`index_L`).
    pub best_latency_option: DeploymentKind,
    /// The option achieving the minimal energy (`index_E`).
    pub best_energy_option: DeploymentKind,
    /// Every option that was compared, with its affine costs — reused by
    /// the runtime analysis (thresholds, Fig 8).
    pub options: Vec<DeploymentOption>,
}

impl PerfEvaluation {
    /// `true` if the best deployment (for either metric) communicates with
    /// the cloud — i.e. partitioning actually won.
    pub fn benefits_from_distribution(&self) -> bool {
        self.best_latency_option != DeploymentKind::AllEdge
            || self.best_energy_option != DeploymentKind::AllEdge
    }
}

/// Evaluates the performance objectives of candidate networks (Algorithm 1).
#[derive(Clone)]
pub struct PerfEvaluator {
    link: WirelessLink,
    model: Arc<dyn LayerPerformanceModel + Send + Sync>,
    policy: PartitionPolicy,
}

impl PerfEvaluator {
    /// Creates the evaluator from the design-time wireless expectation, a
    /// per-layer performance model, and the partition policy.
    pub fn new(
        link: WirelessLink,
        model: Arc<dyn LayerPerformanceModel + Send + Sync>,
        policy: PartitionPolicy,
    ) -> Self {
        PerfEvaluator {
            link,
            model,
            policy,
        }
    }

    /// The configured link (technology, `t_u`, RTT).
    pub fn link(&self) -> &WirelessLink {
        &self.link
    }

    /// The partition policy.
    pub fn policy(&self) -> PartitionPolicy {
        self.policy
    }

    /// The expected throughput the objectives are evaluated at.
    pub fn throughput(&self) -> Mbps {
        self.link.throughput()
    }

    /// Runs Algorithm 1 on an analyzed network.
    ///
    /// # Errors
    ///
    /// Propagates deployment-enumeration failures.
    pub fn evaluate(&self, analysis: &NetworkAnalysis) -> Result<PerfEvaluation, LensError> {
        let perf = profile_network(analysis, self.model.as_ref());
        let planner = DeploymentPlanner::new(self.link);
        let mut options = planner.enumerate(analysis, &perf)?;
        if self.policy == PartitionPolicy::EdgeOnly {
            options.retain(|o| o.kind() == &DeploymentKind::AllEdge);
        }
        let tu = self.link.throughput();
        let (best_lat, latency) = DeploymentPlanner::best_at(&options, Metric::Latency, tu)?;
        let (best_en, energy) = DeploymentPlanner::best_at(&options, Metric::Energy, tu)?;
        Ok(PerfEvaluation {
            latency: Millis::new(latency),
            energy: Millijoules::new(energy),
            best_latency_option: best_lat.kind().clone(),
            best_energy_option: best_en.kind().clone(),
            options,
        })
    }
}

impl fmt::Debug for PerfEvaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PerfEvaluator")
            .field("link", &self.link)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lens_device::DeviceProfile;
    use lens_nn::zoo;
    use lens_wireless::WirelessTechnology;

    fn evaluator(policy: PartitionPolicy, tu: f64) -> PerfEvaluator {
        PerfEvaluator::new(
            WirelessLink::new(WirelessTechnology::Wifi, Mbps::new(tu)),
            Arc::new(DeviceProfile::jetson_tx2_gpu()),
            policy,
        )
    }

    #[test]
    fn lens_never_worse_than_edge_only() {
        let a = zoo::alexnet().analyze().unwrap();
        for tu in [0.5, 3.0, 7.5, 16.1, 30.0] {
            let lens = evaluator(PartitionPolicy::WithinOptimization, tu)
                .evaluate(&a)
                .unwrap();
            let edge = evaluator(PartitionPolicy::EdgeOnly, tu)
                .evaluate(&a)
                .unwrap();
            assert!(lens.latency <= edge.latency, "tu={tu}");
            assert!(lens.energy <= edge.energy, "tu={tu}");
        }
    }

    #[test]
    fn edge_only_reports_all_edge() {
        let a = zoo::alexnet().analyze().unwrap();
        let edge = evaluator(PartitionPolicy::EdgeOnly, 3.0)
            .evaluate(&a)
            .unwrap();
        assert_eq!(edge.best_latency_option, DeploymentKind::AllEdge);
        assert_eq!(edge.best_energy_option, DeploymentKind::AllEdge);
        assert_eq!(edge.options.len(), 1);
        assert!(!edge.benefits_from_distribution());
    }

    #[test]
    fn alexnet_gpu_wifi_energy_prefers_pool5_at_moderate_tu() {
        // Table I: GPU/WiFi energy at 7.5 and 16.1 Mbps -> Pool5 split.
        // Use the ground-truth model (no predictor noise) for exactness.
        let a = zoo::alexnet().analyze().unwrap();
        for tu in [7.5, 16.1] {
            let eval = evaluator(PartitionPolicy::WithinOptimization, tu)
                .evaluate(&a)
                .unwrap();
            match &eval.best_energy_option {
                DeploymentKind::Split { layer_name, .. } => {
                    assert_eq!(layer_name, "pool5", "tu={tu}")
                }
                other => panic!("expected Split@pool5 at tu={tu}, got {other}"),
            }
            assert!(eval.benefits_from_distribution());
        }
    }

    #[test]
    fn evaluation_is_deterministic() {
        let a = zoo::alexnet().analyze().unwrap();
        let e = evaluator(PartitionPolicy::WithinOptimization, 3.0);
        assert_eq!(e.evaluate(&a).unwrap(), e.evaluate(&a).unwrap());
    }
}
