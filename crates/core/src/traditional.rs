//! The Traditional baseline's post-processing (§V.A).
//!
//! The paper's comparison target is "performing platform-aware NAS for the
//! target edge device, and then applying the optimal distribution of layers
//! between the edge and cloud for its optimal set of architectures": run
//! the same MOBO search with All-Edge objectives, then *afterwards* give
//! each frontier member the benefit of partitioning.

use crate::evaluate::{CandidateEvaluation, LensEvaluator};
use crate::search::SearchOutcome;
use crate::LensError;
use lens_pareto::ParetoFront;

/// Re-evaluates a search outcome's Pareto frontier with partitioning
/// enabled (`evaluator` must have the `WithinOptimization` policy), i.e.
/// builds "the new Traditional frontier" of Fig 6.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn partition_frontier(
    evaluator: &LensEvaluator,
    outcome: &SearchOutcome,
) -> Result<Vec<CandidateEvaluation>, LensError> {
    let mut out = Vec::new();
    for candidate in outcome.pareto_candidates() {
        out.push(evaluator.evaluate(&candidate.encoding)?);
    }
    Ok(out)
}

/// Builds a [`ParetoFront`] over re-evaluated candidates (indices into the
/// input slice).
pub fn front_of(evaluations: &[CandidateEvaluation]) -> ParetoFront<usize> {
    evaluations
        .iter()
        .enumerate()
        .map(|(i, c)| (i, c.objectives.to_vec()))
        .collect()
}

/// 2-D front (objective indices as in
/// [`SearchOutcome::front_2d`](crate::search::SearchOutcome::front_2d)).
pub fn front_of_2d(
    evaluations: &[CandidateEvaluation],
    objective_a: usize,
    objective_b: usize,
) -> ParetoFront<usize> {
    evaluations
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let v = c.objectives.to_vec();
            (i, vec![v[objective_a], v[objective_b]])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lens;
    use lens_nn::units::Mbps;
    use lens_wireless::WirelessTechnology;

    fn lens() -> Lens {
        Lens::builder()
            .technology(WirelessTechnology::Wifi)
            .expected_throughput(Mbps::new(3.0))
            .iterations(6)
            .initial_samples(6)
            .seed(11)
            .use_predictor(false)
            .build()
            .unwrap()
    }

    #[test]
    fn partitioning_never_hurts_the_frontier() {
        let l = lens();
        let traditional = l.traditional_search().unwrap();
        let partitioned = l.partition_frontier(&traditional).unwrap();
        let members = traditional.pareto_candidates();
        assert_eq!(partitioned.len(), members.len());
        for (before, after) in members.iter().zip(&partitioned) {
            assert_eq!(before.encoding, after.encoding);
            assert_eq!(before.objectives.error_pct, after.objectives.error_pct);
            assert!(after.objectives.latency_ms <= before.objectives.latency_ms + 1e-9);
            assert!(after.objectives.energy_mj <= before.objectives.energy_mj + 1e-9);
        }
    }

    #[test]
    fn fronts_over_reevaluations_are_antichains() {
        let l = lens();
        let traditional = l.traditional_search().unwrap();
        let partitioned = l.partition_frontier(&traditional).unwrap();
        assert!(front_of(&partitioned).is_antichain());
        assert!(front_of_2d(&partitioned, 0, 2).is_antichain());
    }
}
