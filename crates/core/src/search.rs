//! Algorithm 2: the MOBO-based NAS loop.
//!
//! Random initialization (`C_init` samples), then `N_iter` iterations of:
//! sample posterior surrogates, build the scalarized acquisition, pick the
//! maximizer over a candidate pool, evaluate, update the data set and the
//! Pareto frontier. The candidate pool mixes uniform random samples with
//! mutations of the incumbent Pareto set, so the acquisition optimizer can
//! both explore and refine.

use crate::evaluate::{CandidateEvaluation, LensEvaluator, Objectives};
use crate::LensError;
use lens_gp::{MoboConfig, MultiObjectiveOptimizer};
use lens_pareto::ParetoFront;
use lens_runtime::DeploymentKind;
use lens_space::Encoding;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Configuration of one search run (the paper's `{C_init, N_iter}` plus
/// pool sizes and the MOBO settings).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Random initial samples (`C_init`).
    pub initial_samples: usize,
    /// MOBO iterations (`N_iter`; the paper runs 300).
    pub iterations: usize,
    /// Uniform random candidates per acquisition optimization.
    pub pool_random: usize,
    /// Mutation candidates derived from the incumbent Pareto set.
    pub pool_mutations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Surrogate/acquisition settings.
    pub mobo: MoboConfig,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            initial_samples: 20,
            iterations: 300,
            pool_random: 128,
            pool_mutations: 64,
            seed: 0,
            mobo: MoboConfig::default(),
        }
    }
}

/// One explored candidate, in exploration order.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploredCandidate {
    /// 0-based exploration index (initial samples first).
    pub index: usize,
    /// The genotype.
    pub encoding: Encoding,
    /// Objective values.
    pub objectives: Objectives,
    /// Best deployment option for latency.
    pub best_latency_option: DeploymentKind,
    /// Best deployment option for energy.
    pub best_energy_option: DeploymentKind,
}

/// The result of a search run: the full exploration history and the final
/// Pareto set `X*`.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    explored: Vec<ExploredCandidate>,
}

impl SearchOutcome {
    /// Every explored candidate in order.
    pub fn explored(&self) -> &[ExploredCandidate] {
        &self.explored
    }

    /// The Pareto frontier over all explored candidates, keyed by
    /// exploration index.
    pub fn pareto_front(&self) -> ParetoFront<usize> {
        self.explored
            .iter()
            .map(|c| (c.index, c.objectives.to_vec()))
            .collect()
    }

    /// The frontier's members as full candidates.
    pub fn pareto_candidates(&self) -> Vec<&ExploredCandidate> {
        let front = self.pareto_front();
        let mut out: Vec<&ExploredCandidate> =
            front.items().iter().map(|&&i| &self.explored[i]).collect();
        out.sort_by_key(|c| c.index);
        out
    }

    /// 2-D projection of the frontier onto `(objective_a, objective_b)`
    /// (0 = error, 1 = latency, 2 = energy), re-filtered for dominance in
    /// that plane — what Fig 6 plots (energy ↔ error).
    pub fn front_2d(&self, objective_a: usize, objective_b: usize) -> ParetoFront<usize> {
        self.explored
            .iter()
            .map(|c| {
                let v = c.objectives.to_vec();
                (c.index, vec![v[objective_a], v[objective_b]])
            })
            .collect()
    }

    /// How many explored candidates satisfy an arbitrary predicate.
    pub fn count_where<F: Fn(&Objectives) -> bool>(&self, pred: F) -> usize {
        self.explored.iter().filter(|c| pred(&c.objectives)).count()
    }
}

/// Runs Algorithm 2 with the given evaluator (LENS or Traditional —
/// the only difference is the evaluator's partition policy).
pub(crate) fn run_search(
    evaluator: &LensEvaluator,
    config: &SearchConfig,
) -> Result<SearchOutcome, LensError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let space = evaluator.space();
    let mut optimizer = MultiObjectiveOptimizer::new(Objectives::COUNT, config.mobo.clone());
    let mut explored: Vec<ExploredCandidate> = Vec::new();
    let mut seen: BTreeSet<Encoding> = BTreeSet::new();
    let mut front: ParetoFront<usize> = ParetoFront::new();

    let record = |enc: Encoding,
                  evaluation: CandidateEvaluation,
                  explored: &mut Vec<ExploredCandidate>,
                  front: &mut ParetoFront<usize>,
                  optimizer: &mut MultiObjectiveOptimizer|
     -> Result<(), LensError> {
        let index = explored.len();
        optimizer.tell(space.to_unit_vec(&enc), evaluation.objectives.to_vec())?;
        front.insert(index, evaluation.objectives.to_vec());
        explored.push(ExploredCandidate {
            index,
            encoding: enc,
            objectives: evaluation.objectives,
            best_latency_option: evaluation.perf.best_latency_option,
            best_energy_option: evaluation.perf.best_energy_option,
        });
        Ok(())
    };

    // Lines 2-6: random initialization.
    for _ in 0..config.initial_samples {
        let enc = sample_unseen(space.as_ref(), &mut seen, &mut rng);
        let evaluation = evaluator.evaluate(&enc)?;
        record(enc, evaluation, &mut explored, &mut front, &mut optimizer)?;
    }

    // Lines 7-14: the MOBO loop.
    for _ in 0..config.iterations {
        let mut pool: Vec<Encoding> =
            Vec::with_capacity(config.pool_random + config.pool_mutations);
        let mut pool_seen: BTreeSet<Encoding> = BTreeSet::new();
        for _ in 0..config.pool_random {
            let enc = space.sample(&mut rng);
            if !seen.contains(&enc) && pool_seen.insert(enc.clone()) {
                pool.push(enc);
            }
        }
        // Mutations of the incumbent Pareto set.
        let front_items: Vec<usize> = front.items().iter().map(|&&i| i).collect();
        if !front_items.is_empty() {
            let mut m = 0;
            let mut attempts = 0;
            while m < config.pool_mutations && attempts < config.pool_mutations * 4 {
                attempts += 1;
                let pick = front_items[attempts % front_items.len()];
                let enc = space.mutate(&explored[pick].encoding, &mut rng);
                if !seen.contains(&enc) && pool_seen.insert(enc.clone()) {
                    pool.push(enc);
                    m += 1;
                }
            }
        }
        if pool.is_empty() {
            pool.push(sample_unseen(space.as_ref(), &mut seen, &mut rng));
        }

        let embedded: Vec<Vec<f64>> = pool.iter().map(|e| space.to_unit_vec(e)).collect();
        let pick = optimizer.suggest(&embedded, &mut rng)?;
        let enc = pool.swap_remove(pick);
        seen.insert(enc.clone());
        let evaluation = evaluator.evaluate(&enc)?;
        record(enc, evaluation, &mut explored, &mut front, &mut optimizer)?;
    }

    Ok(SearchOutcome { explored })
}

/// Samples a not-yet-evaluated encoding (falling back to a duplicate only
/// if the space is pathologically exhausted).
fn sample_unseen(
    space: &(dyn lens_space::SearchSpace + Send + Sync),
    seen: &mut BTreeSet<Encoding>,
    rng: &mut StdRng,
) -> Encoding {
    for _ in 0..64 {
        let enc = space.sample(rng);
        if seen.insert(enc.clone()) {
            return enc;
        }
    }
    space.sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lens;
    use lens_nn::units::Mbps;
    use lens_wireless::WirelessTechnology;

    fn tiny_lens(seed: u64) -> Lens {
        Lens::builder()
            .technology(WirelessTechnology::Wifi)
            .expected_throughput(Mbps::new(3.0))
            .iterations(6)
            .initial_samples(6)
            .seed(seed)
            .use_predictor(false)
            .build()
            .unwrap()
    }

    #[test]
    fn search_explores_requested_budget() {
        let outcome = tiny_lens(1).search().unwrap();
        assert_eq!(outcome.explored().len(), 12);
        assert!(!outcome.pareto_front().is_empty());
        assert!(outcome.pareto_front().is_antichain());
    }

    #[test]
    fn search_is_reproducible() {
        let a = tiny_lens(5).search().unwrap();
        let b = tiny_lens(5).search().unwrap();
        assert_eq!(a, b);
        let c = tiny_lens(6).search().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn explored_encodings_are_unique() {
        let outcome = tiny_lens(2).search().unwrap();
        let mut set = BTreeSet::new();
        for c in outcome.explored() {
            assert!(set.insert(c.encoding.clone()), "duplicate exploration");
        }
    }

    #[test]
    fn front_2d_projects_consistently() {
        let outcome = tiny_lens(3).search().unwrap();
        let f2 = outcome.front_2d(0, 2);
        assert!(!f2.is_empty());
        assert!(f2.is_antichain());
        // Projection can only keep or grow frontier membership count-wise
        // relative to... (no strict relation), but all members must come
        // from explored indices.
        for (&idx, _) in f2.iter() {
            assert!(idx < outcome.explored().len());
        }
    }

    #[test]
    fn count_where_counts() {
        let outcome = tiny_lens(4).search().unwrap();
        let all = outcome.count_where(|_| true);
        assert_eq!(all, outcome.explored().len());
        let none = outcome.count_where(|o| o.error_pct < 0.0);
        assert_eq!(none, 0);
    }
}
