//! Hypervolume indicator (minimization, w.r.t. a reference point).
//!
//! Used by the search-quality ablations: a larger dominated hypervolume
//! means a better frontier. 2-D uses the classic sweep; higher dimensions
//! use the WFG-style recursive slicing, which is fine for the frontier
//! sizes a 300-iteration search produces.

/// Computes the hypervolume dominated by `points` (minimization) relative to
/// `reference`. Points not strictly dominating the reference contribute
/// nothing.
///
/// # Panics
///
/// Panics if dimensionalities disagree or `reference` is empty.
pub fn hypervolume(points: &[&[f64]], reference: &[f64]) -> f64 {
    assert!(!reference.is_empty(), "reference point must be non-empty");
    for p in points {
        assert_eq!(
            p.len(),
            reference.len(),
            "point dimensionality must match reference"
        );
    }
    // Keep only points that strictly dominate the reference box corner.
    let pts: Vec<Vec<f64>> = points
        .iter()
        .filter(|p| p.iter().zip(reference).all(|(x, r)| x < r))
        .map(|p| p.to_vec())
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    match reference.len() {
        1 => {
            let best = pts.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
            reference[0] - best
        }
        2 => hv2d(&pts, reference),
        3 => hv3d(&pts, reference),
        _ => hv_recursive(&pts, reference),
    }
}

/// Classic 2-D sweep: sort by first objective, accumulate rectangles.
fn hv2d(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut pts = points.to_vec();
    pts.sort_by(|a, b| a[0].partial_cmp(&b[0]).expect("finite objectives"));
    let mut volume = 0.0;
    let mut prev_y = reference[1];
    for p in &pts {
        if p[1] < prev_y {
            volume += (reference[0] - p[0]) * (prev_y - p[1]);
            prev_y = p[1];
        }
    }
    volume
}

/// 3-D sweep: sort by the z objective ascending and integrate the 2-D
/// staircase area over z slabs, updating the staircase *incrementally* per
/// point instead of rescanning and re-sorting the active set per slice.
/// `O(n log n)` for the sort plus amortized near-linear staircase updates —
/// this replaced the recursive slicing for the `pareto/hypervolume_3d`
/// bench (~276 ms → sub-ms on the 2000-point front).
fn hv3d(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut pts: Vec<(f64, f64, f64)> = points.iter().map(|p| (p[0], p[1], p[2])).collect();
    pts.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite objectives"));

    // The 2-D staircase of points seen so far: x strictly ascending, y
    // strictly descending (only mutually non-dominated (x, y) pairs kept).
    let mut stair: Vec<(f64, f64)> = Vec::with_capacity(pts.len());
    let mut area = 0.0;
    let mut volume = 0.0;
    let mut prev_z = pts[0].2;
    for &(x, y, z) in &pts {
        volume += area * (z - prev_z);
        prev_z = z;
        area += staircase_insert(&mut stair, x, y, reference[0], reference[1]);
    }
    volume + area * (reference[2] - prev_z)
}

/// Inserts `(x, y)` into the 2-D staircase and returns the dominated-area
/// gain w.r.t. `(ref_x, ref_y)` (0 if the point is already dominated).
fn staircase_insert(stair: &mut Vec<(f64, f64)>, x: f64, y: f64, ref_x: f64, ref_y: f64) -> f64 {
    // First staircase index with x-coordinate >= x.
    let i = stair.partition_point(|&(sx, _)| sx < x);
    // The envelope height just left of x.
    let ceiling = if i > 0 { stair[i - 1].1 } else { ref_y };
    if ceiling <= y || (i < stair.len() && stair[i].0 == x && stair[i].1 <= y) {
        return 0.0; // dominated by an existing point
    }
    // Sweep right over the points the new one dominates, accumulating the
    // area between the old envelope and the new height `y`.
    let mut gain = 0.0;
    let mut cur_x = x;
    let mut height = ceiling;
    let mut j = i;
    while j < stair.len() && stair[j].1 >= y {
        gain += (stair[j].0 - cur_x) * (height - y);
        (cur_x, height) = stair[j];
        j += 1;
    }
    let end = if j < stair.len() { stair[j].0 } else { ref_x };
    gain += (end - cur_x) * (height - y);
    stair.splice(i..j, [(x, y)]);
    gain
}

/// WFG-style inclusion–exclusion by slicing on the last objective.
fn hv_recursive(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let dim = reference.len();
    // Collect slice boundaries on the last axis.
    let mut cuts: Vec<f64> = points.iter().map(|p| p[dim - 1]).collect();
    cuts.push(reference[dim - 1]);
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite objectives"));
    cuts.dedup();
    let mut volume = 0.0;
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi <= lo {
            continue;
        }
        // Points active in this slice (their last coord is <= lo).
        let active: Vec<Vec<f64>> = points
            .iter()
            .filter(|p| p[dim - 1] <= lo)
            .map(|p| p[..dim - 1].to_vec())
            .collect();
        if active.is_empty() {
            continue;
        }
        let active_refs: Vec<&[f64]> = active.iter().map(|p| p.as_slice()).collect();
        let base = hypervolume(&active_refs, &reference[..dim - 1]);
        volume += base * (hi - lo);
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_point_2d() {
        let hv = hypervolume(&[&[1.0, 1.0]], &[2.0, 2.0]);
        assert!((hv - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_staircase_points() {
        // Rectangles: (0.5..2)x(1.5..2)=0.75 plus (1..2)x(1..1.5)... compute:
        // sorted by x: (0.5,1.5): (2-0.5)*(2-1.5)=0.75; (1.0,1.0): (2-1)*(1.5-1)=0.5.
        let hv = hypervolume(&[&[0.5, 1.5], &[1.0, 1.0]], &[2.0, 2.0]);
        assert!((hv - 1.25).abs() < 1e-12);
    }

    #[test]
    fn dominated_point_adds_nothing() {
        let base = hypervolume(&[&[1.0, 1.0]], &[3.0, 3.0]);
        let extra = hypervolume(&[&[1.0, 1.0], &[2.0, 2.0]], &[3.0, 3.0]);
        assert!((base - extra).abs() < 1e-12);
    }

    #[test]
    fn point_outside_reference_ignored() {
        assert_eq!(hypervolume(&[&[5.0, 1.0]], &[2.0, 2.0]), 0.0);
        assert_eq!(hypervolume(&[], &[2.0, 2.0]), 0.0);
    }

    #[test]
    fn one_dimensional() {
        assert!((hypervolume(&[&[1.0], &[3.0]], &[4.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn three_dimensional_box() {
        // One point at (1,1,1) vs reference (2,3,4): volume 1*2*3 = 6.
        let hv = hypervolume(&[&[1.0, 1.0, 1.0]], &[2.0, 3.0, 4.0]);
        assert!((hv - 6.0).abs() < 1e-9);
    }

    #[test]
    fn three_dimensional_union() {
        // Two unit-ish boxes overlapping: inclusion-exclusion check.
        // p1=(0,0,1), p2=(1,1,0), ref=(2,2,2).
        // vol(p1)=2*2*1=4; vol(p2)=1*1*2=2; overlap box corner max(p1,p2)=(1,1,1): 1*1*1=1.
        // union = 4+2-1 = 5.
        let hv = hypervolume(&[&[0.0, 0.0, 1.0], &[1.0, 1.0, 0.0]], &[2.0, 2.0, 2.0]);
        assert!((hv - 5.0).abs() < 1e-9, "hv {hv}");
    }

    proptest! {
        /// Monotonicity: adding a point never decreases hypervolume, and 2-D
        /// volume is bounded by the reference box.
        #[test]
        fn prop_hv_monotone(points in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 2), 1..15)) {
            let reference = [1.0, 1.0];
            let all: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
            let hv_all = hypervolume(&all, &reference);
            prop_assert!(hv_all <= 1.0 + 1e-9);
            let fewer: Vec<&[f64]> = all[..all.len() - 1].to_vec();
            let hv_fewer = hypervolume(&fewer, &reference);
            prop_assert!(hv_all + 1e-9 >= hv_fewer);
        }

        /// 3-D hypervolume of one point equals its box volume.
        #[test]
        fn prop_hv3d_single_box(p in proptest::collection::vec(0.0f64..0.9, 3)) {
            let reference = [1.0, 1.0, 1.0];
            let expected: f64 = p.iter().map(|x| 1.0 - x).product();
            let hv = hypervolume(&[p.as_slice()], &reference);
            prop_assert!((hv - expected).abs() < 1e-9);
        }

        /// The z-sorted sweep agrees with the WFG-style recursive slicer
        /// on arbitrary 3-D point sets (including dominated duplicates).
        #[test]
        fn prop_hv3d_sweep_matches_recursive(points in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 3), 1..40)) {
            let reference = [1.0, 1.0, 1.0];
            let sweep = hv3d(&points, &reference);
            let sliced = hv_recursive(&points, &reference);
            prop_assert!((sweep - sliced).abs() < 1e-9, "sweep {sweep} vs sliced {sliced}");
        }
    }

    #[test]
    fn sweep_handles_ties_and_duplicates() {
        // Duplicate points, shared coordinates, and z-ties must not
        // double-count.
        let pts: Vec<Vec<f64>> = vec![
            vec![0.2, 0.8, 0.5],
            vec![0.2, 0.8, 0.5], // exact duplicate
            vec![0.2, 0.3, 0.5], // same x, better y, same z
            vec![0.8, 0.2, 0.1],
            vec![0.5, 0.5, 0.5],
        ];
        let reference = [1.0, 1.0, 1.0];
        let sweep = hv3d(&pts, &reference);
        let sliced = hv_recursive(&pts, &reference);
        assert!((sweep - sliced).abs() < 1e-12, "{sweep} vs {sliced}");
    }

    #[test]
    fn staircase_insert_counts_exact_gains() {
        let mut stair = Vec::new();
        // First point: full rectangle to the reference corner.
        let g = staircase_insert(&mut stair, 0.5, 0.5, 1.0, 1.0);
        assert!((g - 0.25).abs() < 1e-12);
        // Dominated point adds nothing and leaves the staircase intact.
        let g = staircase_insert(&mut stair, 0.6, 0.6, 1.0, 1.0);
        assert_eq!(g, 0.0);
        assert_eq!(stair.len(), 1);
        // A point dominating the first absorbs it.
        let g = staircase_insert(&mut stair, 0.25, 0.25, 1.0, 1.0);
        assert!((g - (0.75 * 0.75 - 0.25)).abs() < 1e-12);
        assert_eq!(stair, vec![(0.25, 0.25)]);
    }
}
