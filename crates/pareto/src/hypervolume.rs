//! Hypervolume indicator (minimization, w.r.t. a reference point).
//!
//! Used by the search-quality ablations: a larger dominated hypervolume
//! means a better frontier. 2-D uses the classic sweep; higher dimensions
//! use the WFG-style recursive slicing, which is fine for the frontier
//! sizes a 300-iteration search produces.

/// Computes the hypervolume dominated by `points` (minimization) relative to
/// `reference`. Points not strictly dominating the reference contribute
/// nothing.
///
/// # Panics
///
/// Panics if dimensionalities disagree or `reference` is empty.
pub fn hypervolume(points: &[&[f64]], reference: &[f64]) -> f64 {
    assert!(!reference.is_empty(), "reference point must be non-empty");
    for p in points {
        assert_eq!(
            p.len(),
            reference.len(),
            "point dimensionality must match reference"
        );
    }
    // Keep only points that strictly dominate the reference box corner.
    let pts: Vec<Vec<f64>> = points
        .iter()
        .filter(|p| p.iter().zip(reference).all(|(x, r)| x < r))
        .map(|p| p.to_vec())
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    match reference.len() {
        1 => {
            let best = pts.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
            reference[0] - best
        }
        2 => hv2d(&pts, reference),
        _ => hv_recursive(&pts, reference),
    }
}

/// Classic 2-D sweep: sort by first objective, accumulate rectangles.
fn hv2d(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut pts = points.to_vec();
    pts.sort_by(|a, b| a[0].partial_cmp(&b[0]).expect("finite objectives"));
    let mut volume = 0.0;
    let mut prev_y = reference[1];
    for p in &pts {
        if p[1] < prev_y {
            volume += (reference[0] - p[0]) * (prev_y - p[1]);
            prev_y = p[1];
        }
    }
    volume
}

/// WFG-style inclusion–exclusion by slicing on the last objective.
fn hv_recursive(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let dim = reference.len();
    // Collect slice boundaries on the last axis.
    let mut cuts: Vec<f64> = points.iter().map(|p| p[dim - 1]).collect();
    cuts.push(reference[dim - 1]);
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite objectives"));
    cuts.dedup();
    let mut volume = 0.0;
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi <= lo {
            continue;
        }
        // Points active in this slice (their last coord is <= lo).
        let active: Vec<Vec<f64>> = points
            .iter()
            .filter(|p| p[dim - 1] <= lo)
            .map(|p| p[..dim - 1].to_vec())
            .collect();
        if active.is_empty() {
            continue;
        }
        let active_refs: Vec<&[f64]> = active.iter().map(|p| p.as_slice()).collect();
        let base = hypervolume(&active_refs, &reference[..dim - 1]);
        volume += base * (hi - lo);
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_point_2d() {
        let hv = hypervolume(&[&[1.0, 1.0]], &[2.0, 2.0]);
        assert!((hv - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_staircase_points() {
        // Rectangles: (0.5..2)x(1.5..2)=0.75 plus (1..2)x(1..1.5)... compute:
        // sorted by x: (0.5,1.5): (2-0.5)*(2-1.5)=0.75; (1.0,1.0): (2-1)*(1.5-1)=0.5.
        let hv = hypervolume(&[&[0.5, 1.5], &[1.0, 1.0]], &[2.0, 2.0]);
        assert!((hv - 1.25).abs() < 1e-12);
    }

    #[test]
    fn dominated_point_adds_nothing() {
        let base = hypervolume(&[&[1.0, 1.0]], &[3.0, 3.0]);
        let extra = hypervolume(&[&[1.0, 1.0], &[2.0, 2.0]], &[3.0, 3.0]);
        assert!((base - extra).abs() < 1e-12);
    }

    #[test]
    fn point_outside_reference_ignored() {
        assert_eq!(hypervolume(&[&[5.0, 1.0]], &[2.0, 2.0]), 0.0);
        assert_eq!(hypervolume(&[], &[2.0, 2.0]), 0.0);
    }

    #[test]
    fn one_dimensional() {
        assert!((hypervolume(&[&[1.0], &[3.0]], &[4.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn three_dimensional_box() {
        // One point at (1,1,1) vs reference (2,3,4): volume 1*2*3 = 6.
        let hv = hypervolume(&[&[1.0, 1.0, 1.0]], &[2.0, 3.0, 4.0]);
        assert!((hv - 6.0).abs() < 1e-9);
    }

    #[test]
    fn three_dimensional_union() {
        // Two unit-ish boxes overlapping: inclusion-exclusion check.
        // p1=(0,0,1), p2=(1,1,0), ref=(2,2,2).
        // vol(p1)=2*2*1=4; vol(p2)=1*1*2=2; overlap box corner max(p1,p2)=(1,1,1): 1*1*1=1.
        // union = 4+2-1 = 5.
        let hv = hypervolume(&[&[0.0, 0.0, 1.0], &[1.0, 1.0, 0.0]], &[2.0, 2.0, 2.0]);
        assert!((hv - 5.0).abs() < 1e-9, "hv {hv}");
    }

    proptest! {
        /// Monotonicity: adding a point never decreases hypervolume, and 2-D
        /// volume is bounded by the reference box.
        #[test]
        fn prop_hv_monotone(points in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 2), 1..15)) {
            let reference = [1.0, 1.0];
            let all: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
            let hv_all = hypervolume(&all, &reference);
            prop_assert!(hv_all <= 1.0 + 1e-9);
            let fewer: Vec<&[f64]> = all[..all.len() - 1].to_vec();
            let hv_fewer = hypervolume(&fewer, &reference);
            prop_assert!(hv_all + 1e-9 >= hv_fewer);
        }

        /// 3-D hypervolume of one point equals its box volume.
        #[test]
        fn prop_hv3d_single_box(p in proptest::collection::vec(0.0f64..0.9, 3)) {
            let reference = [1.0, 1.0, 1.0];
            let expected: f64 = p.iter().map(|x| 1.0 - x).product();
            let hv = hypervolume(&[p.as_slice()], &reference);
            prop_assert!((hv - expected).abs() < 1e-9);
        }
    }
}
