//! Pareto-dominance machinery for multi-objective optimization.
//!
//! The paper's §III.B definition: a solution `x*` is Pareto optimal when
//! `f_k(x*) ≤ f_k(x)` for all objectives `k` and all `x`, with strict
//! inequality for at least one objective against every other `x`. All
//! objectives are *minimized*.
//!
//! Besides the frontier container used inside the search loop
//! (`Pareto_update` in Algorithm 2), this crate computes the evaluation
//! metrics of §V.A: the fraction of one frontier dominated by another and
//! the composition of a combined frontier — the paper's "LENS dominates
//! 60 % of the partitioned Traditional frontier" and "a combined frontier is
//! 76.47 % formed by LENS's models" numbers — plus hypervolume indicators.
//!
//! # Examples
//!
//! ```
//! use lens_pareto::{dominates, ParetoFront};
//!
//! let mut front = ParetoFront::new();
//! front.insert("a", vec![1.0, 4.0]);
//! front.insert("b", vec![2.0, 3.0]);
//! front.insert("c", vec![1.5, 5.0]); // dominated by "a"
//! assert_eq!(front.len(), 2);
//! assert!(dominates(&[1.0, 4.0], &[1.5, 5.0]));
//! ```

#![forbid(unsafe_code)]

pub mod coverage;
pub mod front;
pub mod hypervolume;

pub use coverage::{combined_composition, coverage, CombinedComposition};
pub use front::{InsertOutcome, ParetoFront};
pub use hypervolume::hypervolume;

/// `true` if `a` Pareto-dominates `b` (minimization): `a` is no worse in
/// every objective and strictly better in at least one.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must have equal length");
    assert!(!a.is_empty(), "objective vectors must be non-empty");
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// `true` if the two objective vectors are mutually non-dominating (neither
/// dominates the other, including the equal case).
pub fn incomparable(a: &[f64], b: &[f64]) -> bool {
    !dominates(a, b) && !dominates(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dominance_basic_cases() {
        assert!(dominates(&[1.0, 2.0], &[2.0, 3.0]));
        assert!(dominates(&[1.0, 3.0], &[2.0, 3.0]));
        assert!(!dominates(&[1.0, 4.0], &[2.0, 3.0]));
        assert!(!dominates(&[2.0, 3.0], &[2.0, 3.0])); // equal: not strict
        assert!(!dominates(&[3.0, 2.0], &[2.0, 3.0]));
    }

    #[test]
    fn incomparable_cases() {
        assert!(incomparable(&[1.0, 4.0], &[2.0, 3.0]));
        assert!(incomparable(&[2.0, 3.0], &[2.0, 3.0]));
        assert!(!incomparable(&[1.0, 2.0], &[2.0, 3.0]));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        dominates(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        /// Dominance is irreflexive, asymmetric, and transitive.
        #[test]
        fn prop_dominance_partial_order(
            a in proptest::collection::vec(0.0f64..10.0, 3),
            b in proptest::collection::vec(0.0f64..10.0, 3),
            c in proptest::collection::vec(0.0f64..10.0, 3),
        ) {
            prop_assert!(!dominates(&a, &a));
            if dominates(&a, &b) {
                prop_assert!(!dominates(&b, &a));
            }
            if dominates(&a, &b) && dominates(&b, &c) {
                prop_assert!(dominates(&a, &c));
            }
        }
    }
}
