//! Frontier-comparison metrics — the quantities §V.A reports.
//!
//! * [`coverage`] — the fraction of frontier B dominated by frontier A
//!   (Zitzler's C-metric): "LENS's frontier dominates 60 % of the new
//!   Traditional's frontier".
//! * [`combined_composition`] — merge two frontiers and report what share of
//!   the merged frontier came from each: "a combined frontier ... would
//!   constitute 76.47 % candidates from LENS's optimal set".

use crate::dominates;
use crate::front::ParetoFront;

/// Fraction of points in `b` that are dominated by at least one point of
/// `a` (the C-metric `C(a, b)`). Returns 0 when `b` is empty.
pub fn coverage(a: &[&[f64]], b: &[&[f64]]) -> f64 {
    if b.is_empty() {
        return 0.0;
    }
    let dominated = b
        .iter()
        .filter(|p| a.iter().any(|q| dominates(q, p)))
        .count();
    dominated as f64 / b.len() as f64
}

/// Composition of the combined (merged, re-filtered) frontier of two sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CombinedComposition {
    /// Members of the combined frontier that came from set A.
    pub from_a: usize,
    /// Members of the combined frontier that came from set B.
    pub from_b: usize,
}

impl CombinedComposition {
    /// Total size of the combined frontier.
    pub fn total(&self) -> usize {
        self.from_a + self.from_b
    }

    /// Share of the combined frontier contributed by A, in percent.
    pub fn percent_from_a(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        100.0 * self.from_a as f64 / self.total() as f64
    }

    /// Share of the combined frontier contributed by B, in percent.
    pub fn percent_from_b(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        100.0 - self.percent_from_a()
    }
}

/// Merges two frontiers and reports how many survivors each contributed.
/// Points surviving from both sets with identical objectives are credited
/// to A (ties are rare and the paper does not specify a rule).
pub fn combined_composition(a: &[&[f64]], b: &[&[f64]]) -> CombinedComposition {
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Source {
        A,
        B,
    }
    let mut front: ParetoFront<Source> = ParetoFront::new();
    for p in a {
        front.insert(Source::A, p.to_vec());
    }
    for p in b {
        front.insert(Source::B, p.to_vec());
    }
    let from_a = front.items().iter().filter(|s| ***s == Source::A).count();
    let from_b = front.len() - from_a;
    CombinedComposition { from_a, from_b }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn refs(v: &[Vec<f64>]) -> Vec<&[f64]> {
        v.iter().map(|x| x.as_slice()).collect()
    }

    #[test]
    fn coverage_basic() {
        let a = vec![vec![1.0, 1.0]];
        let b = vec![vec![2.0, 2.0], vec![0.5, 0.5], vec![3.0, 0.9]];
        // a dominates b[0] only (b[1] dominates a; b[2] incomparable).
        let c = coverage(&refs(&a), &refs(&b));
        assert!((c - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(coverage(&refs(&a), &[]), 0.0);
        assert_eq!(coverage(&[], &refs(&b)), 0.0);
    }

    #[test]
    fn composition_disjoint_frontiers() {
        // A strictly better everywhere: combined frontier is 100% A.
        let a = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let b = vec![vec![3.0, 4.0], vec![4.0, 3.0]];
        let comp = combined_composition(&refs(&a), &refs(&b));
        assert_eq!(comp.from_a, 2);
        assert_eq!(comp.from_b, 0);
        assert_eq!(comp.percent_from_a(), 100.0);
    }

    #[test]
    fn composition_interleaved() {
        let a = vec![vec![1.0, 9.0], vec![5.0, 5.0]];
        let b = vec![vec![9.0, 1.0], vec![4.0, 6.0]];
        let comp = combined_composition(&refs(&a), &refs(&b));
        assert_eq!(comp.total(), 4); // all mutually incomparable
        assert_eq!(comp.from_a, 2);
        assert!((comp.percent_from_a() - 50.0).abs() < 1e-12);
        assert!((comp.percent_from_b() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn composition_ties_credit_a() {
        let a = vec![vec![1.0, 1.0]];
        let b = vec![vec![1.0, 1.0]];
        let comp = combined_composition(&refs(&a), &refs(&b));
        assert_eq!(comp.from_a, 1);
        assert_eq!(comp.from_b, 0);
    }

    #[test]
    fn empty_composition() {
        let comp = combined_composition(&[], &[]);
        assert_eq!(comp.total(), 0);
        assert_eq!(comp.percent_from_a(), 0.0);
    }

    proptest! {
        /// Coverage is within [0,1]; a frontier never covers itself (no
        /// member dominates another member).
        #[test]
        fn prop_coverage_bounds(points in proptest::collection::vec(
            proptest::collection::vec(0.0f64..50.0, 2), 1..40)) {
            let front: ParetoFront<usize> = points.iter().cloned().enumerate().collect();
            let objs = front.objectives();
            let self_cov = coverage(&objs, &objs);
            prop_assert_eq!(self_cov, 0.0);
        }

        /// Combined composition counts only antichain survivors and
        /// percentages always sum to 100 for non-empty results.
        #[test]
        fn prop_composition_sums(
            a_pts in proptest::collection::vec(proptest::collection::vec(0.0f64..50.0, 2), 1..20),
            b_pts in proptest::collection::vec(proptest::collection::vec(0.0f64..50.0, 2), 1..20),
        ) {
            let fa: ParetoFront<usize> = a_pts.iter().cloned().enumerate().collect();
            let fb: ParetoFront<usize> = b_pts.iter().cloned().enumerate().collect();
            let comp = combined_composition(&fa.objectives(), &fb.objectives());
            prop_assert!(comp.total() >= 1);
            prop_assert!((comp.percent_from_a() + comp.percent_from_b() - 100.0).abs() < 1e-9);
            prop_assert!(comp.total() <= fa.len() + fb.len());
        }
    }
}
