//! An incrementally maintained Pareto frontier.

use crate::dominates;
use std::fmt;

/// Result of offering a point to a [`ParetoFront`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The point joined the frontier, evicting `evicted` dominated members.
    Inserted {
        /// How many previous members the new point dominated.
        evicted: usize,
    },
    /// The point is dominated by (or duplicates) an existing member.
    Rejected,
}

impl InsertOutcome {
    /// `true` if the point was added.
    pub fn is_inserted(&self) -> bool {
        matches!(self, InsertOutcome::Inserted { .. })
    }
}

/// A Pareto frontier of items tagged with their objective vectors
/// (minimization). Maintains the antichain invariant: no member dominates
/// another.
///
/// This is the `X*` of Algorithm 2, updated by `Pareto_update` each
/// iteration.
///
/// # Examples
///
/// ```
/// use lens_pareto::ParetoFront;
///
/// let mut front: ParetoFront<&str> = ParetoFront::new();
/// assert!(front.insert("slow-accurate", vec![10.0, 1.0]).is_inserted());
/// assert!(front.insert("fast-sloppy", vec![1.0, 10.0]).is_inserted());
/// assert!(!front.insert("bad", vec![11.0, 2.0]).is_inserted());
/// assert_eq!(front.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoFront<T> {
    members: Vec<(T, Vec<f64>)>,
}

impl<T> ParetoFront<T> {
    /// Creates an empty frontier.
    pub fn new() -> Self {
        ParetoFront {
            members: Vec::new(),
        }
    }

    /// Number of frontier members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the frontier has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterates over `(item, objectives)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&T, &[f64])> {
        self.members.iter().map(|(t, o)| (t, o.as_slice()))
    }

    /// The objective vectors of all members.
    pub fn objectives(&self) -> Vec<&[f64]> {
        self.members.iter().map(|(_, o)| o.as_slice()).collect()
    }

    /// The items of all members.
    pub fn items(&self) -> Vec<&T> {
        self.members.iter().map(|(t, _)| t).collect()
    }

    /// Offers a point. It is inserted iff no current member dominates or
    /// equals it; members it dominates are evicted.
    ///
    /// # Panics
    ///
    /// Panics if `objectives` is empty or its length differs from existing
    /// members'.
    pub fn insert(&mut self, item: T, objectives: Vec<f64>) -> InsertOutcome {
        assert!(!objectives.is_empty(), "objective vector must be non-empty");
        if let Some((_, first)) = self.members.first() {
            assert_eq!(
                first.len(),
                objectives.len(),
                "objective dimensionality must be consistent"
            );
        }
        for (_, existing) in &self.members {
            if dominates(existing, &objectives) || existing == &objectives {
                return InsertOutcome::Rejected;
            }
        }
        let before = self.members.len();
        self.members.retain(|(_, o)| !dominates(&objectives, o));
        let evicted = before - self.members.len();
        self.members.push((item, objectives));
        InsertOutcome::Inserted { evicted }
    }

    /// Builds a frontier from a collection of points.
    pub fn from_points<I: IntoIterator<Item = (T, Vec<f64>)>>(points: I) -> Self {
        let mut front = ParetoFront::new();
        for (item, obj) in points {
            front.insert(item, obj);
        }
        front
    }

    /// Verifies the antichain invariant (used by property tests).
    pub fn is_antichain(&self) -> bool {
        for (i, (_, a)) in self.members.iter().enumerate() {
            for (j, (_, b)) in self.members.iter().enumerate() {
                if i != j && dominates(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// Sorts members by the given objective index (ascending) — convenient
    /// for plotting 2-D frontiers.
    ///
    /// # Panics
    ///
    /// Panics if `objective` is out of range for the stored vectors.
    pub fn sorted_by_objective(&self, objective: usize) -> Vec<(&T, &[f64])> {
        let mut v: Vec<(&T, &[f64])> = self.iter().collect();
        v.sort_by(|(_, a), (_, b)| {
            a[objective]
                .partial_cmp(&b[objective])
                .expect("objectives are finite")
        });
        v
    }

    /// Consumes the frontier, returning its members.
    pub fn into_members(self) -> Vec<(T, Vec<f64>)> {
        self.members
    }
}

impl<T> Default for ParetoFront<T> {
    fn default() -> Self {
        ParetoFront::new()
    }
}

impl<T> FromIterator<(T, Vec<f64>)> for ParetoFront<T> {
    fn from_iter<I: IntoIterator<Item = (T, Vec<f64>)>>(iter: I) -> Self {
        ParetoFront::from_points(iter)
    }
}

impl<T: fmt::Display> fmt::Display for ParetoFront<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pareto frontier ({} members):", self.len())?;
        for (item, obj) in self.iter() {
            write!(f, "  {item}: [")?;
            for (i, o) in obj.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{o:.4}")?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_evicts_dominated() {
        let mut f = ParetoFront::new();
        f.insert(1, vec![5.0, 5.0]);
        f.insert(2, vec![6.0, 6.0]); // rejected
        assert_eq!(f.len(), 1);
        let out = f.insert(3, vec![4.0, 4.0]); // dominates member 1
        assert_eq!(out, InsertOutcome::Inserted { evicted: 1 });
        assert_eq!(f.len(), 1);
        assert_eq!(f.items(), vec![&3]);
    }

    #[test]
    fn duplicates_rejected() {
        let mut f = ParetoFront::new();
        assert!(f.insert("a", vec![1.0, 2.0]).is_inserted());
        assert_eq!(f.insert("b", vec![1.0, 2.0]), InsertOutcome::Rejected);
    }

    #[test]
    fn incomparable_points_coexist() {
        let mut f = ParetoFront::new();
        f.insert("a", vec![1.0, 9.0]);
        f.insert("b", vec![9.0, 1.0]);
        f.insert("c", vec![5.0, 5.0]);
        assert_eq!(f.len(), 3);
        assert!(f.is_antichain());
    }

    #[test]
    fn sorted_by_objective_orders() {
        let f: ParetoFront<&str> = [
            ("a", vec![3.0, 1.0]),
            ("b", vec![1.0, 3.0]),
            ("c", vec![2.0, 2.0]),
        ]
        .into_iter()
        .collect();
        let sorted = f.sorted_by_objective(0);
        let names: Vec<&&str> = sorted.iter().map(|(t, _)| *t).collect();
        assert_eq!(names, vec![&"b", &"c", &"a"]);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn inconsistent_dims_panic() {
        let mut f = ParetoFront::new();
        f.insert(1, vec![1.0, 2.0]);
        f.insert(2, vec![1.0]);
    }

    #[test]
    fn display_lists_members() {
        let mut f = ParetoFront::new();
        f.insert("m", vec![1.0, 2.0]);
        let s = format!("{f}");
        assert!(s.contains("1 members") && s.contains("m:"));
    }

    proptest! {
        /// After inserting arbitrary points: the frontier is an antichain,
        /// every offered point is dominated-or-equal by some member or is a
        /// member, and no member is dominated by any offered point.
        #[test]
        fn prop_front_invariants(points in proptest::collection::vec(
            proptest::collection::vec(0.0f64..100.0, 3), 1..60)) {
            let front: ParetoFront<usize> = points
                .iter()
                .cloned()
                .enumerate()
                .collect();
            prop_assert!(front.is_antichain());
            prop_assert!(!front.is_empty());
            for p in &points {
                let covered = front.iter().any(|(_, m)| {
                    m == p.as_slice() || crate::dominates(m, p)
                });
                prop_assert!(covered, "point {:?} neither member nor dominated", p);
            }
            for (_, m) in front.iter() {
                for p in &points {
                    prop_assert!(!crate::dominates(p, m));
                }
            }
        }

        /// Insertion order does not change the frontier's objective set.
        #[test]
        fn prop_order_invariance(points in proptest::collection::vec(
            proptest::collection::vec(0.0f64..20.0, 2), 1..30)) {
            let forward: ParetoFront<usize> = points.iter().cloned().enumerate().collect();
            let backward: ParetoFront<usize> =
                points.iter().cloned().enumerate().rev().collect();
            let mut a: Vec<Vec<f64>> = forward.objectives().iter().map(|o| o.to_vec()).collect();
            let mut b: Vec<Vec<f64>> = backward.objectives().iter().map(|o| o.to_vec()).collect();
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            prop_assert_eq!(a, b);
        }
    }
}
