//! Stationary covariance functions over `[0,1]^d` embeddings.

use lens_num::linalg::squared_distance;
use std::fmt::Debug;

/// A positive-definite covariance function.
pub trait Kernel: Debug + Send + Sync {
    /// Covariance between two points.
    fn eval(&self, a: &[f64], b: &[f64]) -> f64;

    /// Prior variance at a point, `k(x, x)`.
    fn diagonal(&self) -> f64;

    /// Returns a copy of this kernel with a different lengthscale (used by
    /// the ML-II grid search).
    fn with_lengthscale(&self, lengthscale: f64) -> Box<dyn Kernel>;

    /// The current lengthscale.
    fn lengthscale(&self) -> f64;
}

/// The squared-exponential (RBF) kernel
/// `k(a,b) = σ² exp(-‖a-b‖² / (2ℓ²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquaredExponential {
    lengthscale: f64,
    variance: f64,
}

impl SquaredExponential {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `lengthscale` or `variance` is not strictly positive.
    pub fn new(lengthscale: f64, variance: f64) -> Self {
        assert!(lengthscale > 0.0, "lengthscale must be positive");
        assert!(variance > 0.0, "variance must be positive");
        SquaredExponential {
            lengthscale,
            variance,
        }
    }
}

impl Kernel for SquaredExponential {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2 = squared_distance(a, b);
        self.variance * (-d2 / (2.0 * self.lengthscale * self.lengthscale)).exp()
    }

    fn diagonal(&self) -> f64 {
        self.variance
    }

    fn with_lengthscale(&self, lengthscale: f64) -> Box<dyn Kernel> {
        Box::new(SquaredExponential::new(lengthscale, self.variance))
    }

    fn lengthscale(&self) -> f64 {
        self.lengthscale
    }
}

/// The Matérn-5/2 kernel — Dragonfly's default for architecture-like inputs;
/// less smooth than the RBF, which suits the piecewise behaviour of
/// discrete design spaces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matern52 {
    lengthscale: f64,
    variance: f64,
}

impl Matern52 {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `lengthscale` or `variance` is not strictly positive.
    pub fn new(lengthscale: f64, variance: f64) -> Self {
        assert!(lengthscale > 0.0, "lengthscale must be positive");
        assert!(variance > 0.0, "variance must be positive");
        Matern52 {
            lengthscale,
            variance,
        }
    }
}

impl Kernel for Matern52 {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let r = squared_distance(a, b).sqrt() / self.lengthscale;
        let sqrt5_r = 5f64.sqrt() * r;
        self.variance * (1.0 + sqrt5_r + 5.0 * r * r / 3.0) * (-sqrt5_r).exp()
    }

    fn diagonal(&self) -> f64 {
        self.variance
    }

    fn with_lengthscale(&self, lengthscale: f64) -> Box<dyn Kernel> {
        Box::new(Matern52::new(lengthscale, self.variance))
    }

    fn lengthscale(&self) -> f64 {
        self.lengthscale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn kernels_peak_at_zero_distance() {
        let se = SquaredExponential::new(0.5, 2.0);
        let m = Matern52::new(0.5, 2.0);
        let x = [0.3, 0.7];
        assert!((se.eval(&x, &x) - 2.0).abs() < 1e-12);
        assert!((m.eval(&x, &x) - 2.0).abs() < 1e-9);
        assert_eq!(se.diagonal(), 2.0);
        assert_eq!(m.diagonal(), 2.0);
    }

    #[test]
    fn covariance_decays_with_distance() {
        let se = SquaredExponential::new(0.5, 1.0);
        let m = Matern52::new(0.5, 1.0);
        let a = [0.0];
        let near = [0.1];
        let far = [0.9];
        assert!(se.eval(&a, &near) > se.eval(&a, &far));
        assert!(m.eval(&a, &near) > m.eval(&a, &far));
    }

    #[test]
    fn with_lengthscale_replaces() {
        let se = SquaredExponential::new(0.5, 1.0);
        let wider = se.with_lengthscale(2.0);
        assert_eq!(wider.lengthscale(), 2.0);
        // Wider lengthscale -> higher covariance at same distance.
        assert!(wider.eval(&[0.0], &[1.0]) > se.eval(&[0.0], &[1.0]));
    }

    #[test]
    #[should_panic(expected = "lengthscale must be positive")]
    fn zero_lengthscale_panics() {
        Matern52::new(0.0, 1.0);
    }

    proptest! {
        /// Symmetry and boundedness for both kernels.
        #[test]
        fn prop_kernel_symmetric_bounded(
            a in proptest::collection::vec(0.0f64..1.0, 4),
            b in proptest::collection::vec(0.0f64..1.0, 4),
            ls in 0.1f64..3.0,
        ) {
            let se = SquaredExponential::new(ls, 1.5);
            let m = Matern52::new(ls, 1.5);
            prop_assert!((se.eval(&a, &b) - se.eval(&b, &a)).abs() < 1e-12);
            prop_assert!((m.eval(&a, &b) - m.eval(&b, &a)).abs() < 1e-12);
            prop_assert!(se.eval(&a, &b) <= se.diagonal() + 1e-12);
            prop_assert!(m.eval(&a, &b) <= m.diagonal() + 1e-12);
            prop_assert!(se.eval(&a, &b) >= 0.0);
            prop_assert!(m.eval(&a, &b) >= 0.0);
        }
    }
}
