//! The multi-objective Bayesian optimization driver.
//!
//! One GP surrogate per objective; each `suggest` draws a random weight
//! vector on the simplex and scalarizes the per-objective acquisition
//! scores (Dragonfly's MOBO strategy — random scalarizations provably cover
//! the Pareto front as iterations accumulate). The optimizer is *ask/tell*:
//! the caller supplies the candidate pool (Algorithm 2 proposes random
//! samples plus mutations of the incumbent Pareto set), receives the index
//! of the most promising candidate, evaluates the true objectives, and
//! tells the result back.

use crate::acquisition::{Acquisition, AcquisitionKind};
use crate::gp::GpRegressor;
use crate::kernel::Matern52;
use crate::GpError;
use lens_num::dist::simplex_weights;
use lens_pareto::ParetoFront;
use rand::RngCore;

/// Configuration of the MOBO driver.
#[derive(Debug, Clone, PartialEq)]
pub struct MoboConfig {
    /// Acquisition rule (default: LCB, as in Dragonfly).
    pub acquisition: AcquisitionKind,
    /// LCB exploration weight.
    pub beta: f64,
    /// ML-II lengthscale grid (unit-cube inputs).
    pub lengthscales: Vec<f64>,
    /// ML-II observation-noise grid (standardized-target units).
    pub noises: Vec<f64>,
    /// Re-run the ML-II grid search every this many new observations;
    /// between refits only the Cholesky is recomputed.
    pub refit_every: usize,
}

impl Default for MoboConfig {
    fn default() -> Self {
        MoboConfig {
            acquisition: AcquisitionKind::default(),
            beta: 2.0,
            lengthscales: vec![0.1, 0.2, 0.4, 0.8, 1.6, 3.2],
            noises: vec![1e-4, 1e-2, 1e-1],
            refit_every: 25,
        }
    }
}

/// Ask/tell multi-objective Bayesian optimizer (minimization).
///
/// # Examples
///
/// ```
/// use lens_gp::{MoboConfig, MultiObjectiveOptimizer};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), lens_gp::GpError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut opt = MultiObjectiveOptimizer::new(2, MoboConfig::default());
/// // Two cheap toy objectives over [0,1]: f1 = x, f2 = 1-x.
/// for i in 0..5 {
///     let x = i as f64 / 4.0;
///     opt.tell(vec![x], vec![x, 1.0 - x])?;
/// }
/// let candidates: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
/// let pick = opt.suggest(&candidates, &mut rng)?;
/// assert!(pick < candidates.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MultiObjectiveOptimizer {
    config: MoboConfig,
    num_objectives: usize,
    xs: Vec<Vec<f64>>,
    ys: Vec<Vec<f64>>,
    /// Cached `(lengthscale, noise)` per objective from the last ML-II fit.
    hypers: Vec<(f64, f64)>,
    tells_since_refit: usize,
}

impl MultiObjectiveOptimizer {
    /// Creates an optimizer for `num_objectives` minimized objectives.
    ///
    /// # Panics
    ///
    /// Panics if `num_objectives` is zero or the config grids are empty.
    pub fn new(num_objectives: usize, config: MoboConfig) -> Self {
        assert!(num_objectives > 0, "need at least one objective");
        assert!(
            !config.lengthscales.is_empty() && !config.noises.is_empty(),
            "hyperparameter grids must be non-empty"
        );
        let default_hyper = (config.lengthscales[0], config.noises[0]);
        MultiObjectiveOptimizer {
            config,
            num_objectives,
            xs: Vec::new(),
            ys: Vec::new(),
            hypers: vec![default_hyper; num_objectives],
            tells_since_refit: usize::MAX / 2, // force ML-II on first suggest
        }
    }

    /// Number of observations told so far.
    pub fn num_observations(&self) -> usize {
        self.xs.len()
    }

    /// Number of objectives.
    pub fn num_objectives(&self) -> usize {
        self.num_objectives
    }

    /// The observations as `(inputs, objective_vectors)`.
    pub fn observations(&self) -> (&[Vec<f64>], &[Vec<f64>]) {
        (&self.xs, &self.ys)
    }

    /// Records an evaluated point.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidTrainingData`] for dimension mismatches or
    /// non-finite values.
    pub fn tell(&mut self, x: Vec<f64>, y: Vec<f64>) -> Result<(), GpError> {
        if y.len() != self.num_objectives {
            return Err(GpError::InvalidTrainingData(format!(
                "expected {} objectives, got {}",
                self.num_objectives,
                y.len()
            )));
        }
        if let Some(first) = self.xs.first() {
            if first.len() != x.len() {
                return Err(GpError::InvalidTrainingData(format!(
                    "input dimension {} != {}",
                    x.len(),
                    first.len()
                )));
            }
        }
        if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
            return Err(GpError::InvalidTrainingData(
                "non-finite value in observation".into(),
            ));
        }
        self.xs.push(x);
        self.ys.push(y);
        self.tells_since_refit += 1;
        Ok(())
    }

    /// The Pareto front of the observations, as indices into the telling
    /// order plus their objective vectors.
    pub fn pareto_front(&self) -> ParetoFront<usize> {
        self.ys.iter().cloned().enumerate().collect()
    }

    /// Fits the per-objective GPs (ML-II grid search when due, otherwise the
    /// cached hyperparameters).
    fn fit_gps(&mut self) -> Result<Vec<GpRegressor>, GpError> {
        let refit = self.tells_since_refit >= self.config.refit_every;
        let mut gps = Vec::with_capacity(self.num_objectives);
        for k in 0..self.num_objectives {
            let targets: Vec<f64> = self.ys.iter().map(|y| y[k]).collect();
            let gp = if refit {
                let gp = GpRegressor::fit_auto(
                    self.xs.clone(),
                    targets,
                    Matern52::new(1.0, 1.0),
                    &self.config.lengthscales,
                    &self.config.noises,
                )?;
                self.hypers[k] = (gp.lengthscale(), gp.noise());
                gp
            } else {
                let (ls, noise) = self.hypers[k];
                GpRegressor::fit_boxed(
                    self.xs.clone(),
                    targets,
                    Box::new(Matern52::new(ls, 1.0)),
                    noise,
                )?
            };
            gps.push(gp);
        }
        if refit {
            self.tells_since_refit = 0;
        }
        Ok(gps)
    }

    /// Chooses the most promising candidate: builds the randomly scalarized
    /// acquisition `ϑ = Σ w_k · α_k` and returns the index of its argmax
    /// over the pool (Algorithm 2, lines 8–11).
    ///
    /// Per-objective acquisition scores are z-normalized across the pool
    /// before weighting so objectives with different units mix sanely.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidTrainingData`] if nothing has been told or
    /// `candidates` is empty; propagates GP fit failures.
    pub fn suggest(
        &mut self,
        candidates: &[Vec<f64>],
        rng: &mut dyn RngCore,
    ) -> Result<usize, GpError> {
        if self.xs.is_empty() {
            return Err(GpError::InvalidTrainingData(
                "tell at least one observation before suggest".into(),
            ));
        }
        if candidates.is_empty() {
            return Err(GpError::InvalidTrainingData(
                "candidate pool is empty".into(),
            ));
        }
        let gps = self.fit_gps()?;
        let weights = simplex_weights(rng, self.num_objectives);

        let mut combined = vec![0.0; candidates.len()];
        for (k, gp) in gps.iter().enumerate() {
            let incumbent = self.ys.iter().map(|y| y[k]).fold(f64::INFINITY, f64::min);
            let acq = Acquisition::new(gp, self.config.acquisition, self.config.beta, incumbent);
            let scores: Vec<f64> = candidates.iter().map(|c| acq.score(c, rng)).collect();
            let normalized = z_normalize(&scores);
            for (ci, s) in normalized.iter().enumerate() {
                combined[ci] += weights[k] * s;
            }
        }
        Ok(argmax(&combined))
    }
}

/// Z-normalizes scores; degenerate (constant) score vectors become zeros.
fn z_normalize(scores: &[f64]) -> Vec<f64> {
    let n = scores.len() as f64;
    let mean = scores.iter().sum::<f64>() / n;
    let var = scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    let std = var.sqrt();
    if std < 1e-12 {
        return vec![0.0; scores.len()];
    }
    scores.iter().map(|s| (s - mean) / std).collect()
}

/// Index of the maximum (first wins ties).
fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, v) in values.iter().enumerate() {
        if *v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lens_pareto::hypervolume;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// ZDT1-style bi-objective problem on [0,1]^3 (minimize both).
    fn zdt1(x: &[f64]) -> Vec<f64> {
        let f1 = x[0];
        let g = 1.0 + 9.0 * (x[1] + x[2]) / 2.0;
        let f2 = g * (1.0 - (f1 / g).sqrt());
        vec![f1, f2]
    }

    fn random_point(rng: &mut StdRng, d: usize) -> Vec<f64> {
        (0..d).map(|_| rng.gen::<f64>()).collect()
    }

    fn run_mobo(iters: usize, seed: u64) -> ParetoFront<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = MultiObjectiveOptimizer::new(2, MoboConfig::default());
        for _ in 0..8 {
            let x = random_point(&mut rng, 3);
            let y = zdt1(&x);
            opt.tell(x, y).unwrap();
        }
        for _ in 0..iters {
            let candidates: Vec<Vec<f64>> = (0..64).map(|_| random_point(&mut rng, 3)).collect();
            let pick = opt.suggest(&candidates, &mut rng).unwrap();
            let x = candidates[pick].clone();
            let y = zdt1(&x);
            opt.tell(x, y).unwrap();
        }
        opt.pareto_front()
    }

    fn run_random(iters: usize, seed: u64) -> ParetoFront<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut front = ParetoFront::new();
        for i in 0..iters + 8 {
            let x = random_point(&mut rng, 3);
            front.insert(i, zdt1(&x));
        }
        front
    }

    #[test]
    fn mobo_beats_random_search_on_zdt1() {
        let reference = [1.5, 11.0];
        let mut mobo_wins = 0;
        for seed in [1u64, 2, 3] {
            let mobo_front = run_mobo(40, seed);
            let random_front = run_random(40, seed);
            let hv_mobo = hypervolume(&mobo_front.objectives(), &reference);
            let hv_rand = hypervolume(&random_front.objectives(), &reference);
            if hv_mobo > hv_rand {
                mobo_wins += 1;
            }
        }
        assert!(mobo_wins >= 2, "MOBO won only {mobo_wins}/3 seeds");
    }

    #[test]
    fn suggest_is_deterministic_per_seed() {
        let build = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut opt = MultiObjectiveOptimizer::new(2, MoboConfig::default());
            for _ in 0..6 {
                let x = random_point(&mut rng, 3);
                let y = zdt1(&x);
                opt.tell(x, y).unwrap();
            }
            let candidates: Vec<Vec<f64>> = (0..32).map(|_| random_point(&mut rng, 3)).collect();
            opt.suggest(&candidates, &mut rng).unwrap()
        };
        assert_eq!(build(7), build(7));
    }

    #[test]
    fn tell_validates() {
        let mut opt = MultiObjectiveOptimizer::new(2, MoboConfig::default());
        assert!(opt.tell(vec![0.5], vec![1.0]).is_err()); // wrong #objectives
        assert!(opt.tell(vec![0.5], vec![1.0, f64::NAN]).is_err());
        opt.tell(vec![0.5], vec![1.0, 2.0]).unwrap();
        assert!(opt.tell(vec![0.5, 0.1], vec![1.0, 2.0]).is_err()); // dim change
        assert_eq!(opt.num_observations(), 1);
    }

    #[test]
    fn suggest_requires_data_and_candidates() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut opt = MultiObjectiveOptimizer::new(1, MoboConfig::default());
        assert!(opt.suggest(&[vec![0.0]], &mut rng).is_err());
        opt.tell(vec![0.1], vec![1.0]).unwrap();
        assert!(opt.suggest(&[], &mut rng).is_err());
        assert_eq!(opt.suggest(&[vec![0.2]], &mut rng).unwrap(), 0);
    }

    #[test]
    fn pareto_front_tracks_observations() {
        let mut opt = MultiObjectiveOptimizer::new(2, MoboConfig::default());
        opt.tell(vec![0.0], vec![1.0, 4.0]).unwrap();
        opt.tell(vec![0.5], vec![2.0, 2.0]).unwrap();
        opt.tell(vec![1.0], vec![4.0, 1.0]).unwrap();
        opt.tell(vec![0.7], vec![5.0, 5.0]).unwrap(); // dominated
        let front = opt.pareto_front();
        assert_eq!(front.len(), 3);
        assert!(front.is_antichain());
    }

    #[test]
    fn z_normalize_handles_constant() {
        assert_eq!(z_normalize(&[3.0, 3.0, 3.0]), vec![0.0, 0.0, 0.0]);
        let z = z_normalize(&[1.0, 2.0, 3.0]);
        assert!((z.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn argmax_first_wins_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }
}
