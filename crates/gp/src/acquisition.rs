//! Acquisition functions for *minimization*.
//!
//! §III.B: "through every `m_k` and `K_k`, an acquisition function is
//! constructed to determine the next query point" — available analytically
//! and much cheaper than the true objectives. Higher acquisition score =
//! more attractive query point.

use crate::gp::GpRegressor;
use rand::RngCore;

/// Which acquisition rule to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum AcquisitionKind {
    /// Lower confidence bound: score = `-(mean - beta·std)`. The default,
    /// matching Dragonfly's UCB-style MOBO.
    #[default]
    LowerConfidenceBound,
    /// Expected improvement over the incumbent best (smallest observed).
    ExpectedImprovement,
    /// Thompson-style sampling of the posterior marginal.
    ThompsonSampling,
}

/// An acquisition evaluator bound to a GP and rule.
#[derive(Debug)]
pub struct Acquisition<'a> {
    gp: &'a GpRegressor,
    kind: AcquisitionKind,
    /// Exploration weight for LCB.
    beta: f64,
    /// Incumbent best (minimum observed target) for EI.
    incumbent: f64,
}

impl<'a> Acquisition<'a> {
    /// Creates an acquisition evaluator.
    ///
    /// `beta` is the LCB exploration weight; `incumbent` the best (lowest)
    /// target observed so far, used by expected improvement.
    pub fn new(gp: &'a GpRegressor, kind: AcquisitionKind, beta: f64, incumbent: f64) -> Self {
        Acquisition {
            gp,
            kind,
            beta,
            incumbent,
        }
    }

    /// Scores a candidate (higher is better). `rng` is used only by
    /// Thompson sampling.
    pub fn score(&self, x: &[f64], rng: &mut dyn RngCore) -> f64 {
        let (mean, var) = self.gp.predict(x);
        let std = var.sqrt();
        match self.kind {
            AcquisitionKind::LowerConfidenceBound => -(mean - self.beta * std),
            AcquisitionKind::ExpectedImprovement => expected_improvement(mean, std, self.incumbent),
            AcquisitionKind::ThompsonSampling => {
                -(mean + std * lens_num::dist::standard_normal(rng))
            }
        }
    }
}

/// Closed-form expected improvement for minimization.
fn expected_improvement(mean: f64, std: f64, incumbent: f64) -> f64 {
    if std < 1e-12 {
        return (incumbent - mean).max(0.0);
    }
    let z = (incumbent - mean) / std;
    (incumbent - mean) * normal_cdf(z) + std * normal_pdf(z)
}

/// Standard normal density.
fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max abs error ~1.5e-7, ample for acquisition ranking).
fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Matern52;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fitted_gp() -> GpRegressor {
        let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 / 5.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.3).powi(2)).collect();
        GpRegressor::fit(xs, ys, Matern52::new(0.3, 1.0), 1e-6).unwrap()
    }

    #[test]
    fn erf_reference_values() {
        // The A&S 7.1.26 approximation has ~1.5e-7 max absolute error.
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn lcb_prefers_low_mean_when_no_exploration() {
        let gp = fitted_gp();
        let mut rng = StdRng::seed_from_u64(0);
        let acq = Acquisition::new(&gp, AcquisitionKind::LowerConfidenceBound, 0.0, 0.0);
        // Minimum of (x-0.3)^2 is at 0.3.
        let at_min = acq.score(&[0.3], &mut rng);
        let away = acq.score(&[0.9], &mut rng);
        assert!(at_min > away);
    }

    #[test]
    fn lcb_beta_rewards_uncertainty() {
        let gp = fitted_gp();
        let mut rng = StdRng::seed_from_u64(0);
        let explore = Acquisition::new(&gp, AcquisitionKind::LowerConfidenceBound, 50.0, 0.0);
        // Far from data, variance is huge; with big beta that wins.
        let far = explore.score(&[5.0], &mut rng);
        let near = explore.score(&[0.3], &mut rng);
        assert!(far > near);
    }

    #[test]
    fn ei_is_nonnegative_and_peaks_near_optimum() {
        let gp = fitted_gp();
        let mut rng = StdRng::seed_from_u64(0);
        let acq = Acquisition::new(&gp, AcquisitionKind::ExpectedImprovement, 0.0, 0.05);
        for x in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!(acq.score(&[x], &mut rng) >= -1e-12);
        }
    }

    #[test]
    fn ei_zero_when_no_improvement_possible() {
        // Deterministic GP fit, incumbent far below anything reachable.
        assert_eq!(expected_improvement(5.0, 0.0, 1.0), 0.0);
        assert!(expected_improvement(5.0, 1e-13, 1.0) <= 0.0 + 1e-12);
        // And positive when mean is below incumbent.
        assert!(expected_improvement(0.5, 0.1, 1.0) > 0.4);
    }

    #[test]
    fn thompson_is_stochastic_but_seed_deterministic() {
        let gp = fitted_gp();
        let acq = Acquisition::new(&gp, AcquisitionKind::ThompsonSampling, 0.0, 0.0);
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(1);
        let a = acq.score(&[0.5], &mut rng1);
        let b = acq.score(&[0.5], &mut rng2);
        assert_eq!(a, b);
        let c = acq.score(&[0.5], &mut rng1);
        assert_ne!(a, c);
    }
}
