//! Multi-objective Bayesian optimization substrate (§III.B).
//!
//! The paper builds its NAS on Dragonfly's MOBO; this crate is a
//! from-scratch Rust equivalent of the pieces LENS uses:
//!
//! * [`kernel`] — stationary covariance functions (squared-exponential and
//!   Matérn-5/2) over the unit-cube architecture embeddings.
//! * [`gp`] — exact Gaussian-process regression: Cholesky-based fit,
//!   posterior mean/variance, log marginal likelihood, and ML-II
//!   hyperparameter selection on a small grid.
//! * [`acquisition`] — UCB/EI/Thompson acquisition scores for minimization.
//! * [`mobo`] — the multi-objective driver: one GP per objective and
//!   randomly scalarized acquisitions (Dragonfly's approach), exposed as an
//!   ask/tell interface so the caller owns candidate generation — which is
//!   how Algorithm 2 plugs in search-space-aware proposals.
//!
//! # Examples
//!
//! ```
//! use lens_gp::gp::GpRegressor;
//! use lens_gp::kernel::Matern52;
//!
//! # fn main() -> Result<(), lens_gp::GpError> {
//! let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
//! let ys = vec![0.0, 0.25, 1.0];
//! let gp = GpRegressor::fit(xs, ys, Matern52::new(0.5, 1.0), 1e-6)?;
//! let (mean, var) = gp.predict(&[0.5]);
//! assert!((mean - 0.25).abs() < 1e-3); // interpolates training data
//! assert!(var >= 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod acquisition;
pub mod gp;
pub mod kernel;
pub mod mobo;

pub use acquisition::{Acquisition, AcquisitionKind};
pub use gp::GpRegressor;
pub use kernel::{Kernel, Matern52, SquaredExponential};
pub use mobo::{MoboConfig, MultiObjectiveOptimizer};

use std::error::Error;
use std::fmt;

/// Errors produced by the Bayesian-optimization substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GpError {
    /// Training inputs were empty or inconsistent.
    InvalidTrainingData(String),
    /// The kernel matrix could not be factorized.
    Numeric(lens_num::NumError),
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::InvalidTrainingData(why) => write!(f, "invalid training data: {why}"),
            GpError::Numeric(e) => write!(f, "numeric failure: {e}"),
        }
    }
}

impl Error for GpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GpError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lens_num::NumError> for GpError {
    fn from(e: lens_num::NumError) -> Self {
        GpError::Numeric(e)
    }
}
