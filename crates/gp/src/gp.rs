//! Exact Gaussian-process regression.
//!
//! §III.B: each objective `f_k` is approximated by a surrogate GP; former
//! evaluations are jointly Gaussian with mean `m_k` and covariance `K_k`.
//! The implementation is the textbook Cholesky formulation (Rasmussen &
//! Williams, Algorithm 2.1): factor `K + σ²I = LLᵀ` once per fit, then
//! `α = K⁻¹y` gives O(n) posterior means and O(n²) variances per query.
//! Targets are standardized internally.

use crate::kernel::Kernel;
use crate::GpError;
use lens_num::linalg::{dot, Cholesky, Matrix};
use lens_num::stats::Standardizer;

/// A fitted Gaussian process regressor.
#[derive(Debug)]
pub struct GpRegressor {
    xs: Vec<Vec<f64>>,
    kernel: Box<dyn Kernel>,
    noise: f64,
    chol: Cholesky,
    alpha: Vec<f64>,
    standardizer: Standardizer,
    log_marginal_likelihood: f64,
}

impl GpRegressor {
    /// Fits a GP to inputs `xs` and targets `ys` under the given kernel and
    /// observation-noise variance (in standardized-target units).
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidTrainingData`] for empty/ragged inputs and
    /// [`GpError::Numeric`] if the kernel matrix cannot be factorized.
    pub fn fit<K: Kernel + 'static>(
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        kernel: K,
        noise: f64,
    ) -> Result<Self, GpError> {
        Self::fit_boxed(xs, ys, Box::new(kernel), noise)
    }

    /// [`fit`](Self::fit) with an already boxed kernel (used by the ML-II
    /// grid search).
    ///
    /// # Errors
    ///
    /// Same as [`fit`](Self::fit).
    pub fn fit_boxed(
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        kernel: Box<dyn Kernel>,
        noise: f64,
    ) -> Result<Self, GpError> {
        if xs.is_empty() {
            return Err(GpError::InvalidTrainingData("no training points".into()));
        }
        if xs.len() != ys.len() {
            return Err(GpError::InvalidTrainingData(format!(
                "{} inputs vs {} targets",
                xs.len(),
                ys.len()
            )));
        }
        let d = xs[0].len();
        if d == 0 || xs.iter().any(|x| x.len() != d) {
            return Err(GpError::InvalidTrainingData(
                "inputs must be non-empty and consistent in dimension".into(),
            ));
        }
        if !noise.is_finite() || noise < 0.0 {
            return Err(GpError::InvalidTrainingData(format!(
                "noise must be finite and non-negative, got {noise}"
            )));
        }

        let standardizer = Standardizer::fit(&ys).map_err(GpError::from)?;
        let z: Vec<f64> = ys.iter().map(|&y| standardizer.transform(y)).collect();

        let n = xs.len();
        let gram =
            Matrix::from_fn(n, n, |i, j| kernel.eval(&xs[i], &xs[j])).add_diagonal(noise + 1e-8);
        let chol = gram.cholesky()?;
        let alpha = chol.solve(&z);

        // log p(y|X) = -0.5 zᵀα - 0.5 log|K| - n/2 log 2π  (standardized z).
        let lml = -0.5 * dot(&z, &alpha)
            - 0.5 * chol.log_det()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

        Ok(GpRegressor {
            xs,
            kernel,
            noise,
            chol,
            alpha,
            standardizer,
            log_marginal_likelihood: lml,
        })
    }

    /// Fits with ML-II model selection: tries every lengthscale in
    /// `lengthscales` and every noise in `noises`, keeping the fit with the
    /// highest log marginal likelihood.
    ///
    /// # Errors
    ///
    /// Returns the first error if *all* candidate fits fail, or
    /// [`GpError::InvalidTrainingData`] for empty grids.
    pub fn fit_auto<K: Kernel + 'static>(
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        base_kernel: K,
        lengthscales: &[f64],
        noises: &[f64],
    ) -> Result<Self, GpError> {
        if lengthscales.is_empty() || noises.is_empty() {
            return Err(GpError::InvalidTrainingData(
                "hyperparameter grids must be non-empty".into(),
            ));
        }
        let mut best: Option<GpRegressor> = None;
        let mut first_err = None;
        for &ls in lengthscales {
            for &noise in noises {
                let kernel = base_kernel.with_lengthscale(ls);
                match GpRegressor::fit_boxed(xs.clone(), ys.clone(), kernel, noise) {
                    Ok(gp) => {
                        let better = best
                            .as_ref()
                            .map(|b| gp.log_marginal_likelihood > b.log_marginal_likelihood)
                            .unwrap_or(true);
                        if better {
                            best = Some(gp);
                        }
                    }
                    Err(e) => first_err = Some(e),
                }
            }
        }
        match best {
            Some(gp) => Ok(gp),
            None => Err(first_err.expect("no fits and no errors is impossible")),
        }
    }

    /// Posterior mean and variance at a query point, in the original target
    /// units.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        assert_eq!(
            x.len(),
            self.xs[0].len(),
            "query dimension mismatch in GP predict"
        );
        let k_star: Vec<f64> = self.xs.iter().map(|xi| self.kernel.eval(xi, x)).collect();
        let mean_z = dot(&k_star, &self.alpha);
        let v = self.chol.solve_lower(&k_star);
        let var_z = (self.kernel.diagonal() - dot(&v, &v)).max(0.0);
        (
            self.standardizer.inverse(mean_z),
            var_z * self.standardizer.scale() * self.standardizer.scale(),
        )
    }

    /// Posterior standard deviation at a query point.
    pub fn predict_std(&self, x: &[f64]) -> f64 {
        self.predict(x).1.sqrt()
    }

    /// The log marginal likelihood of the (standardized) training data.
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.log_marginal_likelihood
    }

    /// Number of training points.
    pub fn num_points(&self) -> usize {
        self.xs.len()
    }

    /// The fitted kernel's lengthscale (after any ML-II selection).
    pub fn lengthscale(&self) -> f64 {
        self.kernel.lengthscale()
    }

    /// The fitted observation-noise variance.
    pub fn noise(&self) -> f64 {
        self.noise
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Matern52, SquaredExponential};

    fn toy_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64 / 8.0]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (x[0] * std::f64::consts::PI * 2.0).sin() * 3.0 + 10.0)
            .collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points_with_low_noise() {
        let (xs, ys) = toy_data();
        let gp = GpRegressor::fit(xs.clone(), ys.clone(), Matern52::new(0.3, 1.0), 1e-8).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let (mean, var) = gp.predict(x);
            assert!((mean - y).abs() < 1e-3, "mean {mean} vs {y}");
            assert!(var < 1e-3, "variance {var} at training point");
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let (xs, ys) = toy_data();
        let gp = GpRegressor::fit(xs, ys, SquaredExponential::new(0.1, 1.0), 1e-6).unwrap();
        let at_data = gp.predict(&[0.5]).1;
        let far = gp.predict(&[3.0]).1;
        assert!(far > at_data * 10.0, "far {far} vs at-data {at_data}");
    }

    #[test]
    fn reverts_to_prior_mean_far_away() {
        let (xs, ys) = toy_data();
        let y_mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let gp = GpRegressor::fit(xs, ys, SquaredExponential::new(0.1, 1.0), 1e-6).unwrap();
        let (mean, _) = gp.predict(&[10.0]);
        assert!((mean - y_mean).abs() < 1e-6);
    }

    #[test]
    fn fit_auto_picks_reasonable_lengthscale() {
        let (xs, ys) = toy_data();
        let gp = GpRegressor::fit_auto(
            xs,
            ys,
            Matern52::new(1.0, 1.0),
            &[0.05, 0.1, 0.2, 0.4, 0.8, 1.6],
            &[1e-6, 1e-4, 1e-2],
        )
        .unwrap();
        // The sine has structure at scale ~0.25; huge lengthscales fit badly.
        assert!(gp.lengthscale() <= 0.8, "picked {}", gp.lengthscale());
        // And the auto fit predicts well between points.
        let (mean, _) = gp.predict(&[0.4375]);
        let truth = (0.4375f64 * std::f64::consts::TAU).sin() * 3.0 + 10.0;
        assert!((mean - truth).abs() < 0.5, "mean {mean} vs {truth}");
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(matches!(
            GpRegressor::fit(vec![], vec![], Matern52::new(1.0, 1.0), 1e-6),
            Err(GpError::InvalidTrainingData(_))
        ));
        assert!(matches!(
            GpRegressor::fit(
                vec![vec![1.0]],
                vec![1.0, 2.0],
                Matern52::new(1.0, 1.0),
                1e-6
            ),
            Err(GpError::InvalidTrainingData(_))
        ));
        assert!(matches!(
            GpRegressor::fit(
                vec![vec![1.0], vec![1.0, 2.0]],
                vec![1.0, 2.0],
                Matern52::new(1.0, 1.0),
                1e-6
            ),
            Err(GpError::InvalidTrainingData(_))
        ));
        assert!(matches!(
            GpRegressor::fit(
                vec![vec![1.0]],
                vec![1.0],
                Matern52::new(1.0, 1.0),
                f64::NAN
            ),
            Err(GpError::InvalidTrainingData(_))
        ));
    }

    #[test]
    fn constant_targets_are_handled() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let ys = vec![7.0; 5];
        let gp = GpRegressor::fit(xs, ys, Matern52::new(1.0, 1.0), 1e-6).unwrap();
        let (mean, _) = gp.predict(&[2.5]);
        assert!((mean - 7.0).abs() < 1e-6);
    }

    #[test]
    fn higher_lml_for_better_lengthscale() {
        let (xs, ys) = toy_data();
        let good = GpRegressor::fit(xs.clone(), ys.clone(), Matern52::new(0.3, 1.0), 1e-4)
            .unwrap()
            .log_marginal_likelihood();
        let bad = GpRegressor::fit(xs, ys, Matern52::new(50.0, 1.0), 1e-4)
            .unwrap()
            .log_marginal_likelihood();
        assert!(good > bad, "good {good} vs bad {bad}");
    }
}
