//! Networks, the builder used to assemble them, and the per-layer analysis
//! that feeds Algorithm 1 (`Size_comp` in the paper's pseudocode).

use crate::layer::{Layer, LayerKind};
use crate::tensor::{DType, TensorShape};
use crate::units::Bytes;
use crate::NnError;
use std::fmt;

/// A feed-forward network: an input specification plus an ordered list of
/// layers.
///
/// # Examples
///
/// ```
/// use lens_nn::{Layer, NetworkBuilder, TensorShape};
///
/// # fn main() -> Result<(), lens_nn::NnError> {
/// let net = NetworkBuilder::new("tiny", TensorShape::new(3, 32, 32))
///     .layer(Layer::conv("conv1", 16, 3, 1))
///     .layer(Layer::max_pool2("pool1"))
///     .flatten()
///     .layer(Layer::dense("fc", 10))
///     .build()?;
/// assert_eq!(net.num_layers(), 4);
/// let analysis = net.analyze()?;
/// assert_eq!(analysis.output_shape(), TensorShape::flat(10));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    name: String,
    input: TensorShape,
    input_dtype: DType,
    layers: Vec<Layer>,
}

impl Network {
    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The input tensor shape.
    pub fn input(&self) -> TensorShape {
        self.input
    }

    /// The element type of the input as transmitted on the wire (`u8` for
    /// camera images, matching the paper's 147 kB figure).
    pub fn input_dtype(&self) -> DType {
        self.input_dtype
    }

    /// The layers, in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Size of the input on the wire.
    pub fn input_bytes(&self) -> Bytes {
        self.input.size_bytes(self.input_dtype)
    }

    /// Re-expresses the same layer stack on a different input shape — used
    /// when one architecture must be viewed at the deployment resolution
    /// (224×224) and the training resolution (32×32), as the paper does.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the layer stack cannot consume the new
    /// input (e.g. more poolings than the spatial size allows).
    pub fn with_input(&self, input: TensorShape) -> Result<Network, NnError> {
        let net = Network {
            name: self.name.clone(),
            input,
            input_dtype: self.input_dtype,
            layers: self.layers.clone(),
        };
        net.analyze()?;
        Ok(net)
    }

    /// Propagates shapes through every layer and collects per-layer facts
    /// (output shape/size, MACs, parameters).
    ///
    /// # Errors
    ///
    /// Returns the first validation or shape error encountered, or
    /// [`NnError::EmptyNetwork`] when there are no layers.
    pub fn analyze(&self) -> Result<NetworkAnalysis, NnError> {
        if self.layers.is_empty() {
            return Err(NnError::EmptyNetwork);
        }
        let mut current = self.input;
        let mut layers = Vec::with_capacity(self.layers.len());
        for (index, layer) in self.layers.iter().enumerate() {
            layer.validate()?;
            let output = layer.output_shape(&current)?;
            layers.push(LayerAnalysis {
                index,
                name: layer.name().to_string(),
                kind: layer.kind().clone(),
                input_shape: current,
                output_shape: output,
                output_bytes: output.size_bytes(DType::F32),
                macs: layer.macs(&current),
                params: layer.params(&current),
            });
            current = output;
        }
        Ok(NetworkAnalysis {
            input: self.input,
            input_dtype: self.input_dtype,
            layers,
        })
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} (input {} {})",
            self.name, self.input, self.input_dtype
        )?;
        for layer in &self.layers {
            writeln!(f, "  {layer}")?;
        }
        Ok(())
    }
}

/// Builder for [`Network`] values.
///
/// The builder inserts nothing implicitly except through the explicit
/// convenience methods; [`Network::analyze`] performs full validation.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: String,
    input: TensorShape,
    input_dtype: DType,
    layers: Vec<Layer>,
}

impl NetworkBuilder {
    /// Starts a network with the given name and input shape (input dtype
    /// defaults to `u8`, the on-the-wire camera format).
    pub fn new(name: impl Into<String>, input: TensorShape) -> Self {
        NetworkBuilder {
            name: name.into(),
            input,
            input_dtype: DType::U8,
            layers: Vec::new(),
        }
    }

    /// Overrides the input element type.
    pub fn input_dtype(mut self, dtype: DType) -> Self {
        self.input_dtype = dtype;
        self
    }

    /// Appends a layer.
    pub fn layer(mut self, layer: Layer) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends a `Flatten` layer named `flatten`.
    pub fn flatten(self) -> Self {
        self.layer(Layer::new("flatten", LayerKind::Flatten))
    }

    /// Finalizes the network, validating every layer and shape transition.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyNetwork`] or the first layer/shape error.
    pub fn build(self) -> Result<Network, NnError> {
        let net = Network {
            name: self.name,
            input: self.input,
            input_dtype: self.input_dtype,
            layers: self.layers,
        };
        net.analyze()?;
        Ok(net)
    }
}

/// Per-layer facts computed by [`Network::analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerAnalysis {
    /// Position in the network (0-based).
    pub index: usize,
    /// Layer name.
    pub name: String,
    /// Layer kind (cloned for self-containedness).
    pub kind: LayerKind,
    /// Shape entering the layer.
    pub input_shape: TensorShape,
    /// Shape leaving the layer.
    pub output_shape: TensorShape,
    /// Wire size of the output feature map (`f32` elements) — the quantity
    /// Algorithm 1 compares against the input size.
    pub output_bytes: Bytes,
    /// Multiply-accumulate count.
    pub macs: u64,
    /// Trainable parameter count.
    pub params: u64,
}

/// The full per-layer analysis of a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkAnalysis {
    input: TensorShape,
    input_dtype: DType,
    layers: Vec<LayerAnalysis>,
}

impl NetworkAnalysis {
    /// The per-layer records in execution order.
    pub fn layers(&self) -> &[LayerAnalysis] {
        &self.layers
    }

    /// Looks a layer up by name.
    pub fn layer(&self, name: &str) -> Option<&LayerAnalysis> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// The network input shape.
    pub fn input_shape(&self) -> TensorShape {
        self.input
    }

    /// Wire size of the network input.
    pub fn input_bytes(&self) -> Bytes {
        self.input.size_bytes(self.input_dtype)
    }

    /// Shape of the final layer's output.
    ///
    /// # Panics
    ///
    /// Never panics: `analyze` guarantees at least one layer.
    pub fn output_shape(&self) -> TensorShape {
        self.layers
            .last()
            .expect("analysis always has layers")
            .output_shape
    }

    /// Total multiply-accumulate count.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total trainable parameters.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Indices of layers whose output is strictly smaller on the wire than
    /// the network input — the paper's criterion (§IV.B) for a layer to be a
    /// *viable partition point* (`Identify` in Algorithm 1): transmitting
    /// anything at least as large as the input can never beat All-Cloud.
    pub fn viable_partition_indices(&self) -> Vec<usize> {
        let input = self.input_bytes();
        self.layers
            .iter()
            .filter(|l| l.output_bytes < input)
            .map(|l| l.index)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use proptest::prelude::*;

    fn tiny() -> Network {
        NetworkBuilder::new("tiny", TensorShape::new(3, 32, 32))
            .layer(Layer::conv("conv1", 16, 3, 1))
            .layer(Layer::max_pool2("pool1"))
            .layer(Layer::conv("conv2", 32, 3, 1))
            .layer(Layer::max_pool2("pool2"))
            .flatten()
            .layer(Layer::dense("fc1", 64))
            .layer(Layer::new(
                "fc2",
                LayerKind::Dense {
                    out_features: 10,
                    activation: Activation::Softmax,
                },
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn shapes_propagate() {
        let a = tiny().analyze().unwrap();
        assert_eq!(
            a.layer("conv1").unwrap().output_shape,
            TensorShape::new(16, 32, 32)
        );
        assert_eq!(
            a.layer("pool2").unwrap().output_shape,
            TensorShape::new(32, 8, 8)
        );
        assert_eq!(
            a.layer("flatten").unwrap().output_shape,
            TensorShape::flat(2048)
        );
        assert_eq!(a.output_shape(), TensorShape::flat(10));
    }

    #[test]
    fn totals_are_sums() {
        let a = tiny().analyze().unwrap();
        let macs: u64 = a.layers().iter().map(|l| l.macs).sum();
        assert_eq!(a.total_macs(), macs);
        assert!(a.total_params() > 0);
    }

    #[test]
    fn empty_network_errors() {
        let err = NetworkBuilder::new("empty", TensorShape::new(3, 32, 32))
            .build()
            .unwrap_err();
        assert_eq!(err, NnError::EmptyNetwork);
    }

    #[test]
    fn build_validates_shapes() {
        // Dense directly on a spatial tensor must fail at build time.
        let err = NetworkBuilder::new("bad", TensorShape::new(3, 32, 32))
            .layer(Layer::dense("fc", 10))
            .build()
            .unwrap_err();
        assert!(matches!(err, NnError::ShapeMismatch { .. }));
    }

    #[test]
    fn viable_partition_points_shrinkage_rule() {
        // Input 3x32x32 u8 = 3072 B. conv1 out 16x32x32 f32 = 65536 B (too
        // big); only late, flat layers are smaller.
        let a = tiny().analyze().unwrap();
        let viable = a.viable_partition_indices();
        assert!(viable.contains(&a.layer("fc1").unwrap().index));
        assert!(viable.contains(&a.layer("fc2").unwrap().index));
        assert!(!viable.contains(&a.layer("conv1").unwrap().index));
        // fc1 out = 64*4 = 256 B < 3072 B.
        assert_eq!(a.layer("fc1").unwrap().output_bytes, Bytes::new(256));
    }

    #[test]
    fn input_dtype_controls_input_bytes() {
        let f32_in = NetworkBuilder::new("f", TensorShape::new(3, 32, 32))
            .input_dtype(DType::F32)
            .layer(Layer::conv("c", 8, 3, 1))
            .build()
            .unwrap();
        assert_eq!(f32_in.input_bytes(), Bytes::new(3 * 32 * 32 * 4));
    }

    #[test]
    fn display_lists_layers() {
        let s = format!("{}", tiny());
        assert!(s.contains("conv1"));
        assert!(s.contains("fc2"));
    }

    proptest! {
        /// Pooling never increases the feature-map byte size; conv with
        /// stride 1 and "same" padding never changes the spatial dims.
        #[test]
        fn prop_pool_shrinks_conv_same_preserves(
            ch in 1u32..32, hw in 8u32..64, filters in 1u32..64
        ) {
            let input = TensorShape::new(ch, hw, hw);
            let pool = Layer::max_pool2("p");
            let pooled = pool.output_shape(&input).unwrap();
            prop_assert!(pooled.num_elements() <= input.num_elements());

            let conv = Layer::conv("c", filters, 3, 1);
            let conved = conv.output_shape(&input).unwrap();
            prop_assert_eq!(conved.height(), input.height());
            prop_assert_eq!(conved.width(), input.width());
        }

        /// analyze() is consistent: each layer's input shape equals the
        /// previous layer's output shape.
        #[test]
        fn prop_analysis_chains(hw in 16u32..48) {
            let net = NetworkBuilder::new("chain", TensorShape::new(3, hw, hw))
                .layer(Layer::conv("c1", 8, 3, 1))
                .layer(Layer::max_pool2("p1"))
                .flatten()
                .layer(Layer::dense("fc", 10))
                .build()
                .unwrap();
            let a = net.analyze().unwrap();
            for w in a.layers().windows(2) {
                prop_assert_eq!(w[1].input_shape, w[0].output_shape);
            }
        }
    }
}
