//! DNN architecture representation for the LENS reproduction.
//!
//! This crate is the substrate everything else stands on: it models a deep
//! neural network as an ordered list of layers, propagates tensor shapes
//! through them, and computes the quantities the LENS methodology consumes —
//! per-layer output feature-map sizes (the partition-point criterion of
//! §IV.B), MAC/parameter counts (inputs to the performance predictors of
//! §IV.C), and reference models (AlexNet for the motivational analysis of
//! §II, VGG16 as the ancestor of the search space of Fig 4).
//!
//! Activation and normalization layers are *fused* into their preceding
//! compute layers, exactly as the paper does for its per-layer analysis
//! ("any activation or normalization layers ... are fused with their
//! preceding layers as they incur relatively small latency, and the size of
//! feature maps does not change between them").
//!
//! Data-size convention (matches the paper's numbers): the *input image* is
//! transmitted as `u8` (224×224×3 = 147 kB), while intermediate feature maps
//! are `f32`. This is what makes "Pool5 output ≈ 4× smaller than the input"
//! and "everything before Pool5 is larger than the input" both true for
//! AlexNet.
//!
//! # Examples
//!
//! ```
//! use lens_nn::zoo;
//!
//! # fn main() -> Result<(), lens_nn::NnError> {
//! let alexnet = zoo::alexnet();
//! let analysis = alexnet.analyze()?;
//! // FC6's input (Pool5's output) is about 4x smaller than the 147 kB image.
//! let pool5 = analysis.layer("pool5").expect("alexnet has pool5");
//! assert!(pool5.output_bytes < analysis.input_bytes());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod layer;
pub mod network;
pub mod tensor;
pub mod units;
pub mod zoo;

pub use layer::{Activation, Layer, LayerKind};
pub use network::{LayerAnalysis, Network, NetworkAnalysis, NetworkBuilder};
pub use tensor::{DType, TensorShape};
pub use units::{Bytes, Mbps, Millijoules, Millis, Milliwatts};

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or analyzing networks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// A layer could not consume the shape produced by its predecessor.
    ShapeMismatch {
        /// Name of the offending layer.
        layer: String,
        /// The incoming shape.
        input: TensorShape,
        /// Why the shape is unusable.
        reason: String,
    },
    /// A layer parameter is invalid (zero kernel, zero stride, ...).
    InvalidLayer {
        /// Name of the offending layer.
        layer: String,
        /// Description of the invalid parameter.
        reason: String,
    },
    /// The network has no layers.
    EmptyNetwork,
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch {
                layer,
                input,
                reason,
            } => write!(
                f,
                "shape mismatch at layer `{layer}` (input {input}): {reason}"
            ),
            NnError::InvalidLayer { layer, reason } => {
                write!(f, "invalid layer `{layer}`: {reason}")
            }
            NnError::EmptyNetwork => write!(f, "network has no layers"),
        }
    }
}

impl Error for NnError {}
