//! Layer definitions, shape propagation, and per-layer cost quantities.
//!
//! Following the paper, activation functions and normalization are *fused*
//! into the compute layer that precedes them ([`Activation`] and the
//! `batch_norm`/`local_response_norm` flags on [`LayerKind::Conv2d`]), so the
//! layer list corresponds one-to-one to the partitionable boundaries of
//! Fig 1.

use crate::tensor::TensorShape;
use crate::NnError;
use std::fmt;

/// Fused activation applied at the end of a compute layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// No activation (linear output).
    None,
    /// Rectified linear unit — used on every layer of the search space
    /// except the final classifier.
    #[default]
    Relu,
    /// Softmax — the final classifier layer of Fig 4.
    Softmax,
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Activation::None => write!(f, "linear"),
            Activation::Relu => write!(f, "relu"),
            Activation::Softmax => write!(f, "softmax"),
        }
    }
}

/// The computational kind of a layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// 2-D convolution with fused activation and optional fused
    /// normalization.
    Conv2d {
        /// Number of output channels (filters).
        out_channels: u32,
        /// Square kernel side.
        kernel: u32,
        /// Stride.
        stride: u32,
        /// Symmetric zero padding.
        padding: u32,
        /// Channel groups (AlexNet uses 2 on conv2/4/5).
        groups: u32,
        /// Fused activation.
        activation: Activation,
        /// Fused batch normalization (all conv layers of the search space).
        batch_norm: bool,
        /// Fused local response normalization (AlexNet conv1/conv2).
        local_response_norm: bool,
    },
    /// 2-D max pooling.
    MaxPool2d {
        /// Square kernel side.
        kernel: u32,
        /// Stride.
        stride: u32,
    },
    /// 2-D average pooling. `kernel == input spatial size` gives global
    /// average pooling (GAP), the modern FC-free classifier head.
    AvgPool2d {
        /// Square kernel side.
        kernel: u32,
        /// Stride.
        stride: u32,
    },
    /// Fully connected layer with fused activation; requires a flat input.
    Dense {
        /// Number of output features.
        out_features: u32,
        /// Fused activation.
        activation: Activation,
    },
    /// Reshape to a flat vector; zero cost, size unchanged.
    Flatten,
    /// Dropout; zero inference cost, size unchanged. Kept so search-space
    /// architectures can carry training-time structure.
    Dropout {
        /// Drop probability in `[0, 1)`, in per-mille to stay `Eq`/`Hash`.
        permille: u16,
    },
}

/// A named layer: the unit of the per-layer analysis and the granularity at
/// which the network can be split between edge and cloud.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layer {
    name: String,
    kind: LayerKind,
}

impl Layer {
    /// Creates a layer.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        Layer {
            name: name.into(),
            kind,
        }
    }

    /// Convenience constructor for a convolution with ReLU and batch norm
    /// (the search-space default).
    pub fn conv(name: impl Into<String>, out_channels: u32, kernel: u32, padding: u32) -> Self {
        Layer::new(
            name,
            LayerKind::Conv2d {
                out_channels,
                kernel,
                stride: 1,
                padding,
                groups: 1,
                activation: Activation::Relu,
                batch_norm: true,
                local_response_norm: false,
            },
        )
    }

    /// Convenience constructor for 2×2 stride-2 max pooling (the search
    /// space's optional block pooling).
    pub fn max_pool2(name: impl Into<String>) -> Self {
        Layer::new(
            name,
            LayerKind::MaxPool2d {
                kernel: 2,
                stride: 2,
            },
        )
    }

    /// Convenience constructor for global average pooling over the given
    /// spatial size (the FC-free classifier head of NiN/SqueezeNet-style
    /// models).
    pub fn global_avg_pool(name: impl Into<String>, spatial: u32) -> Self {
        Layer::new(
            name,
            LayerKind::AvgPool2d {
                kernel: spatial,
                stride: 1,
            },
        )
    }

    /// Convenience constructor for a fully connected layer with ReLU.
    pub fn dense(name: impl Into<String>, out_features: u32) -> Self {
        Layer::new(
            name,
            LayerKind::Dense {
                out_features,
                activation: Activation::Relu,
            },
        )
    }

    /// The layer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer's kind.
    pub fn kind(&self) -> &LayerKind {
        &self.kind
    }

    /// `true` if the layer performs trainable computation (conv or dense) —
    /// these dominate latency; pooling is cheap, flatten/dropout are free.
    pub fn is_compute(&self) -> bool {
        matches!(
            self.kind,
            LayerKind::Conv2d { .. } | LayerKind::Dense { .. }
        )
    }

    /// Validates the layer's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] for zero kernels/strides/output
    /// sizes or inconsistent group counts.
    pub fn validate(&self) -> Result<(), NnError> {
        let invalid = |reason: String| NnError::InvalidLayer {
            layer: self.name.clone(),
            reason,
        };
        match &self.kind {
            LayerKind::Conv2d {
                out_channels,
                kernel,
                stride,
                groups,
                ..
            } => {
                if *out_channels == 0 {
                    return Err(invalid("zero output channels".into()));
                }
                if *kernel == 0 {
                    return Err(invalid("zero kernel".into()));
                }
                if *stride == 0 {
                    return Err(invalid("zero stride".into()));
                }
                if *groups == 0 {
                    return Err(invalid("zero groups".into()));
                }
                if out_channels % groups != 0 {
                    return Err(invalid(format!(
                        "groups {groups} does not divide out_channels {out_channels}"
                    )));
                }
            }
            LayerKind::MaxPool2d { kernel, stride } | LayerKind::AvgPool2d { kernel, stride } => {
                if *kernel == 0 {
                    return Err(invalid("zero kernel".into()));
                }
                if *stride == 0 {
                    return Err(invalid("zero stride".into()));
                }
            }
            LayerKind::Dense { out_features, .. } => {
                if *out_features == 0 {
                    return Err(invalid("zero output features".into()));
                }
            }
            LayerKind::Flatten => {}
            LayerKind::Dropout { permille } => {
                if *permille >= 1000 {
                    return Err(invalid(format!(
                        "dropout probability {permille}‰ must be < 1000‰"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Computes the output shape for a given input shape (floor convention
    /// for spatial reductions).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the layer cannot consume the
    /// shape (kernel larger than padded input, dense on non-flat input,
    /// group count not dividing input channels).
    pub fn output_shape(&self, input: &TensorShape) -> Result<TensorShape, NnError> {
        let mismatch = |reason: String| NnError::ShapeMismatch {
            layer: self.name.clone(),
            input: *input,
            reason,
        };
        match &self.kind {
            LayerKind::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                groups,
                ..
            } => {
                if !input.channels().is_multiple_of(*groups) {
                    return Err(mismatch(format!(
                        "groups {groups} does not divide input channels {}",
                        input.channels()
                    )));
                }
                let h = conv_out_dim(input.height(), *kernel, *stride, *padding)
                    .ok_or_else(|| mismatch(format!("kernel {kernel} exceeds padded height")))?;
                let w = conv_out_dim(input.width(), *kernel, *stride, *padding)
                    .ok_or_else(|| mismatch(format!("kernel {kernel} exceeds padded width")))?;
                Ok(TensorShape::new(*out_channels, h, w))
            }
            LayerKind::MaxPool2d { kernel, stride } | LayerKind::AvgPool2d { kernel, stride } => {
                let h = conv_out_dim(input.height(), *kernel, *stride, 0)
                    .ok_or_else(|| mismatch(format!("pool kernel {kernel} exceeds height")))?;
                let w = conv_out_dim(input.width(), *kernel, *stride, 0)
                    .ok_or_else(|| mismatch(format!("pool kernel {kernel} exceeds width")))?;
                Ok(TensorShape::new(input.channels(), h, w))
            }
            LayerKind::Dense { out_features, .. } => {
                if !input.is_flat() {
                    return Err(mismatch(
                        "dense layer requires a flat input; insert a Flatten layer".into(),
                    ));
                }
                Ok(TensorShape::flat(*out_features))
            }
            LayerKind::Flatten => Ok(input.flattened()),
            LayerKind::Dropout { .. } => Ok(*input),
        }
    }

    /// Multiply-accumulate operations performed on the given input.
    ///
    /// Pooling, flatten, and dropout perform no MACs; their (small) cost is
    /// captured by the performance models through data-movement features.
    pub fn macs(&self, input: &TensorShape) -> u64 {
        match &self.kind {
            LayerKind::Conv2d { kernel, groups, .. } => {
                let out = match self.output_shape(input) {
                    Ok(s) => s,
                    Err(_) => return 0,
                };
                let in_ch_per_group = (input.channels() / groups) as u64;
                out.num_elements() * in_ch_per_group * (*kernel as u64) * (*kernel as u64)
            }
            LayerKind::Dense { out_features, .. } => input.num_elements() * (*out_features as u64),
            LayerKind::MaxPool2d { .. }
            | LayerKind::AvgPool2d { .. }
            | LayerKind::Flatten
            | LayerKind::Dropout { .. } => 0,
        }
    }

    /// Number of trainable parameters given the input shape (weights +
    /// biases + fused-normalization scale/shift).
    pub fn params(&self, input: &TensorShape) -> u64 {
        match &self.kind {
            LayerKind::Conv2d {
                out_channels,
                kernel,
                groups,
                batch_norm,
                ..
            } => {
                let in_ch_per_group = (input.channels() / groups) as u64;
                let weights =
                    in_ch_per_group * (*kernel as u64) * (*kernel as u64) * (*out_channels as u64);
                let bias = *out_channels as u64;
                let bn = if *batch_norm {
                    2 * (*out_channels as u64)
                } else {
                    0
                };
                weights + bias + bn
            }
            LayerKind::Dense { out_features, .. } => {
                input.num_elements() * (*out_features as u64) + (*out_features as u64)
            }
            LayerKind::MaxPool2d { .. }
            | LayerKind::AvgPool2d { .. }
            | LayerKind::Flatten
            | LayerKind::Dropout { .. } => 0,
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            LayerKind::Conv2d {
                out_channels,
                kernel,
                stride,
                ..
            } => write!(
                f,
                "{}: conv {}x{}/{} -> {} ch",
                self.name, kernel, kernel, stride, out_channels
            ),
            LayerKind::MaxPool2d { kernel, stride } => {
                write!(f, "{}: maxpool {}x{}/{}", self.name, kernel, kernel, stride)
            }
            LayerKind::AvgPool2d { kernel, stride } => {
                write!(f, "{}: avgpool {}x{}/{}", self.name, kernel, kernel, stride)
            }
            LayerKind::Dense { out_features, .. } => {
                write!(f, "{}: dense -> {}", self.name, out_features)
            }
            LayerKind::Flatten => write!(f, "{}: flatten", self.name),
            LayerKind::Dropout { permille } => {
                write!(f, "{}: dropout {:.1}%", self.name, *permille as f64 / 10.0)
            }
        }
    }
}

/// `floor((dim + 2*padding - kernel)/stride) + 1`, or `None` when the kernel
/// does not fit in the padded input.
fn conv_out_dim(dim: u32, kernel: u32, stride: u32, padding: u32) -> Option<u32> {
    let padded = dim as i64 + 2 * padding as i64;
    let span = padded - kernel as i64;
    if span < 0 {
        return None;
    }
    Some((span as u32) / stride + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv1_alexnet() -> Layer {
        Layer::new(
            "conv1",
            LayerKind::Conv2d {
                out_channels: 96,
                kernel: 11,
                stride: 4,
                padding: 2,
                groups: 1,
                activation: Activation::Relu,
                batch_norm: false,
                local_response_norm: true,
            },
        )
    }

    #[test]
    fn alexnet_conv1_shape() {
        let input = TensorShape::new(3, 224, 224);
        let out = conv1_alexnet().output_shape(&input).unwrap();
        assert_eq!(out, TensorShape::new(96, 55, 55));
    }

    #[test]
    fn alexnet_pool_shape() {
        let pool = Layer::new(
            "pool1",
            LayerKind::MaxPool2d {
                kernel: 3,
                stride: 2,
            },
        );
        let out = pool.output_shape(&TensorShape::new(96, 55, 55)).unwrap();
        assert_eq!(out, TensorShape::new(96, 27, 27));
    }

    #[test]
    fn conv_macs_known_value() {
        // AlexNet conv1: 55*55*96 output elems * 3 in-ch * 11*11.
        let input = TensorShape::new(3, 224, 224);
        let macs = conv1_alexnet().macs(&input);
        assert_eq!(macs, 55 * 55 * 96 * 3 * 11 * 11); // 105,415,200
    }

    #[test]
    fn grouped_conv_halves_macs_and_params() {
        let mk = |groups| {
            Layer::new(
                "conv2",
                LayerKind::Conv2d {
                    out_channels: 256,
                    kernel: 5,
                    stride: 1,
                    padding: 2,
                    groups,
                    activation: Activation::Relu,
                    batch_norm: false,
                    local_response_norm: false,
                },
            )
        };
        let input = TensorShape::new(96, 27, 27);
        assert_eq!(mk(1).macs(&input), 2 * mk(2).macs(&input));
        // params: weights halve, bias does not.
        let p1 = mk(1).params(&input);
        let p2 = mk(2).params(&input);
        assert_eq!(p1 - 256, 2 * (p2 - 256));
    }

    #[test]
    fn dense_requires_flat_input() {
        let fc = Layer::dense("fc6", 4096);
        let err = fc.output_shape(&TensorShape::new(256, 6, 6)).unwrap_err();
        assert!(matches!(err, NnError::ShapeMismatch { .. }));
        let out = fc.output_shape(&TensorShape::flat(9216)).unwrap();
        assert_eq!(out, TensorShape::flat(4096));
    }

    #[test]
    fn dense_macs_and_params() {
        let fc = Layer::dense("fc6", 4096);
        let input = TensorShape::flat(9216);
        assert_eq!(fc.macs(&input), 9216 * 4096);
        assert_eq!(fc.params(&input), 9216 * 4096 + 4096);
    }

    #[test]
    fn flatten_and_dropout_are_free() {
        let input = TensorShape::new(256, 6, 6);
        let flat = Layer::new("flat", LayerKind::Flatten);
        assert_eq!(flat.macs(&input), 0);
        assert_eq!(flat.params(&input), 0);
        assert_eq!(flat.output_shape(&input).unwrap(), TensorShape::flat(9216));
        let drop = Layer::new("drop", LayerKind::Dropout { permille: 500 });
        assert_eq!(drop.output_shape(&input).unwrap(), input);
        assert_eq!(drop.macs(&input), 0);
    }

    #[test]
    fn batch_norm_adds_params() {
        let with_bn = Layer::conv("c", 64, 3, 1);
        let without = Layer::new(
            "c",
            LayerKind::Conv2d {
                out_channels: 64,
                kernel: 3,
                stride: 1,
                padding: 1,
                groups: 1,
                activation: Activation::Relu,
                batch_norm: false,
                local_response_norm: false,
            },
        );
        let input = TensorShape::new(3, 32, 32);
        assert_eq!(with_bn.params(&input), without.params(&input) + 2 * 64);
    }

    #[test]
    fn validate_catches_bad_params() {
        let bad = Layer::new(
            "bad",
            LayerKind::Conv2d {
                out_channels: 0,
                kernel: 3,
                stride: 1,
                padding: 0,
                groups: 1,
                activation: Activation::None,
                batch_norm: false,
                local_response_norm: false,
            },
        );
        assert!(matches!(bad.validate(), Err(NnError::InvalidLayer { .. })));
        let bad_groups = Layer::new(
            "bad",
            LayerKind::Conv2d {
                out_channels: 10,
                kernel: 3,
                stride: 1,
                padding: 0,
                groups: 3,
                activation: Activation::None,
                batch_norm: false,
                local_response_norm: false,
            },
        );
        assert!(bad_groups.validate().is_err());
        assert!(Layer::new("d", LayerKind::Dropout { permille: 1000 })
            .validate()
            .is_err());
        assert!(Layer::conv("ok", 8, 3, 1).validate().is_ok());
    }

    #[test]
    fn kernel_too_large_errors() {
        let conv = Layer::conv("c", 8, 7, 0);
        assert!(conv.output_shape(&TensorShape::new(3, 5, 5)).is_err());
    }

    #[test]
    fn avg_pool_shapes_and_costs() {
        let gap = Layer::global_avg_pool("gap", 6);
        let input = TensorShape::new(256, 6, 6);
        assert_eq!(
            gap.output_shape(&input).unwrap(),
            TensorShape::new(256, 1, 1)
        );
        assert_eq!(gap.macs(&input), 0);
        assert_eq!(gap.params(&input), 0);
        assert!(format!("{gap}").contains("avgpool"));
        let avg = Layer::new(
            "a",
            LayerKind::AvgPool2d {
                kernel: 2,
                stride: 2,
            },
        );
        assert_eq!(
            avg.output_shape(&TensorShape::new(8, 8, 8)).unwrap(),
            TensorShape::new(8, 4, 4)
        );
        assert!(Layer::new(
            "bad",
            LayerKind::AvgPool2d {
                kernel: 0,
                stride: 1
            }
        )
        .validate()
        .is_err());
    }

    #[test]
    fn display_mentions_name() {
        assert!(format!("{}", Layer::dense("fc6", 4096)).contains("fc6"));
        assert!(format!("{}", Layer::max_pool2("p")).contains("maxpool"));
        assert_eq!(format!("{}", Activation::Relu), "relu");
    }
}
