//! Reference architectures: AlexNet (the motivational example of §II) and
//! VGG16 (the ancestor of the Fig 4 search space).
//!
//! Layer granularity follows the paper's Fig 1: activation / normalization /
//! dropout are fused, so AlexNet appears as
//! `conv1, pool1, conv2, pool2, conv3, conv4, conv5, pool5, fc6, fc7, fc8`
//! (plus an explicit zero-cost `flatten` before `fc6`).

use crate::layer::{Activation, Layer, LayerKind};
use crate::network::{Network, NetworkBuilder};
use crate::tensor::TensorShape;

fn conv(
    name: &str,
    out_channels: u32,
    kernel: u32,
    stride: u32,
    padding: u32,
    groups: u32,
    lrn: bool,
) -> Layer {
    Layer::new(
        name,
        LayerKind::Conv2d {
            out_channels,
            kernel,
            stride,
            padding,
            groups,
            activation: Activation::Relu,
            batch_norm: false,
            local_response_norm: lrn,
        },
    )
}

fn pool3_2(name: &str) -> Layer {
    Layer::new(
        name,
        LayerKind::MaxPool2d {
            kernel: 3,
            stride: 2,
        },
    )
}

fn fc(name: &str, out_features: u32, softmax: bool) -> Layer {
    Layer::new(
        name,
        LayerKind::Dense {
            out_features,
            activation: if softmax {
                Activation::Softmax
            } else {
                Activation::Relu
            },
        },
    )
}

/// AlexNet (Krizhevsky et al., 2012) with the paper's fused-layer
/// granularity and a 224×224×3 `u8` input (147 kB on the wire).
///
/// # Examples
///
/// ```
/// let net = lens_nn::zoo::alexnet();
/// let a = net.analyze().expect("alexnet is valid");
/// // Pool5's output feature map is ~4x smaller than the input image.
/// assert_eq!(a.layer("pool5").unwrap().output_bytes.get(), 36_864);
/// assert_eq!(a.input_bytes().get(), 150_528);
/// ```
pub fn alexnet() -> Network {
    NetworkBuilder::new("alexnet", TensorShape::new(3, 224, 224))
        .layer(conv("conv1", 96, 11, 4, 2, 1, true))
        .layer(pool3_2("pool1"))
        .layer(conv("conv2", 256, 5, 1, 2, 2, true))
        .layer(pool3_2("pool2"))
        .layer(conv("conv3", 384, 3, 1, 1, 1, false))
        .layer(conv("conv4", 384, 3, 1, 1, 2, false))
        .layer(conv("conv5", 256, 3, 1, 1, 2, false))
        .layer(pool3_2("pool5"))
        .flatten()
        .layer(fc("fc6", 4096, false))
        .layer(fc("fc7", 4096, false))
        .layer(fc("fc8", 1000, true))
        .build()
        .expect("alexnet definition is valid")
}

/// VGG16 (Simonyan & Zisserman, 2015): 13 convolutions in 5 blocks plus 3
/// fully connected layers, 224×224×3 `u8` input.
pub fn vgg16() -> Network {
    let c = |name: &str, ch: u32| conv(name, ch, 3, 1, 1, 1, false);
    let p = |name: &str| Layer::max_pool2(name);
    NetworkBuilder::new("vgg16", TensorShape::new(3, 224, 224))
        .layer(c("conv1_1", 64))
        .layer(c("conv1_2", 64))
        .layer(p("pool1"))
        .layer(c("conv2_1", 128))
        .layer(c("conv2_2", 128))
        .layer(p("pool2"))
        .layer(c("conv3_1", 256))
        .layer(c("conv3_2", 256))
        .layer(c("conv3_3", 256))
        .layer(p("pool3"))
        .layer(c("conv4_1", 512))
        .layer(c("conv4_2", 512))
        .layer(c("conv4_3", 512))
        .layer(p("pool4"))
        .layer(c("conv5_1", 512))
        .layer(c("conv5_2", 512))
        .layer(c("conv5_3", 512))
        .layer(p("pool5"))
        .flatten()
        .layer(fc("fc6", 4096, false))
        .layer(fc("fc7", 4096, false))
        .layer(fc("fc8", 1000, true))
        .build()
        .expect("vgg16 definition is valid")
}

/// A Network-in-Network-style model: all-convolutional with 1×1
/// "mlpconv" layers and a global-average-pooling classifier head — no
/// fully connected layers at all. Included because GAP heads shrink the
/// feature map to a few kilobytes, giving the partition analysis a very
/// different profile from the FC-heavy AlexNet/VGG16.
pub fn nin() -> Network {
    let mlpconv = |builder: NetworkBuilder, b: u32, ch: u32, k: u32, stride: u32| {
        let conv_main = Layer::new(
            format!("conv{b}"),
            LayerKind::Conv2d {
                out_channels: ch,
                kernel: k,
                stride,
                padding: k / 2,
                groups: 1,
                activation: Activation::Relu,
                batch_norm: false,
                local_response_norm: false,
            },
        );
        builder
            .layer(conv_main)
            .layer(conv(&format!("cccp{b}a"), ch, 1, 1, 0, 1, false))
            .layer(conv(&format!("cccp{b}b"), ch, 1, 1, 0, 1, false))
    };
    let mut builder = NetworkBuilder::new("nin", TensorShape::new(3, 224, 224));
    builder = mlpconv(builder, 1, 96, 11, 4);
    builder = builder.layer(pool3_2("pool1"));
    builder = mlpconv(builder, 2, 256, 5, 1);
    builder = builder.layer(pool3_2("pool2"));
    builder = mlpconv(builder, 3, 384, 3, 1);
    builder = builder.layer(pool3_2("pool3"));
    // Classifier block maps straight to class scores, then GAP + softmax.
    builder = builder
        .layer(conv("conv4-cls", 1000, 3, 1, 1, 1, false))
        .layer(Layer::global_avg_pool("gap", 6))
        .flatten();
    builder.build().expect("nin definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Bytes;

    #[test]
    fn alexnet_shapes_match_reference() {
        let a = alexnet().analyze().unwrap();
        let shape = |n: &str| a.layer(n).unwrap().output_shape;
        assert_eq!(shape("conv1"), TensorShape::new(96, 55, 55));
        assert_eq!(shape("pool1"), TensorShape::new(96, 27, 27));
        assert_eq!(shape("conv2"), TensorShape::new(256, 27, 27));
        assert_eq!(shape("pool2"), TensorShape::new(256, 13, 13));
        assert_eq!(shape("conv3"), TensorShape::new(384, 13, 13));
        assert_eq!(shape("conv5"), TensorShape::new(256, 13, 13));
        assert_eq!(shape("pool5"), TensorShape::new(256, 6, 6));
        assert_eq!(shape("fc6"), TensorShape::flat(4096));
        assert_eq!(shape("fc8"), TensorShape::flat(1000));
    }

    #[test]
    fn alexnet_param_count_close_to_61m() {
        // Canonical AlexNet has ~60.97M parameters (no BN in this model).
        let a = alexnet().analyze().unwrap();
        let params = a.total_params();
        assert!(
            (60_000_000..62_000_000).contains(&params),
            "unexpected AlexNet parameter count {params}"
        );
    }

    #[test]
    fn alexnet_fc_layers_dominate_weight_bytes() {
        let a = alexnet().analyze().unwrap();
        let fc_params: u64 = ["fc6", "fc7", "fc8"]
            .iter()
            .map(|n| a.layer(n).unwrap().params)
            .sum();
        assert!(
            fc_params * 10 > a.total_params() * 9,
            "FCs hold >90% of params"
        );
    }

    #[test]
    fn alexnet_feature_map_sizes_match_paper_claims() {
        // §II.A: every layer before pool5 has output >= input (147 kB);
        // pool5 and later are smaller; pool5 is ~4x smaller.
        let a = alexnet().analyze().unwrap();
        let input = a.input_bytes();
        assert_eq!(input, Bytes::new(150_528));
        for l in a.layers() {
            let before_pool5 = l.index < a.layer("pool5").unwrap().index;
            if before_pool5 {
                assert!(
                    l.output_bytes >= input,
                    "{} should be >= input ({} vs {})",
                    l.name,
                    l.output_bytes,
                    input
                );
            }
        }
        let pool5 = a.layer("pool5").unwrap().output_bytes;
        let ratio = input.get() as f64 / pool5.get() as f64;
        assert!((3.5..4.5).contains(&ratio), "pool5 ratio {ratio}");
        // Hence the viable partition points are pool5 and everything after.
        let viable = a.viable_partition_indices();
        assert_eq!(viable.first(), Some(&a.layer("pool5").unwrap().index));
    }

    #[test]
    fn alexnet_conv_macs_reference_values() {
        let a = alexnet().analyze().unwrap();
        let macs = |n: &str| a.layer(n).unwrap().macs;
        assert_eq!(macs("conv1"), 105_415_200);
        assert_eq!(macs("conv2"), 223_948_800); // grouped
        assert_eq!(macs("conv3"), 149_520_384);
        assert_eq!(macs("fc6"), 37_748_736);
        assert_eq!(macs("fc7"), 16_777_216);
        assert_eq!(macs("fc8"), 4_096_000);
    }

    #[test]
    fn nin_is_fc_free_with_tiny_tail() {
        let a = nin().analyze().unwrap();
        // No dense layers at all.
        assert!(a
            .layers()
            .iter()
            .all(|l| !matches!(l.kind, crate::layer::LayerKind::Dense { .. })));
        // The GAP output is 1000 floats = ~3.9 kB, far below the input.
        let gap = a.layer("gap").unwrap();
        assert_eq!(gap.output_shape, TensorShape::new(1000, 1, 1));
        assert!(gap.output_bytes < Bytes::new(5000));
        // Late layers are viable partition points.
        let viable = a.viable_partition_indices();
        assert!(viable.contains(&gap.index));
        // All-conv models are an order of magnitude lighter than AlexNet.
        let params = a.total_params();
        assert!((4_000_000..9_000_000).contains(&params), "params {params}");
        assert!(params * 10 < alexnet().analyze().unwrap().total_params());
    }

    #[test]
    fn vgg16_shapes_and_params() {
        let a = vgg16().analyze().unwrap();
        assert_eq!(
            a.layer("pool5").unwrap().output_shape,
            TensorShape::new(512, 7, 7)
        );
        assert_eq!(a.output_shape(), TensorShape::flat(1000));
        // Canonical VGG16: ~138.36M params.
        let params = a.total_params();
        assert!(
            (137_000_000..140_000_000).contains(&params),
            "unexpected VGG16 parameter count {params}"
        );
        // ~15.5G MACs.
        let macs = a.total_macs();
        assert!(
            (15_000_000_000..16_000_000_000).contains(&macs),
            "unexpected VGG16 MAC count {macs}"
        );
    }
}
