//! Tensor shapes and element types.
//!
//! Shapes are channel-height-width (CHW); fully connected activations are
//! represented as `(features, 1, 1)` so every layer boundary has a
//! well-defined feature-map size — the quantity Algorithm 1 compares against
//! the input size when identifying candidate partition points.

use crate::units::Bytes;
use std::fmt;

/// Element type of a tensor, determining its wire size.
///
/// The paper's sizes imply the camera image is shipped as `u8` (147 kB for
/// 224×224×3) while intermediate feature maps are `f32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DType {
    /// 8-bit unsigned integer (1 byte/element) — raw input images.
    U8,
    /// 32-bit float (4 bytes/element) — feature maps and weights.
    #[default]
    F32,
}

impl DType {
    /// Bytes per element.
    pub const fn size_of(self) -> u64 {
        match self {
            DType::U8 => 1,
            DType::F32 => 4,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DType::U8 => write!(f, "u8"),
            DType::F32 => write!(f, "f32"),
        }
    }
}

/// A channel-height-width tensor shape.
///
/// # Examples
///
/// ```
/// use lens_nn::tensor::{DType, TensorShape};
///
/// let image = TensorShape::new(3, 224, 224);
/// assert_eq!(image.num_elements(), 150_528);
/// assert_eq!(image.size_bytes(DType::U8).get(), 150_528);   // 147 kB
/// assert_eq!(image.size_bytes(DType::F32).get(), 602_112);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorShape {
    channels: u32,
    height: u32,
    width: u32,
}

impl TensorShape {
    /// Creates a CHW shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(channels: u32, height: u32, width: u32) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "tensor dimensions must be positive, got {channels}x{height}x{width}"
        );
        TensorShape {
            channels,
            height,
            width,
        }
    }

    /// Creates a flat feature-vector shape `(features, 1, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `features` is zero.
    pub fn flat(features: u32) -> Self {
        TensorShape::new(features, 1, 1)
    }

    /// Number of channels.
    pub const fn channels(&self) -> u32 {
        self.channels
    }

    /// Spatial height.
    pub const fn height(&self) -> u32 {
        self.height
    }

    /// Spatial width.
    pub const fn width(&self) -> u32 {
        self.width
    }

    /// `true` if the shape is a flat vector `(n, 1, 1)`.
    pub const fn is_flat(&self) -> bool {
        self.height == 1 && self.width == 1
    }

    /// Total element count.
    pub fn num_elements(&self) -> u64 {
        self.channels as u64 * self.height as u64 * self.width as u64
    }

    /// Size on the wire for the given element type.
    pub fn size_bytes(&self, dtype: DType) -> Bytes {
        Bytes::new(self.num_elements() * dtype.size_of())
    }

    /// Returns the flattened version of this shape.
    pub fn flattened(&self) -> TensorShape {
        TensorShape::flat(self.num_elements() as u32)
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_input_size_is_147_kb() {
        let image = TensorShape::new(3, 224, 224);
        assert_eq!(image.size_bytes(DType::U8).get(), 150_528);
        assert!((image.size_bytes(DType::U8).kib() - 147.0).abs() < 1e-9);
    }

    #[test]
    fn flat_shapes() {
        let v = TensorShape::flat(4096);
        assert!(v.is_flat());
        assert_eq!(v.num_elements(), 4096);
        assert_eq!(v.size_bytes(DType::F32).get(), 16_384);
    }

    #[test]
    fn flattened_preserves_elements() {
        let t = TensorShape::new(256, 6, 6);
        assert_eq!(t.flattened().num_elements(), t.num_elements());
        assert!(t.flattened().is_flat());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimension_panics() {
        TensorShape::new(0, 4, 4);
    }

    #[test]
    fn display_shows_chw() {
        assert_eq!(format!("{}", TensorShape::new(96, 55, 55)), "96x55x55");
        assert_eq!(format!("{}", DType::F32), "f32");
    }

    proptest! {
        #[test]
        fn prop_size_scales_with_dtype(c in 1u32..64, h in 1u32..64, w in 1u32..64) {
            let t = TensorShape::new(c, h, w);
            prop_assert_eq!(
                t.size_bytes(DType::F32).get(),
                4 * t.size_bytes(DType::U8).get()
            );
            prop_assert_eq!(t.size_bytes(DType::U8).get(), t.num_elements());
        }
    }
}
