//! Unit-bearing newtypes used throughout the workspace.
//!
//! The LENS cost equations (§III.A) mix data sizes, throughputs, latencies,
//! powers, and energies; newtypes keep those from being confused (C-NEWTYPE)
//! and centralize the unit conventions:
//!
//! * [`Bytes`] — data sizes; transmission converts at 8 bits/byte.
//! * [`Mbps`] — uplink throughput `t_u`, in 10⁶ bits per second.
//! * [`Millis`] — latency, milliseconds.
//! * [`Milliwatts`] — power.
//! * [`Millijoules`] — energy (1 mW·s = 1 mJ).
//!
//! # Examples
//!
//! ```
//! use lens_nn::units::{Bytes, Mbps};
//!
//! // L_Tx = Size(data) / t_u   (Eq. 5)
//! let image = Bytes::new(150_528);           // 224*224*3 at u8
//! let latency = image.tx_latency(Mbps::new(1.0));
//! assert!((latency.get() - 1_204.224).abs() < 1e-9); // ~1.2 s at 1 Mbps
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

macro_rules! float_unit {
    ($(#[$doc:meta])* $name:ident, $suffix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value.
            ///
            /// # Panics
            ///
            /// Panics if the value is negative or not finite.
            pub fn new(value: f64) -> Self {
                assert!(
                    value.is_finite() && value >= 0.0,
                    concat!(stringify!($name), " must be finite and non-negative, got {}"),
                    value
                );
                $name(value)
            }

            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Returns the raw value.
            pub fn get(self) -> f64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{:.3} {}", self.0, $suffix)
                }
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            /// Saturating at zero: these quantities are non-negative.
            fn sub(self, rhs: $name) -> $name {
                $name((self.0 - rhs.0).max(0.0))
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, s: f64) -> $name {
                $name::new(self.0 * s)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name::ZERO, |acc, x| acc + x)
            }
        }
    };
}

float_unit!(
    /// Latency in milliseconds.
    Millis,
    "ms"
);
float_unit!(
    /// Energy in millijoules (1 mW·s = 1 mJ).
    Millijoules,
    "mJ"
);
float_unit!(
    /// Power in milliwatts.
    Milliwatts,
    "mW"
);

impl Mul<Millis> for Milliwatts {
    type Output = Millijoules;

    /// Energy = power × time. `mW × ms = µJ`, so divide by 1000 for mJ.
    fn mul(self, t: Millis) -> Millijoules {
        Millijoules::new(self.0 * t.get() / 1000.0)
    }
}

impl Mul<Milliwatts> for Millis {
    type Output = Millijoules;

    fn mul(self, p: Milliwatts) -> Millijoules {
        p * self
    }
}

/// Uplink throughput `t_u` in megabits per second (10⁶ bit/s).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Mbps(f64);

impl Mbps {
    /// Wraps a raw throughput.
    ///
    /// # Panics
    ///
    /// Panics if the value is not finite or not strictly positive — a zero
    /// throughput would make transmission latency infinite.
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value > 0.0,
            "Mbps must be finite and positive, got {value}"
        );
        Mbps(value)
    }

    /// Returns the raw value in Mbit/s.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Mbps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} Mbps", prec, self.0)
        } else {
            write!(f, "{:.2} Mbps", self.0)
        }
    }
}

/// A data size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    /// The zero size.
    pub const ZERO: Bytes = Bytes(0);

    /// Wraps a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Returns the raw byte count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Size in bits.
    pub const fn bits(self) -> u64 {
        self.0 * 8
    }

    /// Size in megabits (10⁶ bits), the unit `t_u` divides.
    pub fn megabits(self) -> f64 {
        self.bits() as f64 / 1e6
    }

    /// Size in kilobytes (1024 bytes), the unit the paper quotes (147 kB).
    pub fn kib(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Transmission latency `L_Tx = Size(data)/t_u` (Eq. 5).
    pub fn tx_latency(self, throughput: Mbps) -> Millis {
        Millis::new(self.megabits() / throughput.get() * 1000.0)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 {
            write!(f, "{:.1} MiB", self.0 as f64 / (1024.0 * 1024.0))
        } else if self.0 >= 1024 {
            write!(f, "{:.1} KiB", self.kib())
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |acc, x| acc + x)
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, s: u64) -> Bytes {
        Bytes(self.0 * s)
    }
}

impl Div<Mbps> for Bytes {
    type Output = Millis;

    /// Shorthand for [`Bytes::tx_latency`].
    fn div(self, t: Mbps) -> Millis {
        self.tx_latency(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_latency_matches_eq5() {
        // 147 kB image at 1 Mbps: 150528 B * 8 / 1e6 = 1.204224 s.
        let image = Bytes::new(150_528);
        let l = image.tx_latency(Mbps::new(1.0));
        assert!((l.get() - 1204.224).abs() < 1e-9);
        // Division operator is the same computation.
        assert_eq!(l, image / Mbps::new(1.0));
    }

    #[test]
    fn energy_is_power_times_time() {
        let e = Milliwatts::new(2000.0) * Millis::new(500.0);
        assert!((e.get() - 1000.0).abs() < 1e-12); // 2 W for 0.5 s = 1 J
        let e2 = Millis::new(500.0) * Milliwatts::new(2000.0);
        assert_eq!(e, e2);
    }

    #[test]
    fn units_add_and_sum() {
        let total: Millis = [Millis::new(1.0), Millis::new(2.5)].into_iter().sum();
        assert!((total.get() - 3.5).abs() < 1e-12);
        let mut acc = Millijoules::ZERO;
        acc += Millijoules::new(2.0);
        assert_eq!(acc, Millijoules::new(2.0));
    }

    #[test]
    fn sub_saturates_at_zero() {
        let d = Millis::new(1.0) - Millis::new(5.0);
        assert_eq!(d, Millis::ZERO);
    }

    #[test]
    #[should_panic(expected = "must be finite and non-negative")]
    fn negative_latency_panics() {
        Millis::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite and positive")]
    fn zero_throughput_panics() {
        Mbps::new(0.0);
    }

    #[test]
    fn bytes_conversions() {
        let b = Bytes::new(150_528);
        assert_eq!(b.bits(), 1_204_224);
        assert!((b.kib() - 147.0).abs() < 1e-12);
        assert!((b.megabits() - 1.204224).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Bytes::new(512)), "512 B");
        assert_eq!(format!("{}", Bytes::new(150_528)), "147.0 KiB");
        assert_eq!(format!("{}", Bytes::new(3 * 1024 * 1024)), "3.0 MiB");
        assert_eq!(format!("{:.1}", Millis::new(1.25)), "1.2 ms");
        assert_eq!(format!("{}", Mbps::new(3.0)), "3.00 Mbps");
        assert_eq!(format!("{:.0}", Milliwatts::new(1288.04)), "1288 mW");
    }

    #[test]
    fn bytes_ordering_and_arithmetic() {
        assert!(Bytes::new(1) < Bytes::new(2));
        assert_eq!(Bytes::new(3) + Bytes::new(4), Bytes::new(7));
        assert_eq!(Bytes::new(3) * 4, Bytes::new(12));
        let total: Bytes = [Bytes::new(1), Bytes::new(2)].into_iter().sum();
        assert_eq!(total, Bytes::new(3));
    }
}
