//! **LENS** — Layer Distribution Enabled Neural Architecture Search in
//! Edge-Cloud Hierarchies.
//!
//! A from-scratch Rust reproduction of Odema et al., DAC 2021
//! (arXiv:2107.09309). This facade crate re-exports the whole workspace
//! under one roof:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the LENS methodology: Algorithm 1 objectives, Algorithm 2 MOBO search, the Traditional baseline, reports |
//! | [`nn`] | DNN representation, shape/MAC analysis, AlexNet & VGG16 |
//! | [`space`] | the Fig 4 VGG16-derived search space behind a generic `SearchSpace` trait |
//! | [`device`] | simulated Jetson TX2 testbed + per-layer performance predictors |
//! | [`wireless`] | Eq. 3–6 communication costs, LTE/WiFi/3G power models, regions, traces |
//! | [`gp`] | Gaussian-process MOBO (Dragonfly stand-in) |
//! | [`pareto`] | dominance, frontiers, coverage metrics, hypervolume |
//! | [`accuracy`] | CIFAR-10 error surrogate + a real MLP trainer |
//! | [`runtime`] | deployment options, `t_u` thresholds, trace-driven Fig 8 simulator |
//! | [`fleet`] | sharded discrete-event fleet simulator: device populations vs a finite shared cloud |
//! | [`telemetry`] | deterministic observability: sim-time flight recorder, fixed-point metrics timelines, engine profiling |
//! | [`num`] | dense linear algebra, ridge regression, distributions |
//!
//! # Quickstart
//!
//! ```
//! use lens::prelude::*;
//!
//! # fn main() -> Result<(), lens::core::LensError> {
//! // Design-time inputs: wireless technology + expected conditions.
//! let lens = Lens::builder()
//!     .technology(WirelessTechnology::Wifi)
//!     .expected_throughput(Mbps::new(3.0))
//!     .iterations(4)        // the paper runs 300
//!     .initial_samples(4)
//!     .seed(42)
//!     .build()?;
//! let outcome = lens.search()?;
//! for candidate in outcome.pareto_candidates() {
//!     println!("{} -> {}", candidate.encoding, candidate.objectives);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use lens_accuracy as accuracy;
pub use lens_core as core;
pub use lens_device as device;
pub use lens_fleet as fleet;
pub use lens_gp as gp;
pub use lens_nn as nn;
pub use lens_num as num;
pub use lens_pareto as pareto;
pub use lens_runtime as runtime;
pub use lens_space as space;
pub use lens_telemetry as telemetry;
pub use lens_wireless as wireless;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use lens_accuracy::{AccuracyEstimator, SurrogateAccuracy, TrainedAccuracy};
    pub use lens_core::{
        CriteriaCounts, FrontierComparison, Lens, LensError, Objectives, PartitionPolicy,
        SearchConfig, SearchOutcome,
    };
    pub use lens_device::{
        profile_network, DeviceProfile, LayerPerformanceModel, PerformancePredictor,
    };
    pub use lens_fleet::{
        AdmissionPolicy, ArrivalModel, Autoscaler, BackendConfig, BackendReport, BatchPolicy,
        CloudCapacity, CloudServing, CloudSimFidelity, DispatchPolicy, FailoverPolicy, FleetEngine,
        FleetPolicy, FleetReport, FleetScenario, OffloadRequest, PipelineSpec, QueueDiscipline,
        RegionMicrosim, RegionServing, RegionShare, ReplayMode, ScalerState, ScalingSignal,
        TailSummary, WorkloadCurve, MAX_PIPELINE_DEPTH,
    };
    pub use lens_nn::units::{Bytes, Mbps, Millijoules, Millis, Milliwatts};
    pub use lens_nn::{zoo, Network, NetworkBuilder, TensorShape};
    pub use lens_pareto::ParetoFront;
    pub use lens_runtime::{
        DeploymentKind, DeploymentPlanner, DominanceMap, Metric, RuntimeSimulator,
        ThroughputTracker,
    };
    pub use lens_space::{
        Architecture, Encoding, SearchSpace, StageBoundary, StageSegment, StageTier, StagedPlan,
        VggSpace,
    };
    pub use lens_telemetry::{
        BarrierPhase, EngineProfile, FlightRecorder, MetricsRegistry, RunTelemetry,
        TelemetryConfig, TraceEvent,
    };
    pub use lens_wireless::{
        GaussMarkov, Region, ThroughputTrace, TraceGenerator, TransferModel, WirelessLink,
        WirelessTechnology,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_key_types() {
        use crate::prelude::*;
        // Type-level smoke test: these names must resolve.
        let _tech: WirelessTechnology = WirelessTechnology::Wifi;
        let _space: VggSpace = VggSpace::for_cifar10();
        let _tracker = ThroughputTracker::last_sample();
        let _ = Lens::builder();
        let _ = FleetScenario::builder();
        let _mode: ReplayMode = ReplayMode::Auto;
        let _ = TelemetryConfig::default();
    }
}
