//! Staged split-inference plans: device → edge → cloud segments.
//!
//! The paper's layer-distribution decision picks *one* partition point and
//! ships everything after it to the cloud. Related work (Lin & Wang 2021's
//! communication-efficient separable networks; LCP's low-communication
//! parallelization) generalizes the cut to a *pipeline*: the network is
//! sliced into consecutive segments, the first runs on the device, the rest
//! ride successive serving tiers (edge, then cloud), and what dominates
//! placement is the activation tensor crossing each boundary — not the
//! compute inside a segment.
//!
//! [`StagedPlan`] is that pipeline, compiled from a
//! [`NetworkAnalysis`] by choosing an ascending
//! set of cut layers. Each boundary carries the exact byte size of the
//! activation tensor that crosses it ([`LayerAnalysis::output_bytes`]), so a
//! link model can price the transfers and move the optimal cut with link
//! quality — see `lens_wireless::TransferModel` and `docs/PIPELINES.md`.

use lens_nn::{LayerAnalysis, NetworkAnalysis};
use std::fmt;

use crate::SpaceError;

/// Where a plan segment executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageTier {
    /// The edge device itself (segment 0).
    Device,
    /// An intermediate serving tier between device and cloud.
    Edge,
    /// The final serving tier.
    Cloud,
}

impl fmt::Display for StageTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageTier::Device => write!(f, "device"),
            StageTier::Edge => write!(f, "edge"),
            StageTier::Cloud => write!(f, "cloud"),
        }
    }
}

/// One consecutive run of layers executing on a single tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSegment {
    /// The tier this segment runs on.
    pub tier: StageTier,
    /// Index of the first layer in the segment (inclusive).
    pub first_layer: usize,
    /// Index of the last layer in the segment (inclusive).
    pub last_layer: usize,
    /// Total multiply-accumulates across the segment's layers.
    pub macs: u64,
}

impl StageSegment {
    /// Number of layers in the segment.
    pub fn num_layers(&self) -> usize {
        self.last_layer - self.first_layer + 1
    }
}

/// One segment boundary: the activation tensor produced by `layer_name`
/// (layer `after_layer`) must move to the next tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageBoundary {
    /// Index of the layer whose output crosses the boundary.
    pub after_layer: usize,
    /// Name of that layer.
    pub layer_name: String,
    /// Exact wire size of the crossing activation tensor.
    pub bytes: u64,
}

/// A compiled staged split-inference plan.
///
/// Segment 0 always runs on the device; the remaining segments are the
/// *remote stages* of the pipeline (1 remote stage reproduces the paper's
/// single split; 2 gives device → edge → cloud). `boundaries[k]` is the
/// activation tensor between `segments[k]` and `segments[k+1]` — boundary 0
/// is the device uplink, boundaries 1.. are inter-stage transfers inside
/// the serving hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedPlan {
    segments: Vec<StageSegment>,
    boundaries: Vec<StageBoundary>,
}

impl StagedPlan {
    /// Compiles a plan from a network analysis and an ascending list of cut
    /// layers: segment `k` ends at `cuts[k]` (inclusive) and the final
    /// segment runs from the last cut to the end of the network. An empty
    /// `cuts` yields the fully-local single-segment plan.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::ConstraintViolated`] if the cuts are not
    /// strictly ascending or a cut leaves the final segment empty.
    pub fn compile(analysis: &NetworkAnalysis, cuts: &[usize]) -> Result<Self, SpaceError> {
        let layers = analysis.layers();
        let last = layers.len() - 1;
        let mut prev: Option<usize> = None;
        for &cut in cuts {
            if prev.is_some_and(|p| cut <= p) {
                return Err(SpaceError::ConstraintViolated(format!(
                    "cut layers must be strictly ascending, got {cuts:?}"
                )));
            }
            if cut >= last {
                return Err(SpaceError::ConstraintViolated(format!(
                    "cut at layer {cut} leaves an empty segment (network has {} layers)",
                    layers.len()
                )));
            }
            prev = Some(cut);
        }
        let num_segments = cuts.len() + 1;
        let mut segments = Vec::with_capacity(num_segments);
        let mut boundaries = Vec::with_capacity(cuts.len());
        let mut first = 0usize;
        for (k, bound) in cuts.iter().chain(std::iter::once(&last)).enumerate() {
            let tier = if k == 0 {
                StageTier::Device
            } else if k + 1 == num_segments {
                StageTier::Cloud
            } else {
                StageTier::Edge
            };
            segments.push(StageSegment {
                tier,
                first_layer: first,
                last_layer: *bound,
                macs: segment_macs(&layers[first..=*bound]),
            });
            if k < cuts.len() {
                let layer = &layers[*bound];
                boundaries.push(StageBoundary {
                    after_layer: *bound,
                    layer_name: layer.name.clone(),
                    bytes: layer.output_bytes.get(),
                });
            }
            first = bound + 1;
        }
        Ok(StagedPlan {
            segments,
            boundaries,
        })
    }

    /// Enumerates every plan with exactly `remote_stages` remote segments
    /// whose *first* cut is viable in the paper's sense (the uplink tensor
    /// is smaller than the network input — [`viable_partition_indices`]).
    /// Later cuts range freely over the remaining layers: inside the
    /// serving hierarchy a larger intermediate tensor is legal, just
    /// expensive, and the cost model decides. Plans come back in
    /// deterministic lexicographic cut order.
    ///
    /// [`viable_partition_indices`]: NetworkAnalysis::viable_partition_indices
    pub fn enumerate(analysis: &NetworkAnalysis, remote_stages: usize) -> Vec<StagedPlan> {
        if remote_stages == 0 {
            return vec![StagedPlan::compile(analysis, &[]).expect("empty cut list is valid")];
        }
        let last = analysis.layers().len() - 1;
        let first_cuts: Vec<usize> = analysis
            .viable_partition_indices()
            .into_iter()
            .filter(|&c| c + remote_stages <= last)
            .collect();
        let mut plans = Vec::new();
        let mut cuts = Vec::with_capacity(remote_stages);
        for first in first_cuts {
            cuts.clear();
            cuts.push(first);
            extend_cuts(analysis, &mut cuts, remote_stages, last, &mut plans);
        }
        plans
    }

    /// Picks the plan minimizing an integer cost, first minimum winning —
    /// deterministic for any cost function, which is why the cost is an
    /// integer: float scores could tie-break differently across platforms.
    pub fn best(plans: &[StagedPlan], cost: impl Fn(&StagedPlan) -> u128) -> Option<&StagedPlan> {
        plans
            .iter()
            .map(|p| (cost(p), p))
            .reduce(|best, cand| if cand.0 < best.0 { cand } else { best })
            .map(|(_, p)| p)
    }

    /// All segments, device first.
    pub fn segments(&self) -> &[StageSegment] {
        &self.segments
    }

    /// All boundaries; `boundaries()[0]` is the device uplink.
    pub fn boundaries(&self) -> &[StageBoundary] {
        &self.boundaries
    }

    /// Number of remote stages (segments past the device).
    pub fn remote_stages(&self) -> usize {
        self.segments.len() - 1
    }

    /// The device segment's multiply-accumulates.
    pub fn device_macs(&self) -> u64 {
        self.segments[0].macs
    }

    /// Bytes crossing the device uplink, if the plan offloads at all.
    pub fn uplink_bytes(&self) -> Option<u64> {
        self.boundaries.first().map(|b| b.bytes)
    }

    /// Byte sizes of the transfers *between remote stages* (excluding the
    /// device uplink) — the quantities a fleet pipeline prices per hop.
    pub fn remote_transfer_bytes(&self) -> Vec<u64> {
        self.boundaries.iter().skip(1).map(|b| b.bytes).collect()
    }

    /// Total bytes moved across every boundary, uplink included.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.boundaries.iter().map(|b| b.bytes).sum()
    }

    /// The cut layer indices, ascending.
    pub fn cut_layers(&self) -> Vec<usize> {
        self.boundaries.iter().map(|b| b.after_layer).collect()
    }
}

impl fmt::Display for StagedPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, seg) in self.segments.iter().enumerate() {
            if k > 0 {
                let b = &self.boundaries[k - 1];
                write!(f, " ={}B=> ", b.bytes)?;
            }
            write!(f, "{}[{}..={}]", seg.tier, seg.first_layer, seg.last_layer)?;
        }
        Ok(())
    }
}

/// Sums a segment's MACs, saturating rather than wrapping on absurd nets.
fn segment_macs(layers: &[LayerAnalysis]) -> u64 {
    layers
        .iter()
        .fold(0u64, |acc, l| acc.saturating_add(l.macs))
}

/// Depth-first extension of a cut prefix to exactly `remote_stages` cuts.
fn extend_cuts(
    analysis: &NetworkAnalysis,
    cuts: &mut Vec<usize>,
    remote_stages: usize,
    last: usize,
    plans: &mut Vec<StagedPlan>,
) {
    if cuts.len() == remote_stages {
        plans.push(StagedPlan::compile(analysis, cuts).expect("enumerated cuts are valid"));
        return;
    }
    let remaining = remote_stages - cuts.len();
    let start = cuts.last().expect("prefix is never empty") + 1;
    // Leave room: each remaining cut needs a layer, plus a non-empty tail.
    for next in start..=(last - remaining) {
        cuts.push(next);
        extend_cuts(analysis, cuts, remote_stages, last, plans);
        cuts.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{Architecture, BlockChoice, FcStack};
    use lens_nn::TensorShape;

    fn analysis() -> NetworkAnalysis {
        Architecture::new(
            vec![
                BlockChoice {
                    num_layers: 2,
                    kernel: 3,
                    filters: 64,
                    pool: true,
                },
                BlockChoice {
                    num_layers: 1,
                    kernel: 3,
                    filters: 128,
                    pool: true,
                },
                BlockChoice {
                    num_layers: 1,
                    kernel: 3,
                    filters: 128,
                    pool: true,
                },
            ],
            FcStack::One { width: 256 },
        )
        .to_network("staged-test", TensorShape::new(3, 32, 32), 10)
        .unwrap()
        .analyze()
        .unwrap()
    }

    #[test]
    fn compile_partitions_every_layer_exactly_once() {
        let a = analysis();
        let plan = StagedPlan::compile(&a, &[3, 5]).unwrap();
        assert_eq!(plan.remote_stages(), 2);
        let segs = plan.segments();
        assert_eq!(segs[0].first_layer, 0);
        for w in segs.windows(2) {
            assert_eq!(w[1].first_layer, w[0].last_layer + 1);
        }
        assert_eq!(segs.last().unwrap().last_layer, a.layers().len() - 1);
        let total: u64 = segs.iter().map(|s| s.macs).sum();
        assert_eq!(total, a.total_macs());
    }

    #[test]
    fn boundaries_carry_exact_activation_bytes() {
        let a = analysis();
        let plan = StagedPlan::compile(&a, &[3, 5]).unwrap();
        assert_eq!(plan.boundaries()[0].bytes, a.layers()[3].output_bytes.get());
        assert_eq!(plan.boundaries()[1].bytes, a.layers()[5].output_bytes.get());
        assert_eq!(plan.uplink_bytes(), Some(a.layers()[3].output_bytes.get()));
        assert_eq!(
            plan.remote_transfer_bytes(),
            vec![a.layers()[5].output_bytes.get()]
        );
    }

    #[test]
    fn tiers_follow_the_device_edge_cloud_shape() {
        let a = analysis();
        let plan = StagedPlan::compile(&a, &[3, 5]).unwrap();
        let tiers: Vec<_> = plan.segments().iter().map(|s| s.tier).collect();
        assert_eq!(
            tiers,
            vec![StageTier::Device, StageTier::Edge, StageTier::Cloud]
        );
        let single = StagedPlan::compile(&a, &[3]).unwrap();
        let tiers: Vec<_> = single.segments().iter().map(|s| s.tier).collect();
        assert_eq!(tiers, vec![StageTier::Device, StageTier::Cloud]);
        let local = StagedPlan::compile(&a, &[]).unwrap();
        assert_eq!(local.remote_stages(), 0);
        assert_eq!(local.uplink_bytes(), None);
    }

    #[test]
    fn bad_cuts_are_rejected() {
        let a = analysis();
        assert!(StagedPlan::compile(&a, &[5, 3]).is_err());
        assert!(StagedPlan::compile(&a, &[3, 3]).is_err());
        let last = a.layers().len() - 1;
        assert!(StagedPlan::compile(&a, &[last]).is_err());
    }

    #[test]
    fn enumerate_respects_viability_and_order() {
        let a = analysis();
        let viable = a.viable_partition_indices();
        let plans = StagedPlan::enumerate(&a, 1);
        assert!(!plans.is_empty());
        for plan in &plans {
            assert!(viable.contains(&plan.cut_layers()[0]));
        }
        let cuts: Vec<_> = plans.iter().map(|p| p.cut_layers()).collect();
        let mut sorted = cuts.clone();
        sorted.sort();
        assert_eq!(cuts, sorted);
        // Two remote stages: first cut still viable, second after it.
        for plan in StagedPlan::enumerate(&a, 2) {
            let c = plan.cut_layers();
            assert!(viable.contains(&c[0]));
            assert!(c[1] > c[0]);
        }
    }

    #[test]
    fn best_prefers_first_minimum_deterministically() {
        let a = analysis();
        let plans = StagedPlan::enumerate(&a, 1);
        // Constant cost: the first plan must win.
        let best = StagedPlan::best(&plans, |_| 7).unwrap();
        assert_eq!(best, &plans[0]);
        // A transfer-dominated cost picks the smallest boundary.
        let cheapest = StagedPlan::best(&plans, |p| u128::from(p.total_transfer_bytes())).unwrap();
        let min_bytes = plans
            .iter()
            .map(|p| p.total_transfer_bytes())
            .min()
            .unwrap();
        assert_eq!(cheapest.total_transfer_bytes(), min_bytes);
    }

    #[test]
    fn display_shows_the_pipeline_shape() {
        let a = analysis();
        let plan = StagedPlan::compile(&a, &[3, 5]).unwrap();
        let s = format!("{plan}");
        assert!(s.contains("device[0..=3]"));
        assert!(s.contains("edge[4..=5]"));
        assert!(s.contains("cloud[6..="));
        assert!(s.contains("B=>"));
    }
}
