//! Typed view of a search-space architecture (Fig 4).
//!
//! [`Architecture`] is the decoded, human-meaningful form of an
//! [`Encoding`](crate::Encoding): per-block layer/kernel/filter/pool choices
//! plus the fully connected stack. It converts to a concrete
//! [`Network`] for cost evaluation and renders compactly for reports
//! (e.g. the "model A / model B" descriptions of §V.C).

use lens_nn::{Activation, Layer, LayerKind, Network, NetworkBuilder, TensorShape};
use std::fmt;

/// One convolutional block: `num_layers` convolutions (same kernel/filters)
/// followed by an optional 2×2 max pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockChoice {
    /// Number of stacked convolutions, 1–3 in the paper's space.
    pub num_layers: u8,
    /// Square kernel side, {3,5,7} in the paper's space.
    pub kernel: u8,
    /// Filter count, {24,36,64,96,128,256} in the paper's space.
    pub filters: u16,
    /// Whether the optional 2×2 max pool is present.
    pub pool: bool,
}

impl fmt::Display for BlockChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}xconv{}-{}{}",
            self.num_layers,
            self.kernel,
            self.filters,
            if self.pool { "+P" } else { "" }
        )
    }
}

/// The fully connected stack: one or two hidden FC layers ("at least one of
/// two fully connected layers can exist", §IV.B). The final softmax
/// classifier is appended separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FcStack {
    /// A single hidden FC layer.
    One {
        /// Width of the layer.
        width: u32,
    },
    /// Two hidden FC layers.
    Two {
        /// Width of the first layer.
        first: u32,
        /// Width of the second layer.
        second: u32,
    },
}

impl FcStack {
    /// Widths in order.
    pub fn widths(&self) -> Vec<u32> {
        match self {
            FcStack::One { width } => vec![*width],
            FcStack::Two { first, second } => vec![*first, *second],
        }
    }
}

impl fmt::Display for FcStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FcStack::One { width } => write!(f, "FC:{width}"),
            FcStack::Two { first, second } => write!(f, "FC:{first}-{second}"),
        }
    }
}

/// A fully specified architecture from the Fig 4 space.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Architecture {
    blocks: Vec<BlockChoice>,
    fc: FcStack,
}

impl Architecture {
    /// Creates an architecture from block choices and an FC stack.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty.
    pub fn new(blocks: Vec<BlockChoice>, fc: FcStack) -> Self {
        assert!(!blocks.is_empty(), "architecture needs at least one block");
        Architecture { blocks, fc }
    }

    /// The convolutional blocks.
    pub fn blocks(&self) -> &[BlockChoice] {
        &self.blocks
    }

    /// The fully connected stack.
    pub fn fc(&self) -> &FcStack {
        &self.fc
    }

    /// Number of pooling layers present.
    pub fn num_pools(&self) -> usize {
        self.blocks.iter().filter(|b| b.pool).count()
    }

    /// Total convolution layer count.
    pub fn num_conv_layers(&self) -> usize {
        self.blocks.iter().map(|b| b.num_layers as usize).sum()
    }

    /// Builds the concrete network for a given input and class count.
    ///
    /// Every conv layer gets "same" padding (`kernel/2`), ReLU and batch
    /// norm; hidden FCs get ReLU; the classifier gets softmax — exactly the
    /// Fig 4 conventions.
    ///
    /// # Errors
    ///
    /// Returns [`lens_nn::NnError`] if the input is too small for the
    /// pooling stack (e.g. more pools than `log2(input)` allows).
    pub fn to_network(
        &self,
        name: impl Into<String>,
        input: TensorShape,
        num_classes: u32,
    ) -> Result<Network, lens_nn::NnError> {
        let mut builder = NetworkBuilder::new(name, input);
        for (bi, block) in self.blocks.iter().enumerate() {
            for li in 0..block.num_layers {
                builder = builder.layer(Layer::conv(
                    format!("b{}c{}", bi + 1, li + 1),
                    block.filters as u32,
                    block.kernel as u32,
                    block.kernel as u32 / 2,
                ));
            }
            if block.pool {
                builder = builder.layer(Layer::max_pool2(format!("pool{}", bi + 1)));
            }
        }
        builder = builder.flatten();
        for (fi, width) in self.fc.widths().into_iter().enumerate() {
            builder = builder.layer(Layer::dense(format!("fc{}", fi + 1), width));
        }
        builder = builder.layer(Layer::new(
            "classifier",
            LayerKind::Dense {
                out_features: num_classes,
                activation: Activation::Softmax,
            },
        ));
        builder.build()
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.blocks.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, " | {}", self.fc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_arch() -> Architecture {
        Architecture::new(
            vec![
                BlockChoice {
                    num_layers: 2,
                    kernel: 3,
                    filters: 64,
                    pool: true,
                },
                BlockChoice {
                    num_layers: 1,
                    kernel: 5,
                    filters: 96,
                    pool: true,
                },
                BlockChoice {
                    num_layers: 3,
                    kernel: 3,
                    filters: 128,
                    pool: true,
                },
                BlockChoice {
                    num_layers: 1,
                    kernel: 3,
                    filters: 128,
                    pool: false,
                },
                BlockChoice {
                    num_layers: 2,
                    kernel: 3,
                    filters: 256,
                    pool: true,
                },
            ],
            FcStack::Two {
                first: 1024,
                second: 512,
            },
        )
    }

    #[test]
    fn counts() {
        let a = sample_arch();
        assert_eq!(a.num_pools(), 4);
        assert_eq!(a.num_conv_layers(), 9);
        assert_eq!(a.fc().widths(), vec![1024, 512]);
    }

    #[test]
    fn to_network_layer_structure() {
        let net = sample_arch()
            .to_network("test", TensorShape::new(3, 224, 224), 10)
            .unwrap();
        // 9 convs + 4 pools + flatten + 2 fc + classifier = 17 layers.
        assert_eq!(net.num_layers(), 17);
        let a = net.analyze().unwrap();
        // 4 pools: 224 -> 14 spatial; final conv block has 256 filters.
        assert_eq!(a.layer("b5c2").unwrap().output_shape.channels(), 256);
        assert_eq!(a.output_shape(), TensorShape::flat(10));
    }

    #[test]
    fn to_network_works_on_cifar_input() {
        let net = sample_arch()
            .to_network("cifar", TensorShape::new(3, 32, 32), 10)
            .unwrap();
        let a = net.analyze().unwrap();
        // 4 pools: 32 -> 2 spatial.
        assert_eq!(a.layer("pool5").unwrap().output_shape.height(), 2);
    }

    #[test]
    fn display_round_trips_structure() {
        let s = format!("{}", sample_arch());
        assert!(s.contains("2xconv3-64+P"));
        assert!(s.contains("FC:1024-512"));
        let one = FcStack::One { width: 256 };
        assert_eq!(format!("{one}"), "FC:256");
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_blocks_panic() {
        Architecture::new(vec![], FcStack::One { width: 256 });
    }
}
