//! Genotype encoding and the object-safe [`SearchSpace`] abstraction.
//!
//! An [`Encoding`] is a fixed-length vector of categorical gene indices. The
//! MOBO surrogate models of `lens-gp` operate on the unit-cube embedding
//! produced by [`SearchSpace::to_unit_vec`], while decoding produces the
//! concrete [`Network`] whose objectives Algorithm 1 evaluates.

use crate::SpaceError;
use lens_nn::Network;
use rand::{Rng, RngCore};
use std::fmt;

/// A fixed-length categorical genotype.
///
/// # Examples
///
/// ```
/// use lens_space::Encoding;
///
/// let enc = Encoding::new(vec![0, 2, 1]);
/// assert_eq!(enc.len(), 3);
/// assert_eq!(enc[1], 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Encoding(Vec<usize>);

impl Encoding {
    /// Wraps a gene vector.
    pub fn new(genes: Vec<usize>) -> Self {
        Encoding(genes)
    }

    /// Number of genes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when there are no genes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrows the genes.
    pub fn genes(&self) -> &[usize] {
        &self.0
    }

    /// Mutably borrows the genes.
    pub fn genes_mut(&mut self) -> &mut [usize] {
        &mut self.0
    }

    /// Consumes the encoding, returning the gene vector.
    pub fn into_inner(self) -> Vec<usize> {
        self.0
    }

    /// A stable 64-bit hash of the genes, used to derive per-architecture
    /// seeds (e.g. for the deterministic accuracy surrogate). FNV-1a.
    pub fn stable_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &g in &self.0 {
            for b in (g as u64).to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }

    /// Checks every gene against the per-position cardinalities.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::WrongLength`] or [`SpaceError::GeneOutOfRange`].
    pub fn check_dims(&self, dims: &[usize]) -> Result<(), SpaceError> {
        if self.0.len() != dims.len() {
            return Err(SpaceError::WrongLength {
                expected: dims.len(),
                found: self.0.len(),
            });
        }
        for (position, (&value, &cardinality)) in self.0.iter().zip(dims).enumerate() {
            if value >= cardinality {
                return Err(SpaceError::GeneOutOfRange {
                    position,
                    value,
                    cardinality,
                });
            }
        }
        Ok(())
    }
}

impl std::ops::Index<usize> for Encoding {
    type Output = usize;

    fn index(&self, i: usize) -> &usize {
        &self.0[i]
    }
}

impl fmt::Display for Encoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, g) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{g}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<usize> for Encoding {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        Encoding(iter.into_iter().collect())
    }
}

/// A categorical architecture search space.
///
/// Implementations define the gene cardinalities, the structural validity
/// predicate, decoding to a [`Network`], and the random sampling / mutation
/// operators the optimizer uses to propose candidates. The trait is
/// object-safe so heterogeneous spaces can be plugged into the LENS driver.
pub trait SearchSpace {
    /// Cardinality of each gene position.
    fn dims(&self) -> &[usize];

    /// Human-readable space name (used in reports).
    fn name(&self) -> &str {
        "search-space"
    }

    /// Structural validity (e.g. the ≥4-pools constraint of Fig 4).
    fn is_valid(&self, encoding: &Encoding) -> bool;

    /// Decodes an encoding into a concrete network.
    ///
    /// # Errors
    ///
    /// Implementations return [`SpaceError`] for malformed or constraint-
    /// violating encodings.
    fn decode(&self, encoding: &Encoding) -> Result<Network, SpaceError>;

    /// Draws a uniformly random *valid* encoding.
    fn sample(&self, rng: &mut dyn RngCore) -> Encoding;

    /// Returns a valid neighbor of `encoding` (one or a few genes changed).
    fn mutate(&self, encoding: &Encoding, rng: &mut dyn RngCore) -> Encoding;

    /// Embeds an encoding into `[0,1]^d` for the GP surrogates: each gene is
    /// mapped to `value / (cardinality - 1)` (0.5 for singleton genes).
    fn to_unit_vec(&self, encoding: &Encoding) -> Vec<f64> {
        encoding
            .genes()
            .iter()
            .zip(self.dims())
            .map(|(&g, &card)| {
                if card <= 1 {
                    0.5
                } else {
                    g as f64 / (card - 1) as f64
                }
            })
            .collect()
    }

    /// Number of raw encodings (ignoring validity), as an `f64` because the
    /// product overflows integers for realistic spaces.
    fn encoding_count(&self) -> f64 {
        self.dims().iter().map(|&d| d as f64).product()
    }
}

/// Uniformly samples one gene index of cardinality `card`.
pub(crate) fn random_gene(rng: &mut dyn RngCore, card: usize) -> usize {
    debug_assert!(card > 0);
    rng.gen_range(0..card)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_dims_accepts_and_rejects() {
        let enc = Encoding::new(vec![0, 1, 2]);
        assert!(enc.check_dims(&[1, 2, 3]).is_ok());
        assert_eq!(
            enc.check_dims(&[1, 2]),
            Err(SpaceError::WrongLength {
                expected: 2,
                found: 3
            })
        );
        assert_eq!(
            enc.check_dims(&[1, 2, 2]),
            Err(SpaceError::GeneOutOfRange {
                position: 2,
                value: 2,
                cardinality: 2
            })
        );
    }

    #[test]
    fn stable_hash_distinguishes_and_repeats() {
        let a = Encoding::new(vec![1, 2, 3]);
        let b = Encoding::new(vec![1, 2, 4]);
        assert_ne!(a.stable_hash(), b.stable_hash());
        assert_eq!(a.stable_hash(), Encoding::new(vec![1, 2, 3]).stable_hash());
    }

    #[test]
    fn display_and_collect() {
        let enc: Encoding = [1usize, 0, 2].into_iter().collect();
        assert_eq!(format!("{enc}"), "[1,0,2]");
        assert_eq!(enc.into_inner(), vec![1, 0, 2]);
    }
}
