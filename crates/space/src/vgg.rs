//! The paper's VGG16-derived experimental search space (Fig 4).
//!
//! Five convolutional blocks, each with:
//! * number of layers ∈ {1, 2, 3}
//! * kernel size ∈ {3, 5, 7}
//! * filters ∈ {24, 36, 64, 96, 128, 256}
//! * an optional trailing 2×2 max pool
//!
//! followed by at least one of two fully connected layers with width ∈
//! {256, 512, 1024, 2048, 4096, 8192}, a softmax classifier, and the
//! structural constraint that **at least 4 pooling layers** are present —
//! the paper adds it "to highlight cases that can benefit from layer
//! distribution".

use crate::arch::{Architecture, BlockChoice, FcStack};
use crate::encoding::{random_gene, Encoding, SearchSpace};
use crate::SpaceError;
use lens_nn::{Network, TensorShape};
use rand::{Rng, RngCore};

/// Number of convolutional blocks.
pub const NUM_BLOCKS: usize = 5;
/// Genes per block: layers, kernel, filters, pool.
const GENES_PER_BLOCK: usize = 4;
/// Total genes: 5 blocks × 4 + (fc config, fc1 width, fc2 width).
pub const NUM_GENES: usize = NUM_BLOCKS * GENES_PER_BLOCK + 3;

/// Layer-count choices per block.
pub const LAYER_CHOICES: [u8; 3] = [1, 2, 3];
/// Kernel-size choices per block.
pub const KERNEL_CHOICES: [u8; 3] = [3, 5, 7];
/// Filter-count choices per block.
pub const FILTER_CHOICES: [u16; 6] = [24, 36, 64, 96, 128, 256];
/// FC width choices.
pub const FC_WIDTH_CHOICES: [u32; 6] = [256, 512, 1024, 2048, 4096, 8192];
/// Minimum number of pooling layers (of the 5 optional ones).
pub const MIN_POOLS: usize = 4;

/// FC-configuration gene values: which of the two optional FC layers exist.
const FC_FIRST_ONLY: usize = 0;
const FC_SECOND_ONLY: usize = 1;
const FC_BOTH: usize = 2;

/// The paper's experimental search space.
///
/// The configured input shape and class count determine what
/// [`decode`](SearchSpace::decode) produces; use [`VggSpace::for_cifar10`]
/// for the accuracy objective (32×32×3, 10 classes) and
/// [`VggSpace::for_deployment`] for the performance objectives (224×224×3,
/// the paper's "realistic scenario" image size).
///
/// # Examples
///
/// ```
/// use lens_space::{SearchSpace, VggSpace};
///
/// let space = VggSpace::for_deployment();
/// assert_eq!(space.dims().len(), lens_space::vgg::NUM_GENES);
/// // ~1.6e12 raw encodings.
/// assert!(space.encoding_count() > 1e12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VggSpace {
    input: TensorShape,
    num_classes: u32,
    dims: Vec<usize>,
    name: String,
}

impl VggSpace {
    /// Creates the space for a given input shape and class count.
    pub fn new(input: TensorShape, num_classes: u32) -> Self {
        let mut dims = Vec::with_capacity(NUM_GENES);
        for _ in 0..NUM_BLOCKS {
            dims.push(LAYER_CHOICES.len());
            dims.push(KERNEL_CHOICES.len());
            dims.push(FILTER_CHOICES.len());
            dims.push(2); // pool off/on
        }
        dims.push(3); // fc config
        dims.push(FC_WIDTH_CHOICES.len());
        dims.push(FC_WIDTH_CHOICES.len());
        VggSpace {
            input,
            num_classes,
            dims,
            name: format!("vgg-space({input})"),
        }
    }

    /// The space instantiated for CIFAR-10 training (32×32×3, 10 classes) —
    /// the accuracy-objective view.
    pub fn for_cifar10() -> Self {
        VggSpace::new(TensorShape::new(3, 32, 32), 10)
    }

    /// The space instantiated for deployment-cost evaluation (224×224×3
    /// input, the paper's performance-objective image size).
    pub fn for_deployment() -> Self {
        VggSpace::new(TensorShape::new(3, 224, 224), 10)
    }

    /// The configured input shape.
    pub fn input(&self) -> TensorShape {
        self.input
    }

    /// The configured class count.
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// Interprets an encoding as a typed [`Architecture`].
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] if the encoding is malformed or violates the
    /// ≥4-pools constraint.
    pub fn architecture(&self, encoding: &Encoding) -> Result<Architecture, SpaceError> {
        encoding.check_dims(&self.dims)?;
        let mut blocks = Vec::with_capacity(NUM_BLOCKS);
        for b in 0..NUM_BLOCKS {
            let g = &encoding.genes()[b * GENES_PER_BLOCK..(b + 1) * GENES_PER_BLOCK];
            blocks.push(BlockChoice {
                num_layers: LAYER_CHOICES[g[0]],
                kernel: KERNEL_CHOICES[g[1]],
                filters: FILTER_CHOICES[g[2]],
                pool: g[3] == 1,
            });
        }
        let pools = blocks.iter().filter(|b| b.pool).count();
        if pools < MIN_POOLS {
            return Err(SpaceError::ConstraintViolated(format!(
                "{pools} pooling layers present, at least {MIN_POOLS} required"
            )));
        }
        let fc_cfg = encoding[NUM_BLOCKS * GENES_PER_BLOCK];
        let w1 = FC_WIDTH_CHOICES[encoding[NUM_BLOCKS * GENES_PER_BLOCK + 1]];
        let w2 = FC_WIDTH_CHOICES[encoding[NUM_BLOCKS * GENES_PER_BLOCK + 2]];
        let fc = match fc_cfg {
            FC_FIRST_ONLY => FcStack::One { width: w1 },
            FC_SECOND_ONLY => FcStack::One { width: w2 },
            FC_BOTH => FcStack::Two {
                first: w1,
                second: w2,
            },
            _ => unreachable!("fc gene cardinality is 3"),
        };
        Ok(Architecture::new(blocks, fc))
    }

    /// Number of *valid* encodings (those satisfying the pools constraint):
    /// `54^5 · 6 · 108` ≈ 2.98e11.
    pub fn valid_encoding_count(&self) -> f64 {
        let per_block_non_pool =
            (LAYER_CHOICES.len() * KERNEL_CHOICES.len() * FILTER_CHOICES.len()) as f64;
        let pool_patterns = (NUM_BLOCKS + 1) as f64; // C(5,4) + C(5,5) = 6
        let fc = (3 * FC_WIDTH_CHOICES.len() * FC_WIDTH_CHOICES.len()) as f64;
        per_block_non_pool.powi(NUM_BLOCKS as i32) * pool_patterns * fc
    }

    fn pool_gene_positions() -> [usize; NUM_BLOCKS] {
        let mut out = [0usize; NUM_BLOCKS];
        for (b, slot) in out.iter_mut().enumerate() {
            *slot = b * GENES_PER_BLOCK + 3;
        }
        out
    }

    /// Flips pool genes on at random until the ≥4-pools constraint holds.
    fn repair_pools(&self, encoding: &mut Encoding, rng: &mut dyn RngCore) {
        let positions = Self::pool_gene_positions();
        loop {
            let on = positions.iter().filter(|&&p| encoding[p] == 1).count();
            if on >= MIN_POOLS {
                return;
            }
            let off: Vec<usize> = positions
                .iter()
                .copied()
                .filter(|&p| encoding[p] == 0)
                .collect();
            let pick = off[rng.gen_range(0..off.len())];
            encoding.genes_mut()[pick] = 1;
        }
    }
}

impl Default for VggSpace {
    fn default() -> Self {
        VggSpace::for_deployment()
    }
}

impl SearchSpace for VggSpace {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn is_valid(&self, encoding: &Encoding) -> bool {
        if encoding.check_dims(&self.dims).is_err() {
            return false;
        }
        Self::pool_gene_positions()
            .iter()
            .filter(|&&p| encoding[p] == 1)
            .count()
            >= MIN_POOLS
    }

    fn decode(&self, encoding: &Encoding) -> Result<Network, SpaceError> {
        let arch = self.architecture(encoding)?;
        let name = format!("arch-{:016x}", encoding.stable_hash());
        arch.to_network(name, self.input, self.num_classes)
            .map_err(SpaceError::from)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Encoding {
        let mut enc: Encoding = self
            .dims
            .iter()
            .map(|&card| random_gene(rng, card))
            .collect();
        self.repair_pools(&mut enc, rng);
        enc
    }

    fn mutate(&self, encoding: &Encoding, rng: &mut dyn RngCore) -> Encoding {
        let mut out = encoding.clone();
        let position = rng.gen_range(0..self.dims.len());
        let card = self.dims[position];
        if card > 1 {
            let mut value = random_gene(rng, card);
            while value == out[position] {
                value = random_gene(rng, card);
            }
            out.genes_mut()[position] = value;
        }
        self.repair_pools(&mut out, rng);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dims_match_fig4() {
        let s = VggSpace::for_deployment();
        assert_eq!(s.dims().len(), 23);
        assert_eq!(&s.dims()[0..4], &[3, 3, 6, 2]);
        assert_eq!(&s.dims()[20..23], &[3, 6, 6]);
    }

    #[test]
    fn encoding_count_matches_closed_form() {
        let s = VggSpace::for_deployment();
        // 108^5 raw block configs * 2^0... full product: (3*3*6*2)^5 * 3*6*6.
        let expected = 108f64.powi(5) * 108.0;
        assert!((s.encoding_count() - expected).abs() / expected < 1e-12);
        let valid = 54f64.powi(5) * 6.0 * 108.0;
        assert!((s.valid_encoding_count() - valid).abs() / valid < 1e-12);
        assert!(s.valid_encoding_count() < s.encoding_count());
    }

    #[test]
    fn sampled_encodings_are_valid_and_decode() {
        let s = VggSpace::for_cifar10();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let enc = s.sample(&mut rng);
            assert!(s.is_valid(&enc));
            let net = s.decode(&enc).expect("sampled encodings decode");
            let a = net.analyze().unwrap();
            assert_eq!(a.output_shape(), lens_nn::TensorShape::flat(10));
        }
    }

    #[test]
    fn pool_constraint_enforced() {
        let s = VggSpace::for_deployment();
        // All pools off.
        let mut genes = vec![0usize; NUM_GENES];
        genes[20] = 0;
        let enc = Encoding::new(genes);
        assert!(!s.is_valid(&enc));
        assert!(matches!(
            s.decode(&enc),
            Err(SpaceError::ConstraintViolated(_))
        ));
    }

    #[test]
    fn fc_config_decodes_all_three_ways() {
        let s = VggSpace::for_deployment();
        let mut genes = vec![0usize; NUM_GENES];
        for b in 0..NUM_BLOCKS {
            genes[b * 4 + 3] = 1; // all pools on
        }
        genes[21] = 0; // fc1 = 256
        genes[22] = 5; // fc2 = 8192

        genes[20] = 0;
        let a = s.architecture(&Encoding::new(genes.clone())).unwrap();
        assert_eq!(a.fc(), &FcStack::One { width: 256 });

        genes[20] = 1;
        let a = s.architecture(&Encoding::new(genes.clone())).unwrap();
        assert_eq!(a.fc(), &FcStack::One { width: 8192 });

        genes[20] = 2;
        let a = s.architecture(&Encoding::new(genes)).unwrap();
        assert_eq!(
            a.fc(),
            &FcStack::Two {
                first: 256,
                second: 8192
            }
        );
    }

    #[test]
    fn mutate_changes_little_and_stays_valid() {
        let s = VggSpace::for_deployment();
        let mut rng = StdRng::seed_from_u64(3);
        let enc = s.sample(&mut rng);
        for _ in 0..50 {
            let m = s.mutate(&enc, &mut rng);
            assert!(s.is_valid(&m));
            let diff = enc
                .genes()
                .iter()
                .zip(m.genes())
                .filter(|(a, b)| a != b)
                .count();
            // One mutated gene plus at most the pool repairs.
            assert!(diff <= 1 + NUM_BLOCKS, "diff {diff}");
        }
    }

    #[test]
    fn unit_vec_is_in_unit_cube() {
        let s = VggSpace::for_deployment();
        let mut rng = StdRng::seed_from_u64(11);
        let enc = s.sample(&mut rng);
        let v = s.to_unit_vec(&enc);
        assert_eq!(v.len(), NUM_GENES);
        assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn deployment_and_cifar_views_share_dims() {
        let d = VggSpace::for_deployment();
        let c = VggSpace::for_cifar10();
        assert_eq!(d.dims(), c.dims());
        assert_ne!(d.input(), c.input());
    }

    proptest! {
        /// Any valid sampled encoding decodes on both the CIFAR and the
        /// deployment views, and the pool count matches the genes.
        #[test]
        fn prop_sample_decode_both_views(seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let dep = VggSpace::for_deployment();
            let cif = VggSpace::for_cifar10();
            let enc = dep.sample(&mut rng);
            let arch = dep.architecture(&enc).unwrap();
            prop_assert!(arch.num_pools() >= MIN_POOLS);
            prop_assert!(dep.decode(&enc).is_ok());
            prop_assert!(cif.decode(&enc).is_ok());
        }

        /// Mutation never leaves the valid region.
        #[test]
        fn prop_mutation_closure(seed in 0u64..200) {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = VggSpace::for_cifar10();
            let mut enc = s.sample(&mut rng);
            for _ in 0..10 {
                enc = s.mutate(&enc, &mut rng);
                prop_assert!(s.is_valid(&enc));
            }
        }
    }
}
