//! Search-space definitions for the LENS reproduction.
//!
//! The paper demonstrates LENS on a VGG16-derived space (Fig 4): five
//! convolutional blocks, each with 1–3 convolution layers (kernel ∈ {3,5,7},
//! filters ∈ {24,36,64,96,128,256}, ReLU + batch-norm) followed by an
//! *optional* 2×2 max-pool, then one or two fully connected layers with
//! width ∈ {256,512,1024,2048,4096,8192}, a softmax classifier, and the
//! constraint that at least four of the five pools are present (so that
//! enough feature-map shrinkage occurs for layer distribution to pay off).
//!
//! LENS itself "can be adapted to any search space", so the space is behind
//! the object-safe [`SearchSpace`] trait; [`VggSpace`] is the paper's
//! instantiation and `examples/custom_search_space.rs` shows a different
//! one.
//!
//! # Examples
//!
//! ```
//! use lens_space::{SearchSpace, VggSpace};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), lens_space::SpaceError> {
//! let space = VggSpace::for_cifar10();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let enc = space.sample(&mut rng);
//! assert!(space.is_valid(&enc));
//! let net = space.decode(&enc)?;
//! assert!(net.num_layers() >= 7); // >=5 conv, >=4 pools, fc stack
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod arch;
pub mod encoding;
pub mod vgg;

pub use arch::{Architecture, BlockChoice, FcStack};
pub use encoding::{Encoding, SearchSpace};
pub use vgg::VggSpace;

use lens_nn::NnError;
use std::error::Error;
use std::fmt;

/// Errors produced while encoding, decoding, or validating architectures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpaceError {
    /// The encoding has the wrong number of genes.
    WrongLength {
        /// Expected gene count.
        expected: usize,
        /// Actual gene count.
        found: usize,
    },
    /// A gene value exceeds its cardinality.
    GeneOutOfRange {
        /// Gene position.
        position: usize,
        /// Offending value.
        value: usize,
        /// Cardinality at that position.
        cardinality: usize,
    },
    /// The encoding violates a structural constraint of the space.
    ConstraintViolated(String),
    /// Decoding produced an invalid network.
    Network(NnError),
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::WrongLength { expected, found } => {
                write!(f, "encoding has {found} genes, expected {expected}")
            }
            SpaceError::GeneOutOfRange {
                position,
                value,
                cardinality,
            } => write!(
                f,
                "gene {position} has value {value}, cardinality is {cardinality}"
            ),
            SpaceError::ConstraintViolated(why) => write!(f, "constraint violated: {why}"),
            SpaceError::Network(e) => write!(f, "decoded network invalid: {e}"),
        }
    }
}

impl Error for SpaceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpaceError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for SpaceError {
    fn from(e: NnError) -> Self {
        SpaceError::Network(e)
    }
}
