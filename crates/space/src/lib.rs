//! Search-space definitions for the LENS reproduction.
//!
//! The paper demonstrates LENS on a VGG16-derived space (Fig 4): five
//! convolutional blocks, each with 1–3 convolution layers (kernel ∈ {3,5,7},
//! filters ∈ {24,36,64,96,128,256}, ReLU + batch-norm) followed by an
//! *optional* 2×2 max-pool, then one or two fully connected layers with
//! width ∈ {256,512,1024,2048,4096,8192}, a softmax classifier, and the
//! constraint that at least four of the five pools are present (so that
//! enough feature-map shrinkage occurs for layer distribution to pay off).
//!
//! LENS itself "can be adapted to any search space", so the space is behind
//! the object-safe [`SearchSpace`] trait; [`VggSpace`] is the paper's
//! instantiation and `examples/custom_search_space.rs` shows a different
//! one.
//!
//! Beyond the single split point of the paper, an [`Architecture`] also
//! compiles to a [`StagedPlan`] — a device → edge → cloud pipeline whose
//! boundaries carry exact activation-tensor byte sizes, so link models can
//! price the inter-stage transfers and move the optimal cut with link
//! quality (see docs/PIPELINES.md).
//!
//! # Examples
//!
//! ```
//! use lens_space::{SearchSpace, VggSpace};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), lens_space::SpaceError> {
//! let space = VggSpace::for_cifar10();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let enc = space.sample(&mut rng);
//! assert!(space.is_valid(&enc));
//! let net = space.decode(&enc)?;
//! assert!(net.num_layers() >= 7); // >=5 conv, >=4 pools, fc stack
//! # Ok(())
//! # }
//! ```
//!
//! Compile a sampled architecture into a two-hop staged pipeline and pick
//! the transfer-cheapest plan deterministically:
//!
//! ```
//! use lens_nn::TensorShape;
//! use lens_space::{SearchSpace, StagedPlan, VggSpace};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let space = VggSpace::for_cifar10();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let arch = space.architecture(&space.sample(&mut rng))?;
//! let analysis = arch
//!     .to_network("pipeline", TensorShape::new(3, 32, 32), 10)?
//!     .analyze()?;
//! let plans = StagedPlan::enumerate(&analysis, 2); // device → edge → cloud
//! let best = StagedPlan::best(&plans, |p| u128::from(p.total_transfer_bytes()))
//!     .expect("the space always admits a viable split");
//! assert_eq!(best.remote_stages(), 2);
//! assert!(best.uplink_bytes().unwrap() < analysis.input_bytes().get());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod arch;
pub mod encoding;
pub mod staged;
pub mod vgg;

pub use arch::{Architecture, BlockChoice, FcStack};
pub use encoding::{Encoding, SearchSpace};
pub use staged::{StageBoundary, StageSegment, StageTier, StagedPlan};
pub use vgg::VggSpace;

use lens_nn::NnError;
use std::error::Error;
use std::fmt;

/// Errors produced while encoding, decoding, or validating architectures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpaceError {
    /// The encoding has the wrong number of genes.
    WrongLength {
        /// Expected gene count.
        expected: usize,
        /// Actual gene count.
        found: usize,
    },
    /// A gene value exceeds its cardinality.
    GeneOutOfRange {
        /// Gene position.
        position: usize,
        /// Offending value.
        value: usize,
        /// Cardinality at that position.
        cardinality: usize,
    },
    /// The encoding violates a structural constraint of the space.
    ConstraintViolated(String),
    /// Decoding produced an invalid network.
    Network(NnError),
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::WrongLength { expected, found } => {
                write!(f, "encoding has {found} genes, expected {expected}")
            }
            SpaceError::GeneOutOfRange {
                position,
                value,
                cardinality,
            } => write!(
                f,
                "gene {position} has value {value}, cardinality is {cardinality}"
            ),
            SpaceError::ConstraintViolated(why) => write!(f, "constraint violated: {why}"),
            SpaceError::Network(e) => write!(f, "decoded network invalid: {e}"),
        }
    }
}

impl Error for SpaceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpaceError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for SpaceError {
    fn from(e: NnError) -> Self {
        SpaceError::Network(e)
    }
}
