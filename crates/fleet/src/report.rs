//! Mergeable fleet-level aggregates.
//!
//! Shards accumulate partial [`FleetReport`]s independently and the engine
//! merges them in shard order at the end of a run. Distribution statistics
//! use fixed-bin [`Histogram`]s whose counts are integers and whose sums
//! are fixed-point integers (micro-units), so merging is **exact and
//! order-independent** — which is what lets a batched multi-backend
//! scenario produce a bit-identical report across 1, 2, and 4 shards
//! (`tests/fleet_sim.rs` pins that). Counts saturate at `u64::MAX` rather
//! than wrapping.

use std::fmt;

/// Fixed-point scale for value sums: micro-units (1e-6 of the recorded
/// unit), summed exactly in `i128` so merge order cannot perturb them.
const SUM_FP_SCALE: f64 = 1e6;

/// `SUM_FP_SCALE` as the exact integer it is, for integer-space division.
const SUM_FP_UNIT: i128 = 1_000_000;

pub(crate) fn to_fp(value: f64) -> i128 {
    // `as` casts saturate at the i128 range (and map NaN to 0), so even
    // pathological inputs cannot wrap the accumulator.
    (value * SUM_FP_SCALE).round() as i128
}

/// Converts an exact fixed-point (micro-unit) sum into `f64` units.
///
/// Casting the raw micro-unit sum (`sum_fp as f64`) silently drops low
/// bits once the sum exceeds 2^53 micro-units — ~9.0e9 unit-ms, which a
/// million-device day blows through while the digest stays exact.
/// Dividing in integer space first keeps the conversion exact (to one
/// final rounding) for any sum whose *unit* magnitude fits 2^53 — a
/// window 10^6 wider — and beyond that saturates explicitly instead of
/// quietly degrading.
pub(crate) fn fp_sum_to_f64(sum: i128) -> f64 {
    /// Largest integer `f64` represents exactly: 2^53 units.
    const EXACT_UNITS: i128 = 1 << 53;
    let units = sum / SUM_FP_UNIT;
    let micros = sum % SUM_FP_UNIT;
    if units >= EXACT_UNITS {
        EXACT_UNITS as f64
    } else if units <= -EXACT_UNITS {
        -(EXACT_UNITS as f64)
    } else {
        units as f64 + micros as f64 / SUM_FP_SCALE
    }
}

/// A fixed-bin histogram over `[0, bin_width · num_bins)` with an overflow
/// bucket, supporting exact merging and percentile queries.
///
/// # Examples
///
/// ```
/// use lens_fleet::Histogram;
///
/// let mut h = Histogram::new(10.0, 100);
/// for v in [5.0, 15.0, 15.0, 2000.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.overflow(), 1);
/// assert!(h.percentile(50.0) < 20.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    count: u64,
    /// Exact fixed-point sum of recorded values (micro-units).
    sum_fp: i128,
    min: f64,
    max: f64,
    /// Watermark: bins at `hot_bins` and beyond are all zero. Keeps
    /// per-barrier resets and percentile scans proportional to the bins
    /// actually touched, not the configured range. Always equals
    /// last-nonzero-bin + 1 (0 when empty), so the derived `PartialEq`
    /// stays consistent with the counts it summarizes.
    hot_bins: usize,
}

impl Histogram {
    /// Creates an empty histogram with `num_bins` bins of `bin_width` each.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not positive/finite or `num_bins` is zero.
    pub fn new(bin_width: f64, num_bins: usize) -> Self {
        assert!(
            bin_width.is_finite() && bin_width > 0.0,
            "bin_width must be positive and finite"
        );
        assert!(num_bins > 0, "num_bins must be positive");
        Histogram {
            bin_width,
            counts: vec![0; num_bins],
            overflow: 0,
            count: 0,
            sum_fp: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            hot_bins: 0,
        }
    }

    /// Records one observation. Negative values clamp into the first bin;
    /// values at or beyond the histogram range land in the overflow bucket
    /// (still contributing their exact value to `sum`/`min`/`max`).
    pub fn record(&mut self, value: f64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical observations at once (the fluid-count entry
    /// point for barrier-side stats such as batch closes). Counts saturate
    /// at `u64::MAX` instead of wrapping.
    pub fn record_n(&mut self, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = (value / self.bin_width).floor();
        if idx >= self.counts.len() as f64 {
            self.overflow = self.overflow.saturating_add(n);
        } else {
            let idx = idx.max(0.0) as usize;
            self.counts[idx] = self.counts[idx].saturating_add(n);
            self.hot_bins = self.hot_bins.max(idx + 1);
        }
        self.count = self.count.saturating_add(n);
        self.sum_fp = self
            .sum_fp
            .saturating_add(to_fp(value).saturating_mul(n as i128));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one. Counts saturate at
    /// `u64::MAX` rather than silently wrapping.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bin layouts.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin widths differ");
        assert_eq!(self.counts.len(), other.counts.len(), "bin counts differ");
        for (a, b) in self.counts[..other.hot_bins]
            .iter_mut()
            .zip(&other.counts[..other.hot_bins])
        {
            *a = a.saturating_add(*b);
        }
        self.hot_bins = self.hot_bins.max(other.hot_bins);
        self.overflow = self.overflow.saturating_add(other.overflow);
        self.count = self.count.saturating_add(other.count);
        self.sum_fp = self.sum_fp.saturating_add(other.sum_fp);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears every bin in place (keeps the layout): the epoch-windowed
    /// tail histograms reset at each barrier without reallocating.
    pub(crate) fn reset(&mut self) {
        // Only the hot window can hold nonzero counts — an epoch-windowed
        // histogram pays for the bins it touched, not its configured span.
        self.counts[..self.hot_bins].iter_mut().for_each(|c| *c = 0);
        self.hot_bins = 0;
        self.overflow = 0;
        self.count = 0;
        self.sum_fp = 0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations beyond the binned range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Sum of all recorded values, exact to fixed-point (micro-unit)
    /// resolution and independent of record/merge order.
    pub fn sum(&self) -> f64 {
        fp_sum_to_f64(self.sum_fp)
    }

    pub(crate) fn sum_fp(&self) -> i128 {
        self.sum_fp
    }

    /// Mean of all recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum() / self.count as f64
        }
    }

    /// Smallest recorded value (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest recorded value (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The p50/p90/p95/p99 tail summary of this histogram — the
    /// per-request latency view the fluid cloud model cannot produce
    /// (every request of a fluid epoch sees the same published wait).
    pub fn tail_summary(&self) -> TailSummary {
        TailSummary {
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
        }
    }

    /// The `p`-th percentile (`0 ≤ p ≤ 100`), linearly interpolated within
    /// the containing bin. Returns 0 for an empty histogram; percentiles
    /// that fall in the overflow bucket return the exact observed maximum.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        if self.count == 0 {
            return 0.0;
        }
        let rank = p / 100.0 * self.count as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts[..self.hot_bins].iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c;
            if rank <= next as f64 {
                let within = (rank - seen as f64) / c as f64;
                return (i as f64 + within.clamp(0.0, 1.0)) * self.bin_width;
            }
            seen = next;
        }
        self.max
    }
}

/// Tail percentiles of a latency [`Histogram`], as reported per region and
/// per backend by the per-request cloud microsimulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailSummary {
    /// Median (ms).
    pub p50: f64,
    /// 90th percentile (ms).
    pub p90: f64,
    /// 95th percentile (ms).
    pub p95: f64,
    /// 99th percentile (ms).
    pub p99: f64,
}

impl TailSummary {
    /// Percentiles are quantiles of one distribution, so they must be
    /// non-decreasing — the invariant `tests/cross_crate_props.rs` pins.
    pub fn is_monotone(&self) -> bool {
        self.p50 <= self.p90 && self.p90 <= self.p95 && self.p95 <= self.p99
    }
}

impl fmt::Display for TailSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50 {:.1}  p90 {:.1}  p95 {:.1}  p99 {:.1}",
            self.p50, self.p90, self.p95, self.p99
        )
    }
}

/// Per-region aggregates inside a [`FleetReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegionReport {
    /// Region name (from the scenario's regional mix).
    pub region: String,
    /// Inference count served by devices of this region.
    pub inferences: u64,
    /// How many of those used the cloud (All-Cloud or a split), including
    /// the ones that failed over to a sibling region.
    pub offloaded: u64,
    /// Dynamic-policy option switches in this region.
    pub switches: u64,
    /// Offloads shed by admission control that ran the device's local-only
    /// option instead.
    pub shed_to_local: u64,
    /// Offloads shed here that failed over to a sibling region's cloud.
    pub failed_over: u64,
    /// Failed-over offloads this region's cloud absorbed from siblings.
    pub failover_in: u64,
    /// Offload-bound requests that retreated to the device's local-only
    /// option because the region's published epoch p99 exceeded the tail
    /// deadline budget.
    pub retreated: u64,
    /// Sum of end-to-end latencies (fixed-point micro-ms).
    latency_sum_fp: i128,
    /// Sum of edge energies (fixed-point micro-mJ).
    energy_sum_fp: i128,
}

impl RegionReport {
    pub(crate) fn new(region: &str) -> Self {
        RegionReport {
            region: region.to_string(),
            inferences: 0,
            offloaded: 0,
            switches: 0,
            shed_to_local: 0,
            failed_over: 0,
            failover_in: 0,
            retreated: 0,
            latency_sum_fp: 0,
            energy_sum_fp: 0,
        }
    }

    /// Sum of end-to-end latencies (ms) including queue waits.
    pub fn latency_sum_ms(&self) -> f64 {
        fp_sum_to_f64(self.latency_sum_fp)
    }

    /// Sum of edge energies (mJ).
    pub fn energy_sum_mj(&self) -> f64 {
        fp_sum_to_f64(self.energy_sum_fp)
    }

    /// Mean latency per inference in this region (0 when empty).
    pub fn mean_latency_ms(&self) -> f64 {
        if self.inferences == 0 {
            0.0
        } else {
            self.latency_sum_ms() / self.inferences as f64
        }
    }

    /// Mean edge energy per inference in this region (0 when empty).
    pub fn mean_energy_mj(&self) -> f64 {
        if self.inferences == 0 {
            0.0
        } else {
            self.energy_sum_mj() / self.inferences as f64
        }
    }

    fn merge(&mut self, other: &RegionReport) {
        debug_assert_eq!(self.region, other.region);
        self.inferences += other.inferences;
        self.offloaded += other.offloaded;
        self.switches += other.switches;
        self.shed_to_local += other.shed_to_local;
        self.failed_over += other.failed_over;
        self.failover_in += other.failover_in;
        self.retreated += other.retreated;
        self.latency_sum_fp = self.latency_sum_fp.saturating_add(other.latency_sum_fp);
        self.energy_sum_fp = self.energy_sum_fp.saturating_add(other.energy_sum_fp);
    }
}

/// Per-backend serving stats inside a [`FleetReport`], produced at the
/// epoch barrier (they never pass through shard merging).
#[derive(Debug, Clone, PartialEq)]
pub struct BackendReport {
    /// Region hosting the backend.
    pub region: String,
    /// Backend name from the serving tier (`"gpu"`, `"cpu"`, …).
    pub backend: String,
    /// Executor slots in the pool.
    pub slots: usize,
    /// Jobs this backend completed (fluid count).
    pub served_jobs: f64,
    /// Batches this backend closed (fluid count).
    pub batches: f64,
    /// Per-slot busy time accumulated over the run (ms).
    pub busy_ms: f64,
    /// `busy_ms / horizon_ms` — the fraction of the run each slot spent
    /// serving batches. Under the per-request model this can exceed 1
    /// slightly: the tier keeps draining its backlog past the horizon so
    /// every admitted request completes.
    pub utilization: f64,
    /// Distribution of closed batch sizes (width-1 bins).
    pub batch_sizes: Histogram,
    /// Per-request cloud sojourn times (arrival → completion, ms). Empty
    /// under the fluid model, which has no per-request times.
    pub sojourn_ms: Histogram,
    /// Provisioned slot count during each served epoch — constant without
    /// an autoscaler, a demand-following staircase with one.
    pub slot_timeline: Vec<u32>,
    /// Autoscaling events applied over the run (scale-ups + scale-downs).
    pub scaling_events: u64,
    /// Provisioned cost in fixed-point micro-units:
    /// `Σ_epochs slots · price_per_slot_epoch` (exact, merge-order
    /// independent).
    pub(crate) cost_fp: i128,
    /// Cloud-side energy over the run (mJ): served jobs × per-job energy.
    pub(crate) cloud_energy_mj: f64,
}

impl BackendReport {
    /// Mean items per closed batch (0 when idle).
    pub fn mean_batch(&self) -> f64 {
        if self.batches <= 0.0 {
            0.0
        } else {
            self.served_jobs / self.batches
        }
    }

    /// Tail summary of this backend's per-request sojourns (all zeros
    /// under the fluid model — [`Histogram::tail_summary`] of empty).
    pub fn tail(&self) -> TailSummary {
        self.sojourn_ms.tail_summary()
    }

    /// Provisioned cost over the run:
    /// `Σ_epochs slots · price_per_slot_epoch` (0 for unpriced backends).
    pub fn provision_cost(&self) -> f64 {
        fp_sum_to_f64(self.cost_fp)
    }

    /// Cloud-side energy spent serving this backend's jobs (mJ; 0 when
    /// `energy_per_job_mj` is unmodeled).
    pub fn cloud_energy_mj(&self) -> f64 {
        self.cloud_energy_mj
    }

    /// Provisioned slots at the end of the run (the configured count if
    /// no epoch completed).
    pub fn final_slots(&self) -> usize {
        self.slot_timeline
            .last()
            .map_or(self.slots, |&s| s as usize)
    }
}

/// Aggregate outcome of a fleet run: population-wide latency/energy
/// distributions, switching/shedding behavior, per-region and per-backend
/// breakdowns, and the cloud queues' depth/wait trajectories.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    latency: Histogram,
    energy: Histogram,
    switches: u64,
    offloaded: u64,
    per_region: Vec<RegionReport>,
    /// Per-backend serving stats, region-major (set at end of run).
    backends: Vec<BackendReport>,
    /// `[region][epoch]` cloud backlog (jobs) at each epoch barrier.
    queue_depth: Vec<Vec<f64>>,
    /// `[region][epoch]` low-priority-class queue wait (ms) — the
    /// worst-case wait an offloaded inference of that epoch experienced.
    queue_wait_ms: Vec<Vec<f64>>,
    /// Per-region exact per-request cloud sojourn histograms (ms), keyed
    /// by *serving* region. Populated only by the per-request
    /// microsimulation; empty histograms under the fluid model.
    cloud_sojourn: Vec<Histogram>,
    /// Completed pipeline-stage requests per stage (index = stage − 1).
    /// Empty unless the scenario carries a staged
    /// [`crate::PipelineSpec`]; under a depth-`d` pipeline every
    /// admitted offload contributes one completion per stage, so
    /// stage conservation (`tests/split_pipeline.rs`) reads directly
    /// off this vector.
    stage_completions: Vec<u64>,
    /// Per-stage cloud sojourn histograms (ms), same layout as
    /// [`FleetReport::cloud_sojourn`]. Populated only by the
    /// per-request fidelity of a staged run; the fluid tier resolves
    /// stages as aggregates and records none.
    stage_sojourn: Vec<Histogram>,
    /// Total inter-stage activation-transfer time charged to the fleet,
    /// as a fixed-point (micro-unit) ms sum derived from the integer
    /// microsecond hop costs.
    transfer_ms_fp: i128,
}

impl FleetReport {
    pub(crate) fn empty(
        latency_bin_ms: f64,
        energy_bin_mj: f64,
        num_bins: usize,
        regions: &[String],
    ) -> Self {
        FleetReport {
            latency: Histogram::new(latency_bin_ms, num_bins),
            energy: Histogram::new(energy_bin_mj, num_bins),
            switches: 0,
            offloaded: 0,
            per_region: regions.iter().map(|r| RegionReport::new(r)).collect(),
            backends: Vec::new(),
            queue_depth: Vec::new(),
            queue_wait_ms: Vec::new(),
            cloud_sojourn: regions
                .iter()
                .map(|_| Histogram::new(crate::cloud::SOJOURN_BIN_MS, crate::cloud::SOJOURN_BINS))
                .collect(),
            stage_completions: Vec::new(),
            stage_sojourn: Vec::new(),
            transfer_ms_fp: 0,
        }
    }

    /// Counts one completed pipeline-stage request (1-based `stage`),
    /// growing the per-stage vectors on demand. The per-request barrier
    /// supplies the stage's exact cloud sojourn; the fluid tier, which
    /// has no per-request times, passes `None`.
    pub(crate) fn record_stage_completion(&mut self, stage: u32, sojourn_ms: Option<f64>) {
        let idx = (stage as usize).saturating_sub(1);
        if self.stage_completions.len() <= idx {
            self.stage_completions.resize(idx + 1, 0);
            self.stage_sojourn.resize_with(idx + 1, || {
                Histogram::new(crate::cloud::SOJOURN_BIN_MS, crate::cloud::SOJOURN_BINS)
            });
        }
        self.stage_completions[idx] += 1;
        if let Some(ms) = sojourn_ms {
            self.stage_sojourn[idx].record(ms);
        }
    }

    /// Adds one priced inter-stage transfer (ms, derived from the
    /// integer microsecond hop cost) to the fleet total.
    pub(crate) fn record_transfer_ms(&mut self, ms: f64) {
        self.transfer_ms_fp = self.transfer_ms_fp.saturating_add(to_fp(ms));
    }

    pub(crate) fn record(&mut self, region_index: usize, served: &crate::device::Served) {
        self.latency.record(served.latency_ms);
        self.energy.record(served.energy_mj);
        let region = &mut self.per_region[region_index];
        region.inferences += 1;
        region.latency_sum_fp = region
            .latency_sum_fp
            .saturating_add(to_fp(served.latency_ms));
        region.energy_sum_fp = region.energy_sum_fp.saturating_add(to_fp(served.energy_mj));
        if served.offloaded {
            self.offloaded += 1;
            region.offloaded += 1;
        }
        if served.switched {
            self.switches += 1;
            region.switches += 1;
        }
        if served.shed_to_local {
            region.shed_to_local += 1;
        }
        if served.retreated {
            region.retreated += 1;
        }
        if let Some(dest) = served.failover_region {
            region.failed_over += 1;
            self.per_region[dest as usize].failover_in += 1;
        }
    }

    /// Merges a shard partial into this report. Histogram counts and
    /// fixed-point sums make the result independent of merge order.
    ///
    /// # Panics
    ///
    /// Panics if the two reports were built from different scenarios
    /// (histogram layouts or region lists differ).
    pub fn merge(&mut self, other: &FleetReport) {
        assert_eq!(
            self.per_region.len(),
            other.per_region.len(),
            "region lists differ"
        );
        self.latency.merge(&other.latency);
        self.energy.merge(&other.energy);
        self.switches += other.switches;
        self.offloaded += other.offloaded;
        for (a, b) in self.per_region.iter_mut().zip(&other.per_region) {
            a.merge(b);
        }
        // Stage vectors grow on demand, so partials may differ in length
        // (a shard that saw no deep stage stays short): pad to the max.
        if self.stage_completions.len() < other.stage_completions.len() {
            self.stage_completions
                .resize(other.stage_completions.len(), 0);
            self.stage_sojourn
                .resize_with(other.stage_sojourn.len(), || {
                    Histogram::new(crate::cloud::SOJOURN_BIN_MS, crate::cloud::SOJOURN_BINS)
                });
        }
        for (a, b) in self
            .stage_completions
            .iter_mut()
            .zip(&other.stage_completions)
        {
            *a += b;
        }
        for (a, b) in self.stage_sojourn.iter_mut().zip(&other.stage_sojourn) {
            a.merge(b);
        }
        self.transfer_ms_fp = self.transfer_ms_fp.saturating_add(other.transfer_ms_fp);
    }

    pub(crate) fn set_queue_series(&mut self, depth: Vec<Vec<f64>>, wait: Vec<Vec<f64>>) {
        self.queue_depth = depth;
        self.queue_wait_ms = wait;
    }

    pub(crate) fn set_backend_reports(&mut self, backends: Vec<BackendReport>) {
        self.backends = backends;
    }

    pub(crate) fn set_cloud_sojourn(&mut self, sojourn: Vec<Histogram>) {
        debug_assert_eq!(sojourn.len(), self.per_region.len());
        self.cloud_sojourn = sojourn;
    }

    /// End-to-end latency distribution (ms per inference, queue waits
    /// included).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Edge-energy distribution (mJ per inference).
    pub fn energy(&self) -> &Histogram {
        &self.energy
    }

    /// Total inferences served by the fleet.
    pub fn inferences(&self) -> u64 {
        self.latency.count()
    }

    /// Inferences that used the cloud (including failovers).
    pub fn offloaded(&self) -> u64 {
        self.offloaded
    }

    /// Total dynamic-policy option switches.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Offloads shed to on-device execution, fleet-wide.
    pub fn shed_to_local(&self) -> u64 {
        self.per_region.iter().map(|r| r.shed_to_local).sum()
    }

    /// Offloads that failed over to a sibling region, fleet-wide.
    pub fn failed_over(&self) -> u64 {
        self.per_region.iter().map(|r| r.failed_over).sum()
    }

    /// Offload-bound requests that retreated to local execution because
    /// the published epoch p99 exceeded the tail deadline, fleet-wide.
    pub fn retreated(&self) -> u64 {
        self.per_region.iter().map(|r| r.retreated).sum()
    }

    /// Per-region breakdowns, in the scenario's region order.
    pub fn regions(&self) -> &[RegionReport] {
        &self.per_region
    }

    /// Per-backend serving stats, region-major (empty until a run
    /// completes).
    pub fn backends(&self) -> &[BackendReport] {
        &self.backends
    }

    /// Cloud backlog (jobs) per region per epoch. The sampling point
    /// differs by fidelity: the fluid tier samples **after admitting** the
    /// epoch's arrivals but before draining them (the epoch's peak
    /// backlog), while the per-request microsim samples the **residual**
    /// queue at the epoch barrier, after the epoch has been served — a
    /// keeping-up tier therefore reports near-zero depths per-request
    /// where fluid reports the in-flight epoch load.
    pub fn queue_depth(&self) -> &[Vec<f64>] {
        &self.queue_depth
    }

    /// Queue wait (ms) per region per epoch for the *low-priority* class —
    /// the worst case an offloaded inference of that epoch experienced.
    /// Under [`crate::QueueDiscipline::Fifo`] every device is in this
    /// class; under the priority discipline, high-priority devices saw a
    /// shorter (high-class) wait not recorded here.
    pub fn queue_wait_ms(&self) -> &[Vec<f64>] {
        &self.queue_wait_ms
    }

    /// Exact per-request cloud sojourn histograms (ms), one per *serving*
    /// region in scenario order. Only the per-request fidelity populates
    /// these; under the fluid model every histogram is empty (counts 0) —
    /// the fluid tier resolves epochs as aggregates and has no
    /// per-request times to record.
    pub fn cloud_sojourn(&self) -> &[Histogram] {
        &self.cloud_sojourn
    }

    /// Completed pipeline-stage requests per stage (index = stage − 1).
    /// Empty for monolithic scenarios; under a staged run every element
    /// equals the admitted offload count once the run drains — the
    /// stage-conservation invariant.
    pub fn stage_completions(&self) -> &[u64] {
        &self.stage_completions
    }

    /// Per-stage cloud sojourn histograms (ms), index = stage − 1.
    /// Populated only by the per-request fidelity of a staged run.
    pub fn stage_sojourn(&self) -> &[Histogram] {
        &self.stage_sojourn
    }

    /// Total inter-stage activation-transfer time charged to the fleet
    /// (ms; 0 for monolithic scenarios).
    pub fn transfer_ms(&self) -> f64 {
        fp_sum_to_f64(self.transfer_ms_fp)
    }

    /// Tail summary of one region's per-request cloud sojourns (all zeros
    /// under the fluid model).
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    pub fn region_tail(&self, region: usize) -> TailSummary {
        self.cloud_sojourn[region].tail_summary()
    }

    /// Total edge energy spent by the fleet (mJ).
    pub fn total_energy_mj(&self) -> f64 {
        self.energy.sum()
    }

    /// Total provisioned cloud cost across all backends:
    /// `Σ_epochs slots · price_per_slot_epoch` per backend, summed exactly
    /// in fixed point (0 when no backend is priced).
    pub fn provision_cost(&self) -> f64 {
        fp_sum_to_f64(
            self.backends
                .iter()
                .map(|b| b.cost_fp)
                .fold(0i128, i128::saturating_add),
        )
    }

    /// Total cloud-side serving energy across all backends (mJ; 0 when
    /// unmodeled).
    pub fn cloud_energy_mj(&self) -> f64 {
        self.backends.iter().map(|b| b.cloud_energy_mj).sum()
    }

    /// Total autoscaling events applied across all backends.
    pub fn scaling_events(&self) -> u64 {
        self.backends.iter().map(|b| b.scaling_events).sum()
    }

    /// The price × energy figure of merit the cost-aware serving tier
    /// minimizes: provisioned cost × cloud serving energy. Zero whenever
    /// either axis is unmodeled — compare runs only when both are priced.
    pub fn price_energy(&self) -> f64 {
        self.provision_cost() * self.cloud_energy_mj()
    }

    /// Total end-to-end latency accumulated by the fleet (ms).
    pub fn total_latency_ms(&self) -> f64 {
        self.latency.sum()
    }

    /// Aggregate energy·delay: total edge energy (mJ) × mean end-to-end
    /// latency (ms) — the congestion-sensitive figure of merit
    /// `examples/cloud_batching.rs` sweeps.
    pub fn energy_delay(&self) -> f64 {
        self.total_energy_mj() * self.latency.mean()
    }

    /// An order-independent digest of the aggregates — handy for asserting
    /// the determinism contract without comparing full structs.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        let mut feed = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        let feed_fp = |h: &mut dyn FnMut(u64), fp: i128| {
            h(fp as u64);
            h((fp >> 64) as u64);
        };
        feed(self.inferences());
        feed(self.offloaded);
        feed(self.switches);
        feed_fp(&mut feed, self.latency.sum_fp());
        feed_fp(&mut feed, self.energy.sum_fp());
        for r in &self.per_region {
            feed(r.inferences);
            feed(r.offloaded);
            feed(r.switches);
            feed(r.shed_to_local);
            feed(r.failed_over);
            feed(r.failover_in);
            feed(r.retreated);
            feed_fp(&mut feed, r.latency_sum_fp);
            feed_fp(&mut feed, r.energy_sum_fp);
        }
        for b in &self.backends {
            feed(b.batch_sizes.count());
            feed(b.served_jobs.to_bits());
            feed(b.busy_ms.to_bits());
            feed(b.sojourn_ms.count());
            feed_fp(&mut feed, b.sojourn_ms.sum_fp());
            feed(b.scaling_events);
            feed_fp(&mut feed, b.cost_fp);
            feed(b.cloud_energy_mj.to_bits());
            for &slots in &b.slot_timeline {
                feed(slots as u64);
            }
        }
        for s in &self.cloud_sojourn {
            feed(s.count());
            feed_fp(&mut feed, s.sum_fp());
        }
        // Staged runs feed their stage accounting; monolithic runs skip
        // the block entirely so their digests are unchanged from the
        // pre-pipeline engine.
        if !self.stage_completions.is_empty() || self.transfer_ms_fp != 0 {
            feed(self.stage_completions.len() as u64);
            for &c in &self.stage_completions {
                feed(c);
            }
            for s in &self.stage_sojourn {
                feed(s.count());
                feed_fp(&mut feed, s.sum_fp());
            }
            feed_fp(&mut feed, self.transfer_ms_fp);
        }
        h
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet report: {} inferences, {} offloaded ({:.1}%), {} switches, {} shed, {} failed over, {} retreated",
            self.inferences(),
            self.offloaded,
            if self.inferences() == 0 {
                0.0
            } else {
                100.0 * self.offloaded as f64 / self.inferences() as f64
            },
            self.switches,
            self.shed_to_local(),
            self.failed_over(),
            self.retreated(),
        )?;
        writeln!(
            f,
            "  latency ms: mean {:.2}  p50 {:.2}  p99 {:.2}  max {:.2}",
            self.latency.mean(),
            self.latency.percentile(50.0),
            self.latency.percentile(99.0),
            self.latency.max()
        )?;
        writeln!(
            f,
            "  energy mJ:  mean {:.2}  p50 {:.2}  p99 {:.2}  max {:.2}",
            self.energy.mean(),
            self.energy.percentile(50.0),
            self.energy.percentile(99.0),
            self.energy.max()
        )?;
        for r in &self.per_region {
            writeln!(
                f,
                "  {:<14} {:>9} inf, {:>5.1}% offloaded, mean {:.2} ms / {:.2} mJ",
                r.region,
                r.inferences,
                if r.inferences == 0 {
                    0.0
                } else {
                    100.0 * r.offloaded as f64 / r.inferences as f64
                },
                r.mean_latency_ms(),
                r.mean_energy_mj()
            )?;
        }
        for b in &self.backends {
            write!(
                f,
                "  {:<10}/{:<8} {:>9.0} jobs in {:>8.0} batches (mean {:>5.1}/batch), {:>5.1}% util",
                b.region,
                b.backend,
                b.served_jobs,
                b.batches,
                b.mean_batch(),
                100.0 * b.utilization
            )?;
            if b.scaling_events > 0 || b.cost_fp != 0 {
                write!(
                    f,
                    ", {} slots ({} scale events), cost {:.2}",
                    b.final_slots(),
                    b.scaling_events,
                    b.provision_cost()
                )?;
            }
            writeln!(f)?;
        }
        for (r, s) in self.per_region.iter().zip(&self.cloud_sojourn) {
            if s.count() > 0 {
                writeln!(
                    f,
                    "  {:<14} cloud sojourn ms: {}",
                    r.region,
                    s.tail_summary()
                )?;
            }
        }
        if !self.stage_completions.is_empty() {
            write!(f, "  pipeline stages:")?;
            for (i, &c) in self.stage_completions.iter().enumerate() {
                write!(f, " s{}={}", i + 1, c)?;
            }
            writeln!(f, ", transfer {:.1} ms total", self.transfer_ms())?;
            for (i, s) in self.stage_sojourn.iter().enumerate() {
                if s.count() > 0 {
                    writeln!(f, "  stage {} sojourn ms: {}", i + 1, s.tail_summary())?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Served;

    fn served(latency_ms: f64, energy_mj: f64, offloaded: bool, switched: bool) -> Served {
        Served {
            latency_ms,
            energy_mj,
            offloaded,
            switched,
            shed_to_local: false,
            failover_region: None,
            retreated: false,
        }
    }

    #[test]
    fn stage_accounting_merges_pads_and_guards_the_digest() {
        let regions = vec!["A".to_string()];
        let empty = FleetReport::empty(10.0, 5.0, 100, &regions);
        let monolithic_digest = empty.digest();

        let mut a = empty.clone();
        let mut b = empty.clone();
        // `a` saw stages 1 and 2; `b` only stage 1 (shorter vectors).
        a.record_stage_completion(1, Some(12.0));
        a.record_stage_completion(2, Some(30.0));
        a.record_transfer_ms(4.5);
        b.record_stage_completion(1, None);
        let a_alone = a.digest();

        // Merge pads the shorter side in either direction.
        let mut ba = b.clone();
        ba.merge(&a);
        a.merge(&b);
        assert_eq!(a.stage_completions(), &[2, 1]);
        assert_eq!(ba.stage_completions(), &[2, 1]);
        assert_eq!(a.stage_sojourn()[0].count(), 1);
        assert_eq!(a.stage_sojourn()[1].count(), 1);
        assert!((a.transfer_ms() - 4.5).abs() < 1e-9);
        assert_eq!(a.digest(), ba.digest(), "merge must be order-independent");
        assert_ne!(a.digest(), a_alone);

        // Monolithic reports never enter the stage block: digest is the
        // pre-pipeline value and the accessors stay empty.
        assert_eq!(empty.digest(), monolithic_digest);
        assert!(empty.stage_completions().is_empty());
        assert!(empty.stage_sojourn().is_empty());
        assert_eq!(empty.transfer_ms(), 0.0);
        let shown = format!("{a}");
        assert!(shown.contains("pipeline stages: s1=2 s2=1"), "{shown}");
    }

    #[test]
    fn histogram_records_and_queries() {
        let mut h = Histogram::new(1.0, 10);
        for v in 0..10 {
            h.record(v as f64 + 0.5);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.overflow(), 0);
        assert!((h.mean() - 5.0).abs() < 1e-12);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 9.5);
        let p50 = h.percentile(50.0);
        assert!((4.0..=6.0).contains(&p50), "p50 {p50}");
        assert!(h.percentile(100.0) >= h.percentile(0.0));
    }

    #[test]
    fn histogram_overflow_and_negative_clamp() {
        let mut h = Histogram::new(1.0, 4);
        h.record(100.0);
        h.record(-3.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), -3.0);
        assert_eq!(h.max(), 100.0);
        // The overflow percentile falls back to the exact max.
        assert_eq!(h.percentile(100.0), 100.0);
    }

    #[test]
    fn histogram_merge_equals_combined_stream() {
        let mut a = Histogram::new(2.0, 50);
        let mut b = Histogram::new(2.0, 50);
        let mut whole = Histogram::new(2.0, 50);
        for i in 0..100 {
            let v = (i * 7 % 90) as f64;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.percentile(50.0), whole.percentile(50.0));
        assert_eq!(a.percentile(99.0), whole.percentile(99.0));
        // Fixed-point sums are exact: bitwise equality, not a tolerance.
        assert_eq!(a.sum(), whole.sum());
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new(1.0, 10);
        let mut b = Histogram::new(1.0, 10);
        a.record_n(3.5, 4);
        for _ in 0..4 {
            b.record(3.5);
        }
        assert_eq!(a, b);
        a.record_n(5.0, 0); // no-op
        assert_eq!(a.count(), 4);
    }

    #[test]
    fn merge_saturates_counts_instead_of_wrapping() {
        let mut a = Histogram::new(1.0, 4);
        let mut b = Histogram::new(1.0, 4);
        a.record_n(0.5, u64::MAX - 1);
        b.record_n(0.5, 2);
        b.record_n(100.0, u64::MAX); // overflow bucket at the boundary
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX, "count must saturate, not wrap");
        assert_eq!(a.overflow(), u64::MAX);
        // The first bin itself saturates too.
        let mut c = Histogram::new(1.0, 4);
        c.record_n(0.5, u64::MAX);
        c.record(0.5);
        assert_eq!(c.count(), u64::MAX);
        assert!(c.percentile(50.0) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "bin widths differ")]
    fn histogram_merge_rejects_mismatched_layout() {
        let mut a = Histogram::new(1.0, 10);
        let b = Histogram::new(2.0, 10);
        a.merge(&b);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new(1.0, 10);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn report_record_and_merge() {
        let regions = vec!["A".to_string(), "B".to_string()];
        let mut a = FleetReport::empty(1.0, 1.0, 100, &regions);
        let mut b = FleetReport::empty(1.0, 1.0, 100, &regions);
        a.record(0, &served(10.0, 5.0, true, false));
        b.record(1, &served(20.0, 2.0, false, true));
        a.merge(&b);
        assert_eq!(a.inferences(), 2);
        assert_eq!(a.offloaded(), 1);
        assert_eq!(a.switches(), 1);
        assert_eq!(a.regions()[0].inferences, 1);
        assert_eq!(a.regions()[1].switches, 1);
        assert_eq!(a.total_latency_ms(), 30.0);
        assert_eq!(a.total_energy_mj(), 7.0);
        assert_eq!(a.energy_delay(), 7.0 * 15.0);
    }

    #[test]
    fn shed_and_failover_are_counted_per_region() {
        let regions = vec!["A".to_string(), "B".to_string()];
        let mut r = FleetReport::empty(1.0, 1.0, 100, &regions);
        let mut shed = served(30.0, 9.0, false, false);
        shed.shed_to_local = true;
        r.record(0, &shed);
        let mut over = served(40.0, 3.0, true, false);
        over.failover_region = Some(1);
        r.record(0, &over);
        assert_eq!(r.regions()[0].shed_to_local, 1);
        assert_eq!(r.regions()[0].failed_over, 1);
        assert_eq!(r.regions()[1].failover_in, 1);
        assert_eq!(r.shed_to_local(), 1);
        assert_eq!(r.failed_over(), 1);
        let s = format!("{r}");
        assert!(s.contains("1 shed"), "{s}");
        assert!(s.contains("1 failed over"), "{s}");
    }

    #[test]
    fn digest_tracks_content() {
        let regions = vec!["A".to_string()];
        let mut a = FleetReport::empty(1.0, 1.0, 100, &regions);
        let mut b = FleetReport::empty(1.0, 1.0, 100, &regions);
        assert_eq!(a.digest(), b.digest());
        a.record(0, &served(1.0, 1.0, false, false));
        assert_ne!(a.digest(), b.digest());
        b.record(0, &served(1.0, 1.0, false, false));
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn merge_is_order_independent() {
        let regions = vec!["A".to_string()];
        let mut parts = Vec::new();
        for i in 0..4 {
            let mut p = FleetReport::empty(1.0, 1.0, 100, &regions);
            // Values chosen to be non-representable in binary so a float
            // accumulator would be order-sensitive.
            p.record(
                0,
                &served(0.1 * (i + 1) as f64, 0.3 + i as f64, false, false),
            );
            parts.push(p);
        }
        let mut fwd = FleetReport::empty(1.0, 1.0, 100, &regions);
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = FleetReport::empty(1.0, 1.0, 100, &regions);
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.digest(), rev.digest());
    }

    #[test]
    fn display_summarizes() {
        let regions = vec!["USA".to_string()];
        let mut r = FleetReport::empty(1.0, 1.0, 100, &regions);
        r.record(0, &served(12.0, 3.0, true, true));
        r.set_backend_reports(vec![BackendReport {
            region: "USA".to_string(),
            backend: "gpu".to_string(),
            slots: 2,
            served_jobs: 100.0,
            batches: 10.0,
            busy_ms: 500.0,
            utilization: 0.5,
            batch_sizes: Histogram::new(1.0, 8),
            sojourn_ms: Histogram::new(1.0, 8),
            slot_timeline: vec![2, 2, 4],
            scaling_events: 1,
            cost_fp: 8_000_000,
            cloud_energy_mj: 25.0,
        }]);
        let s = format!("{r}");
        assert!(s.contains("fleet report"));
        assert!(s.contains("USA"));
        assert!(s.contains("gpu"));
        assert!(s.contains("50.0% util"));
        // Fluid reports carry empty sojourn histograms: no tail lines.
        assert!(!s.contains("cloud sojourn"), "{s}");
        let mut sojourn = Histogram::new(10.0, 100);
        sojourn.record(42.0);
        r.set_cloud_sojourn(vec![sojourn]);
        let s = format!("{r}");
        assert!(s.contains("cloud sojourn"), "{s}");
    }

    #[test]
    fn tail_summary_is_monotone_and_displays() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..1000 {
            h.record((i * 37 % 90) as f64);
        }
        let tail = h.tail_summary();
        assert!(tail.is_monotone(), "{tail:?}");
        assert!(tail.p99 <= h.max() + 1.0);
        let s = format!("{tail}");
        assert!(s.contains("p50") && s.contains("p99"), "{s}");
        // Empty histograms summarize to all-zeros (the fluid-mode view).
        let empty = Histogram::new(1.0, 10).tail_summary();
        assert_eq!(
            empty,
            TailSummary {
                p50: 0.0,
                p90: 0.0,
                p95: 0.0,
                p99: 0.0
            }
        );
        assert!(empty.is_monotone());
    }

    // The per-request microsim records through the single-observation
    // `record` path (one request at a time, batch sizes of 1 under a
    // zero-linger batcher) — pin that this path saturates counts and keeps
    // exact i128 micro-unit sums just like the fluid `record_n` path.

    #[test]
    fn single_record_path_saturates_counts() {
        let mut h = Histogram::new(1.0, 4);
        h.record_n(0.5, u64::MAX);
        h.record(0.5); // the per-request entry point on a saturated bin
        assert_eq!(h.count(), u64::MAX, "count must saturate, not wrap");
        assert_eq!(h.overflow(), 0);
        h.record(100.0); // overflow bucket on a saturated total
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn single_record_sums_stay_exact_in_micro_units() {
        // 0.1 ms is not binary-representable; a float accumulator would
        // drift over many single-request records, the fixed-point sum
        // cannot. 10_000 × 0.1 must be exactly 1000 µ-units × 10⁶.
        let mut h = Histogram::new(1.0, 10);
        for _ in 0..10_000 {
            h.record(0.1);
        }
        assert_eq!(h.sum_fp(), 10_000i128 * 100_000);
        assert_eq!(h.sum(), 1000.0);
        // Extreme values saturate the i128 accumulator instead of
        // wrapping (as casts clamp, saturating_add holds it there).
        let mut extreme = Histogram::new(1.0, 4);
        extreme.record(f64::MAX);
        extreme.record(f64::MAX);
        assert_eq!(extreme.sum_fp(), i128::MAX);
        extreme.record(0.5);
        assert_eq!(extreme.sum_fp(), i128::MAX, "sum must stay saturated");
        assert_eq!(extreme.count(), 3);
    }

    #[test]
    fn fp_sums_convert_exactly_and_saturate_explicitly() {
        // Small sums round-trip to the micro-unit.
        assert_eq!(fp_sum_to_f64(0), 0.0);
        assert_eq!(fp_sum_to_f64(1_234_567), 1.234567);
        assert_eq!(fp_sum_to_f64(-1_234_567), -1.234567);
        // A million-device day of latency sums: ~1.44e17 µ-ms, past the
        // 2^53 µ-unit window where the old raw `as f64` cast started
        // dropping bits. Integer-space division keeps the unit part
        // exact and the fraction within one rounding.
        let day = 144_000_000_000_123_456i128;
        assert!((fp_sum_to_f64(day) - (144e9 + 0.123456)).abs() < 1e-4);
        // Beyond 2^53 *units* the conversion saturates explicitly
        // instead of silently degrading.
        let limit = (1i128 << 53) as f64;
        assert_eq!(fp_sum_to_f64(i128::MAX), limit);
        assert_eq!(fp_sum_to_f64(i128::MIN), -limit);
    }

    #[test]
    fn reset_is_indistinguishable_from_a_fresh_histogram() {
        // The hot-bin watermark makes reset O(touched bins); it must
        // still clear everything observable (derived PartialEq covers
        // the watermark itself, so a stale count would show here).
        let mut h = Histogram::new(1.0, 1024);
        h.record(3.5);
        h.record(700.25);
        h.record(5000.0); // overflow bucket
        let empty = Histogram::new(1.0, 1024);
        assert_ne!(h, empty);
        h.reset();
        assert_eq!(h, empty);
        h.record(2.0);
        let mut again = Histogram::new(1.0, 1024);
        again.record(2.0);
        assert_eq!(h, again, "post-reset records must match a fresh start");
        assert_eq!(h.percentile(99.0), again.percentile(99.0));
    }

    #[test]
    fn zero_width_batches_cannot_occur_but_width_one_bins_do() {
        // A zero-linger batcher closes batches of exactly 1: the
        // batch-size histogram must place them in the [1, 2) bin, not the
        // clamped [0, 1) bin.
        let mut batch_sizes = Histogram::new(1.0, 8);
        batch_sizes.record(1.0);
        assert_eq!(batch_sizes.count(), 1);
        assert!(batch_sizes.percentile(50.0) >= 1.0);
        assert_eq!(batch_sizes.min(), 1.0);
    }
}
