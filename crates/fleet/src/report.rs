//! Mergeable fleet-level aggregates.
//!
//! Shards accumulate partial [`FleetReport`]s independently and the engine
//! merges them in shard order at the end of a run. Distribution statistics
//! use fixed-bin [`Histogram`]s (integer counts, so merging is exact and
//! order-independent); only the floating-point sums depend on merge order,
//! which the engine keeps fixed.

use std::fmt;

/// A fixed-bin histogram over `[0, bin_width · num_bins)` with an overflow
/// bucket, supporting exact merging and percentile queries.
///
/// # Examples
///
/// ```
/// use lens_fleet::Histogram;
///
/// let mut h = Histogram::new(10.0, 100);
/// for v in [5.0, 15.0, 15.0, 2000.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.overflow(), 1);
/// assert!(h.percentile(50.0) < 20.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates an empty histogram with `num_bins` bins of `bin_width` each.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not positive/finite or `num_bins` is zero.
    pub fn new(bin_width: f64, num_bins: usize) -> Self {
        assert!(
            bin_width.is_finite() && bin_width > 0.0,
            "bin_width must be positive and finite"
        );
        assert!(num_bins > 0, "num_bins must be positive");
        Histogram {
            bin_width,
            counts: vec![0; num_bins],
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation. Negative values clamp into the first bin;
    /// values at or beyond the histogram range land in the overflow bucket
    /// (still contributing their exact value to `sum`/`min`/`max`).
    pub fn record(&mut self, value: f64) {
        let idx = (value / self.bin_width).floor();
        if idx >= self.counts.len() as f64 {
            self.overflow += 1;
        } else {
            self.counts[idx.max(0.0) as usize] += 1;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bin layouts.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin widths differ");
        assert_eq!(self.counts.len(), other.counts.len(), "bin counts differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations beyond the binned range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded value (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest recorded value (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `p`-th percentile (`0 ≤ p ≤ 100`), linearly interpolated within
    /// the containing bin. Returns 0 for an empty histogram; percentiles
    /// that fall in the overflow bucket return the exact observed maximum.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        if self.count == 0 {
            return 0.0;
        }
        let rank = p / 100.0 * self.count as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c;
            if rank <= next as f64 {
                let within = (rank - seen as f64) / c as f64;
                return (i as f64 + within.clamp(0.0, 1.0)) * self.bin_width;
            }
            seen = next;
        }
        self.max
    }
}

/// Per-region aggregates inside a [`FleetReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegionReport {
    /// Region name (from the scenario's regional mix).
    pub region: String,
    /// Inference count served by devices of this region.
    pub inferences: u64,
    /// How many of those used the cloud (All-Cloud or a split).
    pub offloaded: u64,
    /// Dynamic-policy option switches in this region.
    pub switches: u64,
    /// Sum of end-to-end latencies (ms) including queue waits.
    pub latency_sum_ms: f64,
    /// Sum of edge energies (mJ).
    pub energy_sum_mj: f64,
}

impl RegionReport {
    pub(crate) fn new(region: &str) -> Self {
        RegionReport {
            region: region.to_string(),
            inferences: 0,
            offloaded: 0,
            switches: 0,
            latency_sum_ms: 0.0,
            energy_sum_mj: 0.0,
        }
    }

    /// Mean latency per inference in this region (0 when empty).
    pub fn mean_latency_ms(&self) -> f64 {
        if self.inferences == 0 {
            0.0
        } else {
            self.latency_sum_ms / self.inferences as f64
        }
    }

    /// Mean edge energy per inference in this region (0 when empty).
    pub fn mean_energy_mj(&self) -> f64 {
        if self.inferences == 0 {
            0.0
        } else {
            self.energy_sum_mj / self.inferences as f64
        }
    }

    fn merge(&mut self, other: &RegionReport) {
        debug_assert_eq!(self.region, other.region);
        self.inferences += other.inferences;
        self.offloaded += other.offloaded;
        self.switches += other.switches;
        self.latency_sum_ms += other.latency_sum_ms;
        self.energy_sum_mj += other.energy_sum_mj;
    }
}

/// Aggregate outcome of a fleet run: population-wide latency/energy
/// distributions, switching behavior, per-region breakdowns, and the cloud
/// queue's depth/wait trajectories.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    latency: Histogram,
    energy: Histogram,
    switches: u64,
    offloaded: u64,
    per_region: Vec<RegionReport>,
    /// `[region][epoch]` cloud backlog (jobs) at each epoch barrier.
    queue_depth: Vec<Vec<f64>>,
    /// `[region][epoch]` low-priority-class queue wait (ms) — the
    /// worst-case wait an offloaded inference of that epoch experienced.
    queue_wait_ms: Vec<Vec<f64>>,
}

impl FleetReport {
    pub(crate) fn empty(
        latency_bin_ms: f64,
        energy_bin_mj: f64,
        num_bins: usize,
        regions: &[String],
    ) -> Self {
        FleetReport {
            latency: Histogram::new(latency_bin_ms, num_bins),
            energy: Histogram::new(energy_bin_mj, num_bins),
            switches: 0,
            offloaded: 0,
            per_region: regions.iter().map(|r| RegionReport::new(r)).collect(),
            queue_depth: Vec::new(),
            queue_wait_ms: Vec::new(),
        }
    }

    pub(crate) fn record(
        &mut self,
        region_index: usize,
        latency_ms: f64,
        energy_mj: f64,
        offloaded: bool,
        switched: bool,
    ) {
        self.latency.record(latency_ms);
        self.energy.record(energy_mj);
        let region = &mut self.per_region[region_index];
        region.inferences += 1;
        region.latency_sum_ms += latency_ms;
        region.energy_sum_mj += energy_mj;
        if offloaded {
            self.offloaded += 1;
            region.offloaded += 1;
        }
        if switched {
            self.switches += 1;
            region.switches += 1;
        }
    }

    /// Merges a shard partial into this report (in shard order, for
    /// reproducible floating-point sums).
    ///
    /// # Panics
    ///
    /// Panics if the two reports were built from different scenarios
    /// (histogram layouts or region lists differ).
    pub fn merge(&mut self, other: &FleetReport) {
        assert_eq!(
            self.per_region.len(),
            other.per_region.len(),
            "region lists differ"
        );
        self.latency.merge(&other.latency);
        self.energy.merge(&other.energy);
        self.switches += other.switches;
        self.offloaded += other.offloaded;
        for (a, b) in self.per_region.iter_mut().zip(&other.per_region) {
            a.merge(b);
        }
    }

    pub(crate) fn set_queue_series(&mut self, depth: Vec<Vec<f64>>, wait: Vec<Vec<f64>>) {
        self.queue_depth = depth;
        self.queue_wait_ms = wait;
    }

    /// End-to-end latency distribution (ms per inference, queue waits
    /// included).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Edge-energy distribution (mJ per inference).
    pub fn energy(&self) -> &Histogram {
        &self.energy
    }

    /// Total inferences served by the fleet.
    pub fn inferences(&self) -> u64 {
        self.latency.count()
    }

    /// Inferences that used the cloud.
    pub fn offloaded(&self) -> u64 {
        self.offloaded
    }

    /// Total dynamic-policy option switches.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Per-region breakdowns, in the scenario's region order.
    pub fn regions(&self) -> &[RegionReport] {
        &self.per_region
    }

    /// Cloud backlog (jobs) per region per epoch.
    pub fn queue_depth(&self) -> &[Vec<f64>] {
        &self.queue_depth
    }

    /// Queue wait (ms) per region per epoch for the *low-priority* class —
    /// the worst case an offloaded inference of that epoch experienced.
    /// Under [`crate::QueueDiscipline::Fifo`] every device is in this
    /// class; under the priority discipline, high-priority devices saw a
    /// shorter (high-class) wait not recorded here.
    pub fn queue_wait_ms(&self) -> &[Vec<f64>] {
        &self.queue_wait_ms
    }

    /// Total edge energy spent by the fleet (mJ).
    pub fn total_energy_mj(&self) -> f64 {
        self.energy.sum()
    }

    /// Total end-to-end latency accumulated by the fleet (ms).
    pub fn total_latency_ms(&self) -> f64 {
        self.latency.sum()
    }

    /// An order-independent digest of the integer aggregates — handy for
    /// asserting the determinism contract without comparing full structs.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        let mut feed = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        feed(self.inferences());
        feed(self.offloaded);
        feed(self.switches);
        // Exact f64 sums, bit-for-bit.
        feed(self.latency.sum().to_bits());
        feed(self.energy.sum().to_bits());
        for r in &self.per_region {
            feed(r.inferences);
            feed(r.offloaded);
            feed(r.switches);
            feed(r.latency_sum_ms.to_bits());
            feed(r.energy_sum_mj.to_bits());
        }
        h
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet report: {} inferences, {} offloaded ({:.1}%), {} switches",
            self.inferences(),
            self.offloaded,
            if self.inferences() == 0 {
                0.0
            } else {
                100.0 * self.offloaded as f64 / self.inferences() as f64
            },
            self.switches
        )?;
        writeln!(
            f,
            "  latency ms: mean {:.2}  p50 {:.2}  p99 {:.2}  max {:.2}",
            self.latency.mean(),
            self.latency.percentile(50.0),
            self.latency.percentile(99.0),
            self.latency.max()
        )?;
        writeln!(
            f,
            "  energy mJ:  mean {:.2}  p50 {:.2}  p99 {:.2}  max {:.2}",
            self.energy.mean(),
            self.energy.percentile(50.0),
            self.energy.percentile(99.0),
            self.energy.max()
        )?;
        for r in &self.per_region {
            writeln!(
                f,
                "  {:<14} {:>9} inf, {:>5.1}% offloaded, mean {:.2} ms / {:.2} mJ",
                r.region,
                r.inferences,
                if r.inferences == 0 {
                    0.0
                } else {
                    100.0 * r.offloaded as f64 / r.inferences as f64
                },
                r.mean_latency_ms(),
                r.mean_energy_mj()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_queries() {
        let mut h = Histogram::new(1.0, 10);
        for v in 0..10 {
            h.record(v as f64 + 0.5);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.overflow(), 0);
        assert!((h.mean() - 5.0).abs() < 1e-12);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 9.5);
        let p50 = h.percentile(50.0);
        assert!((4.0..=6.0).contains(&p50), "p50 {p50}");
        assert!(h.percentile(100.0) >= h.percentile(0.0));
    }

    #[test]
    fn histogram_overflow_and_negative_clamp() {
        let mut h = Histogram::new(1.0, 4);
        h.record(100.0);
        h.record(-3.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), -3.0);
        assert_eq!(h.max(), 100.0);
        // The overflow percentile falls back to the exact max.
        assert_eq!(h.percentile(100.0), 100.0);
    }

    #[test]
    fn histogram_merge_equals_combined_stream() {
        let mut a = Histogram::new(2.0, 50);
        let mut b = Histogram::new(2.0, 50);
        let mut whole = Histogram::new(2.0, 50);
        for i in 0..100 {
            let v = (i * 7 % 90) as f64;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.percentile(50.0), whole.percentile(50.0));
        assert_eq!(a.percentile(99.0), whole.percentile(99.0));
        assert!((a.sum() - whole.sum()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bin widths differ")]
    fn histogram_merge_rejects_mismatched_layout() {
        let mut a = Histogram::new(1.0, 10);
        let b = Histogram::new(2.0, 10);
        a.merge(&b);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new(1.0, 10);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn report_record_and_merge() {
        let regions = vec!["A".to_string(), "B".to_string()];
        let mut a = FleetReport::empty(1.0, 1.0, 100, &regions);
        let mut b = FleetReport::empty(1.0, 1.0, 100, &regions);
        a.record(0, 10.0, 5.0, true, false);
        b.record(1, 20.0, 2.0, false, true);
        a.merge(&b);
        assert_eq!(a.inferences(), 2);
        assert_eq!(a.offloaded(), 1);
        assert_eq!(a.switches(), 1);
        assert_eq!(a.regions()[0].inferences, 1);
        assert_eq!(a.regions()[1].switches, 1);
        assert!((a.total_latency_ms() - 30.0).abs() < 1e-12);
        assert!((a.total_energy_mj() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn digest_tracks_content() {
        let regions = vec!["A".to_string()];
        let mut a = FleetReport::empty(1.0, 1.0, 100, &regions);
        let mut b = FleetReport::empty(1.0, 1.0, 100, &regions);
        assert_eq!(a.digest(), b.digest());
        a.record(0, 1.0, 1.0, false, false);
        assert_ne!(a.digest(), b.digest());
        b.record(0, 1.0, 1.0, false, false);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn display_summarizes() {
        let regions = vec!["USA".to_string()];
        let mut r = FleetReport::empty(1.0, 1.0, 100, &regions);
        r.record(0, 12.0, 3.0, true, true);
        let s = format!("{r}");
        assert!(s.contains("fleet report"));
        assert!(s.contains("USA"));
    }
}
