//! Population-scale fleet simulation for edge–cloud serving.
//!
//! The single-device simulator in `lens-runtime` replays **one** throughput
//! trace against **one** dominance map (Fig 8). This crate scales that story
//! to the ROADMAP's north star: **thousands to millions of concurrent device
//! sessions**, spread over the paper's Table I regions and wireless
//! technologies, all sharing a **finite-capacity cloud**. That opens the one
//! scenario axis the single-device view cannot express: *contention*. When
//! everyone offloads, All-Cloud and the split options stop being free of
//! each other — their latency now depends on how many other devices chose
//! them.
//!
//! # Architecture
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the full
//! walkthrough (crate DAG, event loop, determinism), and
//! `docs/PAPER_MAP.md` for the paper-section → module map.
//!
//! * [`FleetScenario`] — declarative description of a fleet: population
//!   size, regional mix, technology mix, arrival model, cloud serving
//!   tier, switching policy, seed ([`scenario`]).
//! * [`Device`] sessions — a per-device synthesized throughput trace
//!   (`GaussMarkov` around the region's expected rate), a
//!   `ThroughputTracker`, and a deployment policy over the cohort's shared
//!   `DominanceMap` ([`device`]).
//! * [`CloudServing`] / [`RegionServing`] — the per-region serving tier:
//!   heterogeneous [`BackendConfig`] pools (e.g. GPU vs. CPU) with dynamic
//!   batchers ([`BatchPolicy`]: batches close at `max_batch` items or when
//!   `linger_ms` expires, and an affine batch cost amortizes the fixed
//!   part), behind a FIFO/priority queue, an [`AdmissionPolicy`]
//!   (queue-depth or deadline shedding) and a [`FailoverPolicy`] (shed
//!   requests fail over to the least-loaded — or, under cost-aware
//!   dispatch, the cheapest viable — sibling region or fall back to the
//!   device's local-only option) ([`cloud`]).
//! * [`Autoscaler`] / [`DispatchPolicy`] — workload autoscaling and
//!   cost-aware serving: each backend may scale its live slot count at
//!   epoch barriers from an EWMA-damped utilization or queue-depth signal
//!   (cooldown, min/max bounds), slots are priced per epoch, and
//!   [`DispatchPolicy::CostAware`] water-fills by
//!   price × energy × work-left; the barrier order is strictly
//!   drain → scale → publish, so published signals always price
//!   post-scale capacity ([`cloud`]).
//! * [`WorkloadCurve`] / [`ScalingSignal::TailLatency`] — the closed
//!   tail-latency loop: scenarios may carry a piecewise fixed-point
//!   workload curve that modulates per-device offload intent over sim
//!   time, the per-request microsim publishes each region's
//!   epoch-windowed p99 through [`RegionSignal`], tail-targeting
//!   autoscalers step on it (degrading to queue depth under the fluid
//!   tier), and devices retreat to their local-only option while the
//!   published tail exceeds the scenario's deadline budget, re-probing on
//!   a deterministic hash-spread fraction ([`scenario`], [`cloud`],
//!   [`device`]).
//! * [`CloudSimFidelity`] — how the cloud is simulated:
//!   [`CloudSimFidelity::Fluid`] (epoch aggregates, the default) or
//!   [`CloudSimFidelity::PerRequest`], where every offloaded request is a
//!   discrete event in a [`RegionMicrosim`] — its own arrival, queueing,
//!   batch-admission, service, and completion times — giving the report
//!   exact per-request latency histograms with p50/p90/p95/p99 tails per
//!   region and per backend ([`cloud`]).
//! * [`FleetEngine`] — the sharded discrete-event engine ([`engine`]).
//! * [`FleetReport`] — mergeable aggregates: fixed-bin latency/energy
//!   histograms with percentiles, switch/shed/failover counts, per-region
//!   and per-backend breakdowns (utilization, batch-size histograms,
//!   per-request sojourn tails under [`CloudSimFidelity::PerRequest`]),
//!   and cloud-queue depth over time ([`report`]).
//! * Telemetry — [`FleetEngine::run_traced`] records the run through
//!   `lens-telemetry`'s deterministic observability layer: a sim-time
//!   [`FlightRecorder`] of typed [`TraceEvent`]s, fixed-point per-epoch
//!   [`MetricsRegistry`] timelines, and a per-phase [`EngineProfile`] of
//!   work counters, bundled as [`RunTelemetry`] with JSON and Chrome
//!   `trace_event` exports. The untraced [`FleetEngine::run`] uses the
//!   [`NullSink`], whose disabled recording const-folds to nothing
//!   (see `docs/ARCHITECTURE.md`, "Observability").
//!
//! # Sharding and the epoch barrier
//!
//! Devices are partitioned into contiguous shards, one `std::thread` worker
//! per shard, each advancing its own event heap. Shards only interact
//! through the cloud, and the cloud is synchronized at **epoch** boundaries
//! (one epoch = one trace-sample interval by default): within an epoch every
//! shard runs independently, counting how many of its inferences offloaded
//! to each region; at the barrier the engine merges those counts, runs each
//! region's batch-close events (dispatch across backends by least-work-left
//! water-filling, then drain each backend at its batch-amortized rate), and
//! publishes the [`RegionSignal`]s — queue waits and shed fractions — that
//! offloaded inferences experience **in the next epoch**. Contention and
//! admission control therefore feed back with a one-epoch lag — the price
//! of keeping the epoch itself embarrassingly parallel.
//!
//! # Determinism contract
//!
//! **Same seed + same shard count ⇒ bit-identical [`FleetReport`].**
//!
//! Every source of per-device randomness (trace synthesis, arrival phases,
//! priority class, Poisson inter-arrival draws, shed/failover decisions)
//! is seeded by mixing the scenario seed with the stable device id, never
//! from shard-local state, so device behavior does not depend on which
//! shard runs it. Event time is integer microseconds (no float comparison
//! in the heap), histogram bins are integer counts, and value sums are
//! accumulated in fixed-point (micro-unit) integers, so merging shard
//! partials is **exact and order-independent**. In practice the report is
//! therefore bit-identical across shard counts too (`tests/fleet_sim.rs`
//! pins 1 vs. 2 vs. 4 shards on a batched multi-backend scenario); the
//! contract names a fixed shard count as the conservative guarantee.
//!
//! The per-request microsimulation keeps the contract: at each barrier the
//! engine k-way merges every region's offloaded requests from the shards'
//! already-sorted runs into the `(arrival_us, device_id, stage)` total
//! order — a unique, shard-count-invariant key — before replaying them
//! through the region's event heap, so the cloud schedule is a pure
//! function of the scenario and seed. The barrier itself fans out one
//! replay worker per region ([`ReplayMode`], `src/replay.rs`): workers
//! read only immutable shard outputs and mutate only region-local state,
//! and their outputs merge in fixed region order, so parallel and
//! sequential replay are bit-identical too.
//!
//! # Staged pipelines
//!
//! A scenario may carry a [`PipelineSpec`] (see `src/pipeline.rs` and
//! docs/PIPELINES.md): every offloaded inference then becomes a chain of
//! pipeline stages — each a schedulable request on the serving tier —
//! with the activation transfer between consecutive stages priced in
//! integer microseconds through `lens_wireless::TransferModel` on the
//! origin region's uplink. The fluid tier charges per-stage queue waits
//! and the summed transfers analytically; the per-request tier chains a
//! stage-`k` completion at `t` into a stage-`k + 1` arrival at
//! `t + transfer`, replayed **one epoch later at the same epoch
//! offset** — the same one-epoch lag every contention signal carries —
//! while the device is charged the stage's actual sojourn plus the
//! transfer, never the replay shift. The chained requests extend (not
//! replace) the merge key above with the stage number. A depth-1 spec
//! is structurally the monolithic path, so pipelining costs nothing
//! when unused.
//!
//! # Examples
//!
//! A small dynamic fleet against the default single-backend cloud:
//!
//! ```
//! use lens_fleet::{CloudCapacity, FleetPolicy, FleetScenario};
//! use lens_nn::units::Millis;
//! use lens_runtime::Metric;
//!
//! # fn main() -> Result<(), lens_fleet::FleetError> {
//! let scenario = FleetScenario::builder()
//!     .population(200)
//!     .horizon(Millis::new(600_000.0)) // 10 minutes
//!     .cloud(CloudCapacity::new(8, 8.0))
//!     .policy(FleetPolicy::Dynamic)
//!     .metric(Metric::Energy)
//!     .seed(7)
//!     .shards(2)
//!     .build()?;
//! let report = lens_fleet::FleetEngine::new(scenario)?.run()?;
//! assert!(report.inferences() > 0);
//! # Ok(())
//! # }
//! ```
//!
//! A batched, multi-backend serving tier with deadline admission and
//! sibling-region failover:
//!
//! ```
//! use lens_fleet::{
//!     AdmissionPolicy, BackendConfig, CloudServing, FailoverPolicy, FleetEngine, FleetPolicy,
//!     FleetScenario,
//! };
//! use lens_nn::units::Millis;
//!
//! # fn main() -> Result<(), lens_fleet::FleetError> {
//! let serving = CloudServing::new(vec![
//!     BackendConfig::new("gpu", 2, 40.0, 1.0).with_batching(32, 50.0),
//!     BackendConfig::new("cpu", 8, 10.0, 6.0).with_batching(4, 20.0),
//! ])
//! .with_admission(AdmissionPolicy::Deadline { max_wait_ms: 2_000.0 })
//! .with_failover(FailoverPolicy::SiblingRegion { penalty_ms: 60.0 });
//! let scenario = FleetScenario::builder()
//!     .population(300)
//!     .horizon(Millis::new(300_000.0)) // 5 minutes
//!     .serving(serving)
//!     .policy(FleetPolicy::Dynamic)
//!     .seed(11)
//!     .build()?;
//! let report = FleetEngine::new(scenario)?.run()?;
//! // Per-backend utilization and batch sizes are in the report.
//! assert_eq!(report.backends().len(), 3 * 2); // 3 regions × 2 backends
//! # Ok(())
//! # }
//! ```
//!
//! A staged device → edge → cloud pipeline: one boundary (the activation
//! bytes crossing between the two remote stages) turns every offload into
//! a two-stage chain, and the report grows a stage ledger:
//!
//! ```
//! use lens_fleet::{FleetEngine, FleetPolicy, FleetScenario, PipelineSpec};
//! use lens_nn::units::Millis;
//!
//! # fn main() -> Result<(), lens_fleet::FleetError> {
//! let scenario = FleetScenario::builder()
//!     .population(200)
//!     .horizon(Millis::new(300_000.0)) // 5 minutes
//!     .policy(FleetPolicy::Dynamic)
//!     .pipeline(PipelineSpec::new(vec![150_528])) // one inter-stage hop
//!     .seed(17)
//!     .build()?;
//! let report = FleetEngine::new(scenario)?.run()?;
//! assert!(report.offloaded() > 0);
//! // Conservation: every admitted offload completes once per stage.
//! assert_eq!(report.stage_completions().len(), 2);
//! assert!(report.transfer_ms() > 0.0); // inter-stage hops were priced
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod cloud;
pub mod device;
pub mod engine;
pub mod pipeline;
pub(crate) mod replay;
pub mod report;
pub mod scenario;

pub use cloud::{
    AdmissionPolicy, Autoscaler, BackendConfig, BackendStats, BatchPolicy, CloudCapacity,
    CloudServing, CloudSimFidelity, CompletedRequest, DispatchPolicy, FailoverPolicy,
    OffloadRequest, QueueDiscipline, RegionMicrosim, RegionServing, RegionSignal, ScalerState,
    ScalingSignal,
};
pub use device::{Cohort, Device};
pub use engine::FleetEngine;
pub use pipeline::{PipelineSpec, MAX_PIPELINE_DEPTH};
pub use report::{BackendReport, FleetReport, Histogram, RegionReport, TailSummary};
pub use scenario::{
    ArrivalModel, FleetPolicy, FleetScenario, FleetScenarioBuilder, RegionShare, ReplayMode,
    WorkloadCurve, CURVE_FP_SCALE,
};

// The observability surface, re-exported so fleet users need no direct
// `lens-telemetry` dependency to consume a traced run.
pub use lens_telemetry::{
    BarrierPhase, EngineProfile, FlightRecorder, MetricsRegistry, NullSink, PhaseCounters,
    PhaseProbe, RunTelemetry, Sink, TelemetryConfig, TraceEvent,
};

use std::error::Error;
use std::fmt;

/// Errors produced by the fleet substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// The scenario description is contradictory or incomplete.
    InvalidScenario(String),
    /// A lower layer (options, dominance maps) failed.
    Runtime(lens_runtime::RuntimeError),
    /// The network definition failed to analyze.
    Network(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::InvalidScenario(why) => write!(f, "invalid fleet scenario: {why}"),
            FleetError::Runtime(e) => write!(f, "runtime substrate error: {e}"),
            FleetError::Network(why) => write!(f, "network analysis error: {why}"),
        }
    }
}

impl Error for FleetError {}

impl From<lens_runtime::RuntimeError> for FleetError {
    fn from(e: lens_runtime::RuntimeError) -> Self {
        FleetError::Runtime(e)
    }
}

/// SplitMix64 finalizer — the stable per-device seed mixer behind the
/// determinism contract. Mixing the scenario seed with a device id here
/// (rather than drawing from any shared RNG) is what makes device behavior
/// independent of shard assignment.
pub(crate) fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_separates_streams() {
        let a = mix_seed(42, 0);
        let b = mix_seed(42, 1);
        let c = mix_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, mix_seed(42, 0));
    }

    #[test]
    fn error_display_is_informative() {
        let e = FleetError::InvalidScenario("population is zero".into());
        assert!(format!("{e}").contains("population is zero"));
        let e: FleetError = lens_runtime::RuntimeError::NoOptions.into();
        assert!(format!("{e}").contains("no deployment options"));
    }
}
