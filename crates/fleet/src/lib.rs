//! Population-scale fleet simulation for edge–cloud serving.
//!
//! The single-device simulator in `lens-runtime` replays **one** throughput
//! trace against **one** dominance map (Fig 8). This crate scales that story
//! to the ROADMAP's north star: **thousands to millions of concurrent device
//! sessions**, spread over the paper's Table I regions and wireless
//! technologies, all sharing a **finite-capacity cloud**. That opens the one
//! scenario axis the single-device view cannot express: *contention*. When
//! everyone offloads, All-Cloud and the split options stop being free of
//! each other — their latency now depends on how many other devices chose
//! them.
//!
//! # Architecture
//!
//! * [`FleetScenario`] — declarative description of a fleet: population
//!   size, regional mix, technology mix, arrival model, cloud capacity,
//!   switching policy, seed ([`scenario`]).
//! * [`Device`] sessions — a per-device synthesized throughput trace
//!   (`GaussMarkov` around the region's expected rate), a
//!   `ThroughputTracker`, and a deployment policy over the cohort's shared
//!   `DominanceMap` ([`device`]).
//! * [`CloudRegionQueue`] — finite concurrent-inference slots per region
//!   behind a FIFO or two-class priority queue ([`cloud`]).
//! * [`FleetEngine`] — the sharded discrete-event engine ([`engine`]).
//! * [`FleetReport`] — mergeable aggregates: fixed-bin latency/energy
//!   histograms with percentiles, switch counts, per-region breakdowns, and
//!   cloud-queue depth over time ([`report`]).
//!
//! # Sharding and the epoch barrier
//!
//! Devices are partitioned into contiguous shards, one `std::thread` worker
//! per shard, each advancing its own event heap. Shards only interact
//! through the cloud, and the cloud is synchronized at **epoch** boundaries
//! (one epoch = one trace-sample interval by default): within an epoch every
//! shard runs independently, counting how many of its inferences offloaded
//! to each region; at the barrier the engine merges those counts, advances
//! each region's queue, and publishes the queue waits that offloaded
//! inferences experience **in the next epoch**. Contention therefore feeds
//! back with a one-epoch lag — the price of keeping the epoch itself
//! embarrassingly parallel.
//!
//! # Determinism contract
//!
//! **Same seed + same shard count ⇒ bit-identical [`FleetReport`].**
//!
//! Every source of per-device randomness (trace synthesis, arrival phases,
//! priority class, Poisson inter-arrival draws) is seeded by mixing the
//! scenario seed with the stable device id, never from shard-local state,
//! so device behavior does not depend on which shard runs it. Event time is
//! integer microseconds (no float comparison in the heap), histogram bins
//! are integer counts, and shard partials are merged in shard order. Only
//! floating-point *sums* are sensitive to the merge tree, which is why the
//! contract fixes the shard count; in practice the integer aggregates
//! (histograms, switch and offload counts) are identical across shard
//! counts too.
//!
//! # Example
//!
//! ```
//! use lens_fleet::{CloudCapacity, FleetPolicy, FleetScenario};
//! use lens_nn::units::Millis;
//! use lens_runtime::Metric;
//!
//! # fn main() -> Result<(), lens_fleet::FleetError> {
//! let scenario = FleetScenario::builder()
//!     .population(200)
//!     .horizon(Millis::new(600_000.0)) // 10 minutes
//!     .cloud(CloudCapacity::new(8, 8.0))
//!     .policy(FleetPolicy::Dynamic)
//!     .metric(Metric::Energy)
//!     .seed(7)
//!     .shards(2)
//!     .build()?;
//! let report = lens_fleet::FleetEngine::new(scenario)?.run()?;
//! assert!(report.inferences() > 0);
//! # Ok(())
//! # }
//! ```

pub mod cloud;
pub mod device;
pub mod engine;
pub mod report;
pub mod scenario;

pub use cloud::{CloudCapacity, CloudRegionQueue, QueueDiscipline};
pub use device::{Cohort, Device};
pub use engine::FleetEngine;
pub use report::{FleetReport, Histogram, RegionReport};
pub use scenario::{ArrivalModel, FleetPolicy, FleetScenario, FleetScenarioBuilder, RegionShare};

use std::error::Error;
use std::fmt;

/// Errors produced by the fleet substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// The scenario description is contradictory or incomplete.
    InvalidScenario(String),
    /// A lower layer (options, dominance maps) failed.
    Runtime(lens_runtime::RuntimeError),
    /// The network definition failed to analyze.
    Network(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::InvalidScenario(why) => write!(f, "invalid fleet scenario: {why}"),
            FleetError::Runtime(e) => write!(f, "runtime substrate error: {e}"),
            FleetError::Network(why) => write!(f, "network analysis error: {why}"),
        }
    }
}

impl Error for FleetError {}

impl From<lens_runtime::RuntimeError> for FleetError {
    fn from(e: lens_runtime::RuntimeError) -> Self {
        FleetError::Runtime(e)
    }
}

/// SplitMix64 finalizer — the stable per-device seed mixer behind the
/// determinism contract. Mixing the scenario seed with a device id here
/// (rather than drawing from any shared RNG) is what makes device behavior
/// independent of shard assignment.
pub(crate) fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_separates_streams() {
        let a = mix_seed(42, 0);
        let b = mix_seed(42, 1);
        let c = mix_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, mix_seed(42, 0));
    }

    #[test]
    fn error_display_is_informative() {
        let e = FleetError::InvalidScenario("population is zero".into());
        assert!(format!("{e}").contains("population is zero"));
        let e: FleetError = lens_runtime::RuntimeError::NoOptions.into();
        assert!(format!("{e}").contains("no deployment options"));
    }
}
