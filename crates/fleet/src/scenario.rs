//! Declarative fleet-scenario descriptions.
//!
//! A [`FleetScenario`] pins down everything a run needs — population size,
//! the Table I regional mix, the wireless-technology mix, the arrival
//! model, the per-region cloud serving tier (backends, batching, admission
//! control, failover), the switching policy, and the seed — so that two
//! engines given the same scenario produce the same [`crate::FleetReport`]
//! (see the crate-level determinism contract).

use crate::cloud::{CloudCapacity, CloudServing, CloudSimFidelity};
use crate::pipeline::PipelineSpec;
use crate::FleetError;
use lens_device::DeviceProfile;
use lens_nn::units::{Mbps, Millis};
use lens_nn::Network;
use lens_runtime::{DeploymentKind, Metric};
use lens_telemetry::TelemetryConfig;
use lens_wireless::{Region, WirelessTechnology};

/// One region's share of the population, with its wireless-technology mix.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionShare {
    /// The region profile (expected uplink rate).
    pub region: Region,
    /// Relative population weight (normalized across the scenario).
    pub weight: f64,
    /// Relative technology shares within the region (normalized).
    pub technologies: Vec<(WirelessTechnology, f64)>,
}

impl RegionShare {
    /// A region share with the given weight and a default technology mix
    /// of 60% LTE / 25% WiFi / 15% 3G.
    pub fn new(region: Region, weight: f64) -> Self {
        RegionShare {
            region,
            weight,
            technologies: vec![
                (WirelessTechnology::Lte, 0.60),
                (WirelessTechnology::Wifi, 0.25),
                (WirelessTechnology::ThreeG, 0.15),
            ],
        }
    }

    /// Overrides the technology mix.
    pub fn with_technologies(mut self, technologies: Vec<(WirelessTechnology, f64)>) -> Self {
        self.technologies = technologies;
        self
    }
}

/// When devices issue inference requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Every device infers once per `period`, with a seeded per-device
    /// phase offset so the fleet does not fire in lockstep.
    Periodic {
        /// Inter-inference period.
        period: Millis,
    },
    /// Poisson arrivals: exponentially distributed inter-arrival times
    /// with the given mean, drawn from a per-device seeded stream.
    Poisson {
        /// Mean inter-arrival time.
        mean_interarrival: Millis,
    },
}

impl ArrivalModel {
    pub(crate) fn mean_period_ms(&self) -> f64 {
        match self {
            ArrivalModel::Periodic { period } => period.get(),
            ArrivalModel::Poisson { mean_interarrival } => mean_interarrival.get(),
        }
    }
}

/// Fixed-point scale of [`WorkloadCurve`] multipliers: `1_000_000`
/// micro-units = full offload intent.
pub const CURVE_FP_SCALE: i64 = 1_000_000;

/// A deterministic, piecewise-constant workload curve: fixed-point
/// offload-intent multipliers keyed to simulation time.
///
/// Each phase is `(start_us, multiplier_fp)` with multipliers in
/// `[0, CURVE_FP_SCALE]` micro-units (`1_000_000` = every offload-capable
/// request actually offloads, `250_000` = a quarter of them do; the rest
/// run the device's local-only option). Devices evaluate the curve at each
/// request's arrival time through their own seeded hash streams, so the
/// modulation is a pure function of `(device, time)` — independent of
/// shard count and epoch length, which is what keeps the bit-identity
/// contract intact.
///
/// Evaluation is integer-only (binary search over phase starts plus a
/// fixed-point multiplier): no float accumulates across epochs, and
/// `lens-analyzer`'s float-accumulation rule audits this module to keep it
/// that way.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadCurve {
    /// `(start_us, multiplier_fp)` phases, strictly increasing starts,
    /// first start 0.
    phases: Vec<(u64, i64)>,
    /// Per-region time shift (µs): region `r` sees the curve delayed by
    /// `r · region_offset_us` — the "regional wave" that rolls a load
    /// front across the scenario's regions in mix order.
    region_offset_us: u64,
}

impl WorkloadCurve {
    /// A curve from explicit fixed-point phases (validated at scenario
    /// build): `(start_us, multiplier_fp)` with the first start at 0,
    /// strictly increasing starts, and multipliers in
    /// `[0, CURVE_FP_SCALE]`.
    pub fn from_phases_fp(phases: Vec<(u64, i64)>) -> Self {
        WorkloadCurve {
            phases,
            region_offset_us: 0,
        }
    }

    /// Shifts the curve later by `offset` per region index (the regional
    /// wave). Region 0 sees the curve as-is, region `r` sees it delayed
    /// by `r · offset`.
    pub fn with_region_offset(mut self, offset: Millis) -> Self {
        self.region_offset_us = (offset.get() * 1000.0).round() as u64;
        self
    }

    /// The canonical diurnal profile: eight equal phases over `period`
    /// tracing a day's ramp — night troughs at 1/8 intent, a morning
    /// climb, the full-intent afternoon peak, and an evening fall-off
    /// (the single-run replacement for the hour-by-hour sweep
    /// `examples/autoscale_cost.rs` used to hand-roll).
    pub fn diurnal(period: Millis) -> Self {
        let period_us = (period.get() * 1000.0).round() as u64;
        let hours: [i64; 8] = [
            125_000, 125_000, 250_000, 500_000, 750_000, 1_000_000, 500_000, 250_000,
        ];
        let phases = hours
            .iter()
            .enumerate()
            .map(|(i, &m)| (i as u64 * (period_us / 8), m))
            .collect();
        WorkloadCurve::from_phases_fp(phases)
    }

    /// The canonical flash crowd: baseline 30% intent, full intent from
    /// `start` for `duration`, then back to baseline — the curve
    /// `examples/flash_crowd.rs` drives the closed loop with.
    pub fn flash_crowd(start: Millis, duration: Millis) -> Self {
        let start_us = (start.get() * 1000.0).round() as u64;
        let end_us = start_us + (duration.get() * 1000.0).round() as u64;
        WorkloadCurve::from_phases_fp(vec![
            (0, 300_000),
            (start_us, CURVE_FP_SCALE),
            (end_us, 300_000),
        ])
    }

    /// The canonical regional wave: quiet 25% intent, a full-intent pulse
    /// of `duration` starting at `duration` (so region 0's pulse is not
    /// clipped at time 0), delayed by `region_offset` per region index —
    /// the load front rolls across regions in mix order.
    pub fn regional_wave(duration: Millis, region_offset: Millis) -> Self {
        let duration_us = (duration.get() * 1000.0).round() as u64;
        WorkloadCurve::from_phases_fp(vec![
            (0, 250_000),
            (duration_us, CURVE_FP_SCALE),
            (2 * duration_us, 250_000),
        ])
        .with_region_offset(region_offset)
    }

    /// The phases as configured (`(start_us, multiplier_fp)`).
    pub fn phases(&self) -> &[(u64, i64)] {
        &self.phases
    }

    /// The per-region time shift (µs).
    pub fn region_offset_us(&self) -> u64 {
        self.region_offset_us
    }

    /// The phase index active at `time_us` for `region` — pure integer
    /// binary search over the (region-shifted) phase starts, so the same
    /// `(curve, time, region)` always lands in the same phase no matter
    /// how the run is sharded or how long its epochs are.
    pub fn phase_index(&self, time_us: u64, region: usize) -> usize {
        let local = time_us.saturating_sub(region as u64 * self.region_offset_us);
        match self
            .phases
            .binary_search_by_key(&local, |&(start, _)| start)
        {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        }
    }

    /// The offload-intent multiplier (micro-units) at `time_us` for
    /// `region`.
    pub fn multiplier_fp(&self, time_us: u64, region: usize) -> i64 {
        self.phases[self.phase_index(time_us, region)].1
    }

    /// Validates the curve's invariants.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the curve has no phases, does
    /// not start at time 0, has non-increasing phase starts, or carries a
    /// multiplier outside `[0, CURVE_FP_SCALE]`.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err("workload curve needs at least one phase".to_string());
        }
        if self.phases[0].0 != 0 {
            return Err("workload curve must start at time 0".to_string());
        }
        if self.phases.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err("workload curve phase starts must be strictly increasing".to_string());
        }
        if self
            .phases
            .iter()
            .any(|&(_, m)| !(0..=CURVE_FP_SCALE).contains(&m))
        {
            return Err(format!(
                "workload curve multipliers must be in [0, {CURVE_FP_SCALE}] micro-units"
            ));
        }
        Ok(())
    }
}

/// How the engine replays regions at the epoch barrier.
///
/// Regions are independent between the shard step and the signal
/// publish, so the barrier can fan them out over scoped worker threads
/// and merge the results in fixed region order. The report, telemetry,
/// and digests are bit-identical across all three modes — the knob only
/// changes wall-clock time (and exists so tests can pin that claim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplayMode {
    /// Parallel when the host has more than one core and the scenario
    /// more than one region; sequential otherwise.
    #[default]
    Auto,
    /// Always fan regions out over scoped worker threads (still
    /// sequential for a single-region scenario, which has nothing to
    /// fan out).
    Parallel,
    /// Always replay regions on the barrier thread, in region order.
    Sequential,
}

/// How each device chooses its deployment option per inference.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetPolicy {
    /// Every device always uses the option with this kind (per-cohort
    /// resolved; the scenario fails to build if a cohort lacks it).
    Fixed(DeploymentKind),
    /// Track throughput and re-select the dominant option from the
    /// design-time dominance map before every inference (Fig 5).
    Dynamic,
    /// Like [`FleetPolicy::Dynamic`], but additionally charges the
    /// region's current cloud-queue wait to every offloaded option when
    /// selecting on latency — devices route around a congested cloud.
    DynamicCongestionAware,
}

/// A complete, validated fleet-run description. Build via
/// [`FleetScenario::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScenario {
    pub(crate) population: usize,
    pub(crate) regions: Vec<RegionShare>,
    pub(crate) horizon: Millis,
    pub(crate) trace_interval: Millis,
    pub(crate) arrival: ArrivalModel,
    pub(crate) serving: CloudServing,
    pub(crate) fidelity: CloudSimFidelity,
    pub(crate) policy: FleetPolicy,
    pub(crate) metric: Metric,
    pub(crate) tracker_alpha: f64,
    pub(crate) seed: u64,
    pub(crate) shards: usize,
    pub(crate) network: Network,
    pub(crate) device_profile: DeviceProfile,
    pub(crate) telemetry: TelemetryConfig,
    pub(crate) workload: Option<WorkloadCurve>,
    pub(crate) tail_deadline: Option<Millis>,
    pub(crate) replay: ReplayMode,
    pub(crate) pipeline: Option<PipelineSpec>,
}

impl FleetScenario {
    /// Starts a builder with the defaults: 10 000 devices across the
    /// paper's Table I regions, 1-hour horizon, 60 s trace interval,
    /// periodic 60 s arrivals, a single unbatched 64-slot / 8 ms FIFO
    /// cloud backend per region with open admission, dynamic switching on
    /// energy, last-sample tracking, AlexNet on the Jetson TX2 CPU, seed
    /// 0, one shard.
    pub fn builder() -> FleetScenarioBuilder {
        FleetScenarioBuilder::default()
    }

    /// Population size.
    pub fn population(&self) -> usize {
        self.population
    }

    /// The regional mix.
    pub fn regions(&self) -> &[RegionShare] {
        &self.regions
    }

    /// Region names, in mix order (the order of
    /// [`crate::FleetReport::regions`]).
    pub fn region_names(&self) -> Vec<String> {
        self.regions
            .iter()
            .map(|r| r.region.name().to_string())
            .collect()
    }

    /// Simulated wall-clock horizon.
    pub fn horizon(&self) -> Millis {
        self.horizon
    }

    /// The per-device trace sampling interval (also the epoch length).
    pub fn trace_interval(&self) -> Millis {
        self.trace_interval
    }

    /// The arrival model.
    pub fn arrival(&self) -> ArrivalModel {
        self.arrival
    }

    /// The cloud serving tier each region hosts.
    pub fn serving(&self) -> &CloudServing {
        &self.serving
    }

    /// Which cloud model the run uses (fluid epochs or per-request
    /// microsimulation).
    pub fn fidelity(&self) -> CloudSimFidelity {
        self.fidelity
    }

    /// The switching policy.
    pub fn policy(&self) -> &FleetPolicy {
        &self.policy
    }

    /// The metric the policy optimizes.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The scenario seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of engine shards (worker threads).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The deployed network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The edge-device hardware profile.
    pub fn device_profile(&self) -> &DeviceProfile {
        &self.device_profile
    }

    /// The flight-recorder configuration used by
    /// [`crate::FleetEngine::run_traced`].
    pub fn telemetry(&self) -> &TelemetryConfig {
        &self.telemetry
    }

    /// The time-varying workload curve, if the scenario has one (`None` =
    /// constant full offload intent, the historical behavior).
    pub fn workload(&self) -> Option<&WorkloadCurve> {
        self.workload.as_ref()
    }

    /// The per-request tail deadline budget, if set: when a region's
    /// published epoch p99 ([`crate::RegionSignal::p99_ms`]) exceeds this,
    /// devices retreat offload-bound requests to their local-only option
    /// (re-probing on a deterministic hash-spread fraction so the tier's
    /// recovery is still observed).
    pub fn tail_deadline(&self) -> Option<Millis> {
        self.tail_deadline
    }

    /// How the barrier replays regions (parallel fan-out or sequential
    /// sweep — bit-identical either way).
    pub fn replay(&self) -> ReplayMode {
        self.replay
    }

    /// The staged split-inference pipeline, if configured (`None` =
    /// every offload is a single monolithic request, the historical
    /// behavior; a depth-1 spec is equivalent).
    pub fn pipeline(&self) -> Option<&PipelineSpec> {
        self.pipeline.as_ref()
    }

    /// The staged pipeline when it actually stages work: `Some` only
    /// for depth > 1, so every pipeline code path in the engine gates
    /// on one check and a depth-1 spec is *structurally* the monolithic
    /// path (the equivalence `tests/split_pipeline.rs` pins).
    pub(crate) fn staged_pipeline(&self) -> Option<&PipelineSpec> {
        self.pipeline.as_ref().filter(|p| p.is_staged())
    }

    /// Expected number of inference events the whole fleet generates.
    pub fn expected_events(&self) -> u64 {
        let per_device = self.horizon.get() / self.arrival.mean_period_ms();
        (self.population as f64 * per_device) as u64
    }
}

/// Builder for [`FleetScenario`]; every setter has a sensible default.
#[derive(Debug, Clone)]
pub struct FleetScenarioBuilder {
    population: usize,
    regions: Vec<RegionShare>,
    horizon: Millis,
    trace_interval: Millis,
    arrival: ArrivalModel,
    serving: CloudServing,
    fidelity: CloudSimFidelity,
    policy: FleetPolicy,
    metric: Metric,
    tracker_alpha: f64,
    seed: u64,
    shards: usize,
    network: Option<Network>,
    device_profile: DeviceProfile,
    telemetry: TelemetryConfig,
    workload: Option<WorkloadCurve>,
    tail_deadline: Option<Millis>,
    replay: ReplayMode,
    pipeline: Option<PipelineSpec>,
}

impl Default for FleetScenarioBuilder {
    fn default() -> Self {
        // Table I regions; weights are rough population shares for a
        // three-region fleet rather than anything the paper prescribes.
        let regions = vec![
            RegionShare::new(Region::new("S. Korea", Mbps::new(16.1)), 0.3),
            RegionShare::new(Region::new("USA", Mbps::new(7.5)), 0.5),
            RegionShare::new(Region::new("Afghanistan", Mbps::new(0.7)), 0.2),
        ];
        FleetScenarioBuilder {
            population: 10_000,
            regions,
            horizon: Millis::new(3_600_000.0),
            trace_interval: Millis::new(60_000.0),
            arrival: ArrivalModel::Periodic {
                period: Millis::new(60_000.0),
            },
            serving: CloudServing::from(CloudCapacity::new(64, 8.0)),
            fidelity: CloudSimFidelity::Fluid,
            policy: FleetPolicy::Dynamic,
            metric: Metric::Energy,
            tracker_alpha: 1.0,
            seed: 0,
            shards: 1,
            network: None,
            device_profile: DeviceProfile::jetson_tx2_cpu(),
            telemetry: TelemetryConfig::default(),
            workload: None,
            tail_deadline: None,
            replay: ReplayMode::Auto,
            pipeline: None,
        }
    }
}

impl FleetScenarioBuilder {
    /// Sets the number of device sessions.
    pub fn population(mut self, population: usize) -> Self {
        self.population = population;
        self
    }

    /// Replaces the regional mix.
    pub fn regions(mut self, regions: Vec<RegionShare>) -> Self {
        self.regions = regions;
        self
    }

    /// Sets the simulated horizon.
    pub fn horizon(mut self, horizon: Millis) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the trace-sample interval (= epoch length).
    pub fn trace_interval(mut self, interval: Millis) -> Self {
        self.trace_interval = interval;
        self
    }

    /// Sets the arrival model.
    pub fn arrival(mut self, arrival: ArrivalModel) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the per-region cloud to a single unbatched backend with the
    /// given capacity (the PR 2 fluid-queue model). For heterogeneous
    /// backends, batching, admission control, or failover, use
    /// [`serving`](FleetScenarioBuilder::serving).
    pub fn cloud(mut self, cloud: CloudCapacity) -> Self {
        self.serving = CloudServing::from(cloud);
        self
    }

    /// Sets the full per-region serving tier: heterogeneous batched
    /// backends (optionally priced and autoscaled), queue discipline,
    /// dispatch policy (least-work-left or cost-aware), admission
    /// control, and failover. Cross-field constraints — including
    /// autoscaler bounds and price/energy sanity — are checked by
    /// [`CloudServing::validate`] at [`build`](FleetScenarioBuilder::build).
    pub fn serving(mut self, serving: CloudServing) -> Self {
        self.serving = serving;
        self
    }

    /// Sets the cloud simulation fidelity: [`CloudSimFidelity::Fluid`]
    /// (epoch-barrier fluid queues, the default) or
    /// [`CloudSimFidelity::PerRequest`] (discrete per-request
    /// microsimulation with exact tail-latency reporting).
    pub fn fidelity(mut self, fidelity: CloudSimFidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Sets the switching policy.
    pub fn policy(mut self, policy: FleetPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the metric the policy optimizes.
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the throughput-tracker EWMA factor (1 = last-sample).
    pub fn tracker_alpha(mut self, alpha: f64) -> Self {
        self.tracker_alpha = alpha;
        self
    }

    /// Sets the scenario seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the shard (worker-thread) count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the deployed network (default: AlexNet).
    pub fn network(mut self, network: Network) -> Self {
        self.network = Some(network);
        self
    }

    /// Sets the edge-device hardware profile.
    pub fn device_profile(mut self, profile: DeviceProfile) -> Self {
        self.device_profile = profile;
        self
    }

    /// Sets the flight-recorder configuration for traced runs.
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a time-varying [`WorkloadCurve`] that modulates per-device
    /// offload intent over the run (validated at
    /// [`build`](FleetScenarioBuilder::build)).
    pub fn workload(mut self, curve: WorkloadCurve) -> Self {
        self.workload = Some(curve);
        self
    }

    /// Sets the per-request tail deadline budget: devices retreat to their
    /// local-only option while the published epoch p99 exceeds it.
    pub fn tail_deadline(mut self, deadline: Millis) -> Self {
        self.tail_deadline = Some(deadline);
        self
    }

    /// Attaches a staged split-inference [`PipelineSpec`]: every
    /// offloaded inference becomes `depth` chained stage requests, with
    /// each boundary's activation transfer priced on the origin
    /// region's uplink (validated at
    /// [`build`](FleetScenarioBuilder::build)). A spec with no
    /// boundaries (depth 1) is accepted and behaves exactly like no
    /// pipeline at all.
    pub fn pipeline(mut self, pipeline: PipelineSpec) -> Self {
        self.pipeline = Some(pipeline);
        self
    }

    /// Sets how the barrier replays regions. The default,
    /// [`ReplayMode::Auto`], fans regions out over scoped worker threads
    /// when the host has more than one core; results are bit-identical
    /// in every mode, so this is purely a wall-clock knob.
    pub fn replay(mut self, replay: ReplayMode) -> Self {
        self.replay = replay;
        self
    }

    /// Validates and builds the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidScenario`] when the description is
    /// contradictory (zero population, empty/non-positive mixes, zero
    /// horizon, out-of-range tracker alpha, more shards than devices, …).
    pub fn build(self) -> Result<FleetScenario, FleetError> {
        let invalid = |why: &str| Err(FleetError::InvalidScenario(why.to_string()));
        if self.population == 0 {
            return invalid("population must be positive");
        }
        if self.regions.is_empty() {
            return invalid("at least one region is required");
        }
        for share in &self.regions {
            if !(share.weight.is_finite() && share.weight > 0.0) {
                return invalid("region weights must be positive and finite");
            }
            if share.technologies.is_empty() {
                return invalid("every region needs at least one technology");
            }
            if share
                .technologies
                .iter()
                .any(|(_, w)| !(w.is_finite() && *w > 0.0))
            {
                return invalid("technology shares must be positive and finite");
            }
        }
        // The engine runs on an integer-microsecond clock. `Millis`
        // already rejects NaN/∞/negative at construction, but zero and
        // sub-microsecond durations are representable and would round to
        // 0 µs inside the engine's checked ms→µs cast — collapsing the
        // event clock (and dividing by zero at the epoch barrier).
        if (self.horizon.get() * 1000.0).round() < 1.0 {
            return invalid("horizon must be at least one microsecond");
        }
        if (self.trace_interval.get() * 1000.0).round() < 1.0 {
            return invalid("trace interval must be at least one microsecond");
        }
        if (self.arrival.mean_period_ms() * 1000.0).round() < 1.0 {
            return invalid("arrival period must be at least one microsecond");
        }
        if !(self.tracker_alpha > 0.0 && self.tracker_alpha <= 1.0) {
            return invalid("tracker alpha must be in (0, 1]");
        }
        if self.shards == 0 {
            return invalid("at least one shard is required");
        }
        if self.shards > self.population {
            return invalid("more shards than devices");
        }
        if let Err(why) = self.serving.validate() {
            return invalid(&why);
        }
        if let Err(why) = self.telemetry.validate() {
            return invalid(&why);
        }
        if let Some(curve) = &self.workload {
            if let Err(why) = curve.validate() {
                return invalid(&why);
            }
        }
        if let Some(deadline) = self.tail_deadline {
            if !(deadline.get().is_finite() && deadline.get() > 0.0) {
                return invalid("tail deadline must be positive and finite");
            }
        }
        if let Some(pipeline) = &self.pipeline {
            if let Err(why) = pipeline.validate() {
                return invalid(&why);
            }
        }
        Ok(FleetScenario {
            population: self.population,
            regions: self.regions,
            horizon: self.horizon,
            trace_interval: self.trace_interval,
            arrival: self.arrival,
            serving: self.serving,
            fidelity: self.fidelity,
            policy: self.policy,
            metric: self.metric,
            tracker_alpha: self.tracker_alpha,
            seed: self.seed,
            shards: self.shards,
            network: self.network.unwrap_or_else(lens_nn::zoo::alexnet),
            device_profile: self.device_profile,
            telemetry: self.telemetry,
            workload: self.workload,
            tail_deadline: self.tail_deadline,
            replay: self.replay,
            pipeline: self.pipeline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::{AdmissionPolicy, BackendConfig, FailoverPolicy};

    #[test]
    fn serving_builder_accepts_multi_backend_tiers() {
        let serving = CloudServing::new(vec![
            BackendConfig::new("gpu", 2, 32.0, 1.0).with_batching(32, 50.0),
            BackendConfig::new("cpu", 8, 12.0, 6.0).with_batching(4, 20.0),
        ])
        .with_admission(AdmissionPolicy::Deadline {
            max_wait_ms: 2000.0,
        })
        .with_failover(FailoverPolicy::SiblingRegion { penalty_ms: 60.0 });
        let s = FleetScenario::builder()
            .serving(serving.clone())
            .build()
            .unwrap();
        assert_eq!(s.serving(), &serving);
        assert_eq!(s.serving().backends.len(), 2);
    }

    #[test]
    fn invalid_serving_tier_is_rejected_at_build() {
        let err = FleetScenario::builder()
            .serving(CloudServing::new(vec![]))
            .build()
            .unwrap_err();
        match err {
            FleetError::InvalidScenario(why) => assert!(why.contains("backend"), "{why}"),
            other => panic!("expected InvalidScenario, got {other:?}"),
        }
    }

    #[test]
    fn autoscaled_cost_aware_tier_round_trips_through_the_builder() {
        use crate::cloud::{Autoscaler, DispatchPolicy, ScalingSignal};
        let serving = CloudServing::new(vec![BackendConfig::new("gpu", 2, 32.0, 1.0)
            .with_batching(32, 50.0)
            .with_price(4.0)
            .with_energy(2.0)
            .with_autoscaler(
                Autoscaler::new(ScalingSignal::Utilization, 0.7, 0.3, 1, 8).with_step(2),
            )])
        .with_dispatch(DispatchPolicy::CostAware);
        let s = FleetScenario::builder()
            .serving(serving.clone())
            .build()
            .unwrap();
        assert_eq!(s.serving(), &serving);
        assert_eq!(s.serving().dispatch, DispatchPolicy::CostAware);
        assert!(s.serving().backends[0].autoscaler.is_some());
    }

    #[test]
    fn invalid_autoscaler_and_prices_are_rejected_at_build() {
        use crate::cloud::{Autoscaler, ScalingSignal};
        // Initial slots outside the autoscaler's bounds…
        let outside = CloudServing::new(vec![BackendConfig::new("gpu", 16, 32.0, 1.0)
            .with_autoscaler(Autoscaler::new(ScalingSignal::QueueDepth, 8.0, 0.5, 1, 8))]);
        let err = FleetScenario::builder()
            .serving(outside)
            .build()
            .unwrap_err();
        match err {
            FleetError::InvalidScenario(why) => assert!(why.contains("outside"), "{why}"),
            other => panic!("expected InvalidScenario, got {other:?}"),
        }
        // …and a non-finite price both fail the scenario build.
        let priced = CloudServing::new(vec![
            BackendConfig::new("gpu", 2, 32.0, 1.0).with_price(f64::INFINITY)
        ]);
        let err = FleetScenario::builder()
            .serving(priced)
            .build()
            .unwrap_err();
        match err {
            FleetError::InvalidScenario(why) => assert!(why.contains("price"), "{why}"),
            other => panic!("expected InvalidScenario, got {other:?}"),
        }
    }

    #[test]
    fn defaults_build() {
        let s = FleetScenario::builder().build().unwrap();
        assert_eq!(s.population(), 10_000);
        assert_eq!(s.regions().len(), 3);
        assert_eq!(s.region_names()[1], "USA");
        assert_eq!(s.shards(), 1);
        assert_eq!(s.expected_events(), 600_000);
        assert_eq!(s.fidelity(), CloudSimFidelity::Fluid);
    }

    #[test]
    fn fidelity_knob_selects_per_request() {
        let s = FleetScenario::builder()
            .fidelity(CloudSimFidelity::PerRequest)
            .build()
            .unwrap();
        assert_eq!(s.fidelity(), CloudSimFidelity::PerRequest);
    }

    #[test]
    fn invalid_scenarios_rejected() {
        let cases: Vec<(&str, FleetScenarioBuilder)> = vec![
            ("population", FleetScenario::builder().population(0)),
            ("region", FleetScenario::builder().regions(vec![])),
            (
                "horizon",
                FleetScenario::builder().horizon(Millis::new(0.0)),
            ),
            (
                "trace interval",
                FleetScenario::builder().trace_interval(Millis::new(0.0004)),
            ),
            (
                "arrival period",
                FleetScenario::builder().arrival(ArrivalModel::Periodic {
                    period: Millis::new(0.0004),
                }),
            ),
            ("shard", FleetScenario::builder().shards(0)),
            (
                "shards than devices",
                FleetScenario::builder().population(2).shards(3),
            ),
            ("alpha", FleetScenario::builder().tracker_alpha(0.0)),
            (
                "weights",
                FleetScenario::builder().regions(vec![RegionShare::new(
                    Region::new("X", Mbps::new(1.0)),
                    -1.0,
                )]),
            ),
            (
                "technology",
                FleetScenario::builder().regions(vec![RegionShare::new(
                    Region::new("X", Mbps::new(1.0)),
                    1.0,
                )
                .with_technologies(vec![])]),
            ),
            (
                "curve",
                FleetScenario::builder().workload(WorkloadCurve::from_phases_fp(vec![])),
            ),
            (
                "curve must start at time 0",
                FleetScenario::builder()
                    .workload(WorkloadCurve::from_phases_fp(vec![(5, 100_000)])),
            ),
            (
                "strictly increasing",
                FleetScenario::builder().workload(WorkloadCurve::from_phases_fp(vec![
                    (0, 100_000),
                    (10, 200_000),
                    (10, 300_000),
                ])),
            ),
            (
                "multipliers",
                FleetScenario::builder()
                    .workload(WorkloadCurve::from_phases_fp(vec![(0, CURVE_FP_SCALE + 1)])),
            ),
            (
                "deadline",
                FleetScenario::builder().tail_deadline(Millis::new(0.0)),
            ),
            // `Millis::new` already panics on NaN/∞/negative, so those
            // can never reach the builder — but zero and sub-microsecond
            // durations *are* representable and used to slip through to
            // the engine's ms→µs cast, silently rounding to 0 µs. All
            // are build errors now.
            (
                "horizon",
                FleetScenario::builder().horizon(Millis::new(0.0004)),
            ),
            (
                "trace interval",
                FleetScenario::builder().trace_interval(Millis::new(0.0)),
            ),
            (
                "arrival period",
                FleetScenario::builder().arrival(ArrivalModel::Poisson {
                    mean_interarrival: Millis::new(0.0),
                }),
            ),
        ];
        for (needle, builder) in cases {
            match builder.build() {
                Err(FleetError::InvalidScenario(why)) => {
                    assert!(why.contains(needle), "{why} should mention {needle}")
                }
                other => panic!("expected InvalidScenario({needle}), got {other:?}"),
            }
        }
    }

    #[test]
    fn workload_curve_evaluates_piecewise_and_shifts_per_region() {
        let curve = WorkloadCurve::from_phases_fp(vec![(0, 250_000), (1_000, CURVE_FP_SCALE)])
            .with_region_offset(Millis::new(0.5)); // 500 µs per region
        curve.validate().unwrap();
        // Region 0: phase boundary exactly at 1000 µs.
        assert_eq!(curve.multiplier_fp(0, 0), 250_000);
        assert_eq!(curve.multiplier_fp(999, 0), 250_000);
        assert_eq!(curve.multiplier_fp(1_000, 0), CURVE_FP_SCALE);
        assert_eq!(curve.phase_index(1_000, 0), 1);
        // Region 2 sees the curve 1000 µs later.
        assert_eq!(curve.multiplier_fp(1_999, 2), 250_000);
        assert_eq!(curve.multiplier_fp(2_000, 2), CURVE_FP_SCALE);
        // Before a shifted region's local time 0 the first phase applies.
        assert_eq!(curve.multiplier_fp(0, 2), 250_000);
    }

    #[test]
    fn canonical_curves_validate_and_round_trip_through_the_builder() {
        for curve in [
            WorkloadCurve::diurnal(Millis::new(480_000.0)),
            WorkloadCurve::flash_crowd(Millis::new(120_000.0), Millis::new(120_000.0)),
            WorkloadCurve::regional_wave(Millis::new(120_000.0), Millis::new(60_000.0)),
        ] {
            curve.validate().unwrap();
            assert_eq!(curve.phases()[0].0, 0);
            let s = FleetScenario::builder()
                .workload(curve.clone())
                .tail_deadline(Millis::new(2_000.0))
                .build()
                .unwrap();
            assert_eq!(s.workload(), Some(&curve));
            assert_eq!(s.tail_deadline(), Some(Millis::new(2_000.0)));
        }
        // The default carries neither knob.
        let s = FleetScenario::builder().build().unwrap();
        assert_eq!(s.workload(), None);
        assert_eq!(s.tail_deadline(), None);
    }

    #[test]
    fn diurnal_curve_peaks_at_full_intent() {
        let period = Millis::new(480_000.0);
        let curve = WorkloadCurve::diurnal(period);
        assert_eq!(curve.phases().len(), 8);
        let peak = curve.phases().iter().map(|&(_, m)| m).max().unwrap();
        assert_eq!(peak, CURVE_FP_SCALE);
        // Trough at the start of the period (night).
        assert_eq!(curve.multiplier_fp(0, 0), 125_000);
    }

    #[test]
    fn replay_mode_defaults_to_auto_and_round_trips() {
        let s = FleetScenario::builder().build().unwrap();
        assert_eq!(s.replay(), ReplayMode::Auto);
        for mode in [
            ReplayMode::Auto,
            ReplayMode::Parallel,
            ReplayMode::Sequential,
        ] {
            let s = FleetScenario::builder().replay(mode).build().unwrap();
            assert_eq!(s.replay(), mode);
        }
    }

    #[test]
    fn pipeline_spec_round_trips_and_depth_one_is_unstaged() {
        let s = FleetScenario::builder().build().unwrap();
        assert_eq!(s.pipeline(), None);
        assert_eq!(s.staged_pipeline(), None);

        let staged = PipelineSpec::new(vec![86_528, 4_096]);
        let s = FleetScenario::builder()
            .pipeline(staged.clone())
            .build()
            .unwrap();
        assert_eq!(s.pipeline(), Some(&staged));
        assert_eq!(s.staged_pipeline(), Some(&staged));

        // Depth 1 builds but never reaches the engine's pipeline paths.
        let s = FleetScenario::builder()
            .pipeline(PipelineSpec::default())
            .build()
            .unwrap();
        assert!(s.pipeline().is_some());
        assert_eq!(s.staged_pipeline(), None);
    }

    #[test]
    fn too_deep_pipeline_is_rejected_at_build() {
        use crate::pipeline::MAX_PIPELINE_DEPTH;
        let err = FleetScenario::builder()
            .pipeline(PipelineSpec::new(vec![1; MAX_PIPELINE_DEPTH]))
            .build()
            .unwrap_err();
        match err {
            FleetError::InvalidScenario(why) => assert!(why.contains("depth"), "{why}"),
            other => panic!("expected InvalidScenario, got {other:?}"),
        }
    }

    #[test]
    fn poisson_arrival_mean() {
        let a = ArrivalModel::Poisson {
            mean_interarrival: Millis::new(500.0),
        };
        assert_eq!(a.mean_period_ms(), 500.0);
    }
}
