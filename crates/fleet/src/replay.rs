//! Parallel barrier replay.
//!
//! Between the shard-step drain and the signal publish, every region's
//! serving tier is **independent**: a [`RegionServing`]/[`RegionMicrosim`]
//! touches only its own queues, its own backends, and the requests
//! addressed to it. The engine therefore owns one *replay worker* per
//! region and, at each epoch barrier, runs all workers — drain → scale →
//! publish, region-major — either sequentially or fanned out over a
//! scoped thread pool ([`run_barrier`]).
//!
//! Determinism holds by construction, not by luck:
//!
//! * Each worker reads only shared **immutable** shard outputs (offload
//!   counts / request runs) and mutates only region-local state, so the
//!   interleaving of workers cannot influence any result.
//! * Each region's requests are assembled by a k-way merge of per-shard
//!   runs that are already sorted by the shard-count-invariant
//!   `(arrival_us, device_id, stage)` key ([`merge_requests`]),
//!   reproducing the exact total order a global sort would produce.
//!   Staged pipelines keep the discipline: chained stage arrivals are
//!   spawned at the barrier from completions whose order is itself
//!   shard-invariant, and joined to the next epoch's merge with a
//!   stable sort on the same key.
//! * Telemetry is buffered per region inside [`RegionBarrierOutput`] and
//!   flushed by the engine in fixed region order, phase-major, so the
//!   event stream and phase counters are bit-identical to a sequential
//!   sweep — and independent of both the shard count and the replay mode
//!   (`tests/cross_crate_props.rs` pins Sequential vs. Parallel).

use crate::cloud::{
    CloudServing, CompletedRequest, OffloadRequest, RegionMicrosim, RegionServing, RegionSignal,
};
use crate::device::Served;
use crate::engine::ShardEpochOutput;
use crate::pipeline::PipelinePricing;
use crate::report::FleetReport;
use crate::scenario::ReplayMode;
use lens_telemetry::{PhaseCounters, PhaseProbe, TraceEvent};

/// Resolves a scenario's [`ReplayMode`] against the machine: `Auto`
/// parallelizes only when there is more than one region to replay *and*
/// more than one hardware thread to replay it on. The result never
/// affects simulation output — only which threads compute it.
pub(crate) fn replay_in_parallel(mode: ReplayMode, num_regions: usize) -> bool {
    match mode {
        ReplayMode::Sequential => false,
        ReplayMode::Parallel => num_regions > 1,
        ReplayMode::Auto => {
            num_regions > 1 && std::thread::available_parallelism().is_ok_and(|n| n.get() > 1)
        }
    }
}

/// What one region's replay worker hands back from an epoch barrier: the
/// signal to publish and the region's buffered telemetry, split by phase
/// so the engine can flush all regions' drains before any scale.
pub(crate) struct RegionBarrierOutput {
    pub(crate) signal: RegionSignal,
    pub(crate) drain: (Vec<TraceEvent>, PhaseCounters),
    pub(crate) scale: (Vec<TraceEvent>, PhaseCounters),
}

/// Runs one barrier across all region workers in fixed region order —
/// on the caller's thread, or one scoped thread per region when
/// `parallel`. Outputs come back indexed by region either way; the two
/// paths are bit-identical because workers share nothing mutable.
pub(crate) fn run_barrier<W, F>(workers: &mut [W], parallel: bool, f: F) -> Vec<RegionBarrierOutput>
where
    W: Send,
    F: Fn(usize, &mut W) -> RegionBarrierOutput + Sync,
{
    if parallel && workers.len() > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .iter_mut()
                .enumerate()
                .map(|(region, worker)| {
                    let f = &f;
                    scope.spawn(move || f(region, worker))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("region replay worker panicked"))
                .collect()
        })
    } else {
        workers
            .iter_mut()
            .enumerate()
            .map(|(region, worker)| f(region, worker))
            .collect()
    }
}

/// The fluid tier's per-region replay worker.
pub(crate) struct FluidRegionReplay {
    pub(crate) serving: RegionServing,
    pub(crate) depth_series: Vec<f64>,
}

impl FluidRegionReplay {
    pub(crate) fn new(serving: &CloudServing, num_epochs: usize) -> Self {
        FluidRegionReplay {
            serving: RegionServing::new(serving),
            depth_series: Vec::with_capacity(num_epochs),
        }
    }

    /// One epoch barrier for this region: admit the merged offload
    /// counts, run the batch-close drain, scale, publish — buffering
    /// per-phase telemetry instead of writing to a shared sink.
    pub(crate) fn barrier(
        &mut self,
        region: usize,
        shards: &[&ShardEpochOutput],
        epoch_ms: f64,
        epoch_end: u64,
        traced: bool,
    ) -> RegionBarrierOutput {
        let (high, low) = shards
            .iter()
            .map(|shard| shard.arrivals[region])
            .fold((0, 0), |(h, l), (sh, sl)| (h + sh, l + sl));
        self.serving.admit(high, low);
        self.depth_series.push(self.serving.depth());
        let mut probe = region_probe(traced);
        self.serving
            .drain_probed(epoch_ms, epoch_end, region as u64, &mut probe);
        let drain = probe.take();
        self.serving
            .scale_probed(epoch_ms, epoch_end, region as u64, &mut probe);
        let scale = probe.take();
        RegionBarrierOutput {
            signal: self.serving.publish(),
            drain,
            scale,
        }
    }
}

/// The per-request tier's replay worker: the region's microsim plus the
/// region-local accumulators the barrier feeds — the deferred-completion
/// report partial (fixed-point sums, so merging the partials at the end
/// is exact and order-independent) and pooled merge/completion buffers
/// reused across epochs. The region-level sojourn histogram lives inside
/// the microsim, folded incrementally from the per-backend epoch windows
/// at each barrier.
pub(crate) struct PerRequestRegionReplay {
    pub(crate) sim: RegionMicrosim,
    pub(crate) report: FleetReport,
    pub(crate) depth_series: Vec<f64>,
    merged: Vec<OffloadRequest>,
    completions: Vec<CompletedRequest>,
    /// Staged-pipeline transfer prices; `None` for monolithic scenarios,
    /// which keeps every pipeline branch below off the hot path.
    pricing: Option<PipelinePricing>,
    /// Chained stage arrivals spawned at a barrier but not yet served:
    /// a stage-`k` completion at `t` chains into a stage-`k+1` arrival
    /// at `t + transfer`, **replayed one epoch later at the same epoch
    /// offset** — the same one-epoch lag every contention signal
    /// already carries. Shifting (instead of clamping to the barrier)
    /// keeps the admitted stamps monotone with the previous epoch's
    /// queue leftovers and preserves the arrival spread the batchers
    /// see. Latency accounting is lag-free either way: the device is
    /// charged the stage's actual sojourn plus the transfer, never the
    /// replay shift.
    pending: Vec<OffloadRequest>,
}

impl PerRequestRegionReplay {
    pub(crate) fn new(
        serving: &CloudServing,
        empty_report: &FleetReport,
        num_epochs: usize,
        pricing: Option<PipelinePricing>,
    ) -> Self {
        PerRequestRegionReplay {
            sim: RegionMicrosim::new(serving),
            report: empty_report.clone(),
            depth_series: Vec::with_capacity(num_epochs),
            merged: Vec::new(),
            completions: Vec::new(),
            pricing,
            pending: Vec::new(),
        }
    }

    /// One epoch barrier for this region: k-way merge the shards'
    /// request runs (joining any chained stage arrivals that came due),
    /// replay them through the microsim, record the completions —
    /// spawning next-stage arrivals for staged pipelines — scale,
    /// publish the (hysteresis-held) tail signal.
    ///
    /// `last` marks the horizon's final barrier: chains spawned there
    /// have no later barrier to shift into, so their stamps clamp to
    /// the horizon end instead — right where the post-horizon flush
    /// picks them up, keeping the flush waves' timeline monotone.
    pub(crate) fn barrier(
        &mut self,
        region: usize,
        shards: &[&ShardEpochOutput],
        epoch_start: u64,
        epoch_end: u64,
        last: bool,
        traced: bool,
    ) -> RegionBarrierOutput {
        merge_requests(shards, region, &mut self.merged);
        let mut probe = region_probe(traced);
        if !self.pending.is_empty() {
            // Pull due chained stages into this epoch's batch. The
            // stable sort keeps completion order for the (rare) ties
            // where two same-device requests finish in the same batch
            // and chain to identical next-stage arrivals — completion
            // order is shard-invariant, so the batch order stays
            // shard-invariant too.
            let mut later = Vec::new();
            let mut due = false;
            for request in self.pending.drain(..) {
                if request.arrival_us < epoch_end {
                    self.merged.push(request);
                    due = true;
                } else {
                    later.push(request);
                }
            }
            self.pending = later;
            if due {
                self.merged
                    .sort_by_key(|r| (r.arrival_us, r.device_id, r.stage));
            }
        }
        probe.on_merged(self.merged.len() as u64);
        self.completions.clear();
        self.sim.run_epoch_probed(
            &self.merged,
            epoch_end,
            &mut self.completions,
            region as u64,
            &mut probe,
        );
        let (shift_us, floor_us) = if last {
            (0, epoch_end)
        } else {
            (epoch_end - epoch_start, 0)
        };
        self.absorb_completions(region, shift_us, floor_us, &mut probe);
        self.depth_series.push(self.sim.depth());
        let drain = probe.take();
        self.sim.scale_probed(
            epoch_end,
            epoch_end - epoch_start,
            region as u64,
            &mut probe,
        );
        let scale = probe.take();
        RegionBarrierOutput {
            signal: self.sim.barrier_signal(epoch_end),
            drain,
            scale,
        }
    }

    /// Books the batch in `self.completions`: monolithic completions go
    /// straight to the deferred device records; staged completions feed
    /// the per-stage ledger, then either spawn the next stage's arrival
    /// at `max(completion + transfer + shift_us, floor_us)` (the hop
    /// priced on the **origin** region's uplink; the shift is one epoch
    /// length at a barrier, the floor is the horizon end at the final
    /// barrier, and both are zero in the flush) or — at the terminal
    /// stage — finish the device record with the accumulated
    /// end-to-end latency.
    fn absorb_completions(
        &mut self,
        region: usize,
        shift_us: u64,
        floor_us: u64,
        probe: &mut PhaseProbe,
    ) {
        let Some(pricing) = &self.pricing else {
            record_completions(&mut self.report, region, &self.completions);
            return;
        };
        let depth = pricing.depth;
        let completions = std::mem::take(&mut self.completions);
        for c in &completions {
            self.report
                .record_stage_completion(c.request.stage, Some(c.sojourn_ms));
            if c.request.stage < depth {
                let boundary = (c.request.stage - 1) as usize;
                let transfer_us = pricing.hop_us(c.request.origin_region as usize, boundary);
                let mut next = c.request;
                next.stage += 1;
                // Charge the device what the hop actually cost — this
                // stage's sojourn plus the transfer, never the replay
                // shift. The increments accumulate, so the terminal
                // record's `base_latency_ms + sojourn_ms` is the exact
                // end-to-end latency.
                next.base_latency_ms += c.sojourn_ms + transfer_us as f64 / 1000.0;
                next.arrival_us = c
                    .completion_us
                    .saturating_add(transfer_us)
                    .saturating_add(shift_us)
                    .max(floor_us);
                self.report.record_transfer_ms(transfer_us as f64 / 1000.0);
                probe.emit(TraceEvent::StageTransition {
                    time_us: c.completion_us,
                    device_id: c.request.device_id,
                    region: region as u64,
                    from_stage: u64::from(c.request.stage),
                    to_stage: u64::from(next.stage),
                    transfer_us,
                });
                self.pending.push(next);
            } else {
                record_completion(&mut self.report, region, c);
            }
        }
        self.completions = completions;
    }

    /// Post-horizon drain: the cloud keeps serving until every admitted
    /// request completes. Runs sequentially on the engine thread (it is
    /// one final sweep, not per-epoch work). Staged pipelines drain in
    /// **waves**: each flush can spawn next-stage arrivals, which are
    /// replayed as a fresh batch and flushed again until no stage is
    /// left in flight — at most `depth - 1` extra waves, since stage
    /// numbers only climb.
    pub(crate) fn flush(&mut self, region: usize, probe: &mut PhaseProbe) {
        loop {
            self.completions.clear();
            self.sim
                .flush_probed(&mut self.completions, region as u64, probe);
            self.absorb_completions(region, 0, 0, probe);
            if self.pending.is_empty() {
                return;
            }
            self.merged.clear();
            self.merged.append(&mut self.pending);
            self.merged
                .sort_by_key(|r| (r.arrival_us, r.device_id, r.stage));
            let wave_end = self.merged.last().map_or(0, |r| r.arrival_us) + 1;
            self.completions.clear();
            // The flush above popped every pending event, but executors
            // may still be occupied into the future — re-arm their
            // slot-free wakeups or wave arrivals queued behind them
            // would never re-dispatch.
            self.sim.rearm_slot_events(probe);
            self.sim.run_epoch_probed(
                &self.merged,
                wave_end,
                &mut self.completions,
                region as u64,
                probe,
            );
            self.absorb_completions(region, 0, 0, probe);
        }
    }
}

/// The barrier-thread probe for one region: recording iff tracing.
fn region_probe(traced: bool) -> PhaseProbe {
    if traced {
        PhaseProbe::enabled()
    } else {
        PhaseProbe::disabled()
    }
}

/// Assembles one region's epoch requests by k-way merging the per-shard
/// runs. Each run is already sorted by `(arrival_us, device_id, stage)`
/// — shard events pop in `(time, local)` order, a shard's device ids
/// are a contiguous ascending range, and shards only ever emit stage 1
/// — and the key is unique fleet-wide, so the merge reproduces exactly
/// the total order the old global `sort_unstable_by_key` produced, in
/// O(total · shards) with no comparison sort and no allocation after
/// warm-up.
pub(crate) fn merge_requests(
    shards: &[&ShardEpochOutput],
    region: usize,
    out: &mut Vec<OffloadRequest>,
) {
    out.clear();
    let mut runs: Vec<&[OffloadRequest]> = shards
        .iter()
        .map(|shard| shard.requests[region].as_slice())
        .filter(|run| !run.is_empty())
        .collect();
    debug_assert!(runs.iter().all(|run| run.windows(2).all(|w| {
        (w[0].arrival_us, w[0].device_id, w[0].stage)
            < (w[1].arrival_us, w[1].device_id, w[1].stage)
    })));
    if runs.len() == 1 {
        out.extend_from_slice(runs[0]);
        return;
    }
    out.reserve(runs.iter().map(|run| run.len()).sum());
    while let Some(first) = runs.first() {
        let mut best = 0;
        let mut best_key = (first[0].arrival_us, first[0].device_id, first[0].stage);
        for (i, run) in runs.iter().enumerate().skip(1) {
            let key = (run[0].arrival_us, run[0].device_id, run[0].stage);
            if key < best_key {
                best = i;
                best_key = key;
            }
        }
        out.push(runs[best][0]);
        runs[best] = &runs[best][1..];
        if runs[best].is_empty() {
            runs.swap_remove(best);
        }
    }
}

/// Records a batch of microsim completions: each finishes its deferred
/// device record (end-to-end latency = device-side latency + exact cloud
/// sojourn). The sojourn histograms are *not* touched here — the microsim
/// records each completion once into its backend's epoch window and the
/// barrier folds those windows into the cumulative histograms.
pub(crate) fn record_completions(
    report: &mut FleetReport,
    serving_region: usize,
    completions: &[CompletedRequest],
) {
    for c in completions {
        record_completion(report, serving_region, c);
    }
}

/// Records one terminal completion's deferred device record. For staged
/// pipelines `base_latency_ms` has already absorbed every earlier
/// stage's sojourn and transfer, so the same formula is exact in both
/// the monolithic and the staged case.
pub(crate) fn record_completion(
    report: &mut FleetReport,
    serving_region: usize,
    c: &CompletedRequest,
) {
    let request = &c.request;
    let served = Served {
        latency_ms: request.base_latency_ms + c.sojourn_ms,
        energy_mj: request.energy_mj,
        offloaded: true,
        switched: request.switched,
        shed_to_local: false,
        failover_region: if request.failed_over {
            Some(serving_region as u32)
        } else {
            None
        },
        // Retreats resolve device-side, before the request ever
        // reaches the microsim — a completed offload never retreated.
        retreated: false,
    };
    report.record(request.origin_region as usize, &served);
}
