//! Staged split-inference pipelines as fleet workloads.
//!
//! A [`PipelineSpec`] turns every offloaded inference into a chain of
//! pipeline stages: the device runs its local segment, then each remote
//! segment becomes its own schedulable request riding the region's
//! serving tier, with the activation tensor priced across the link
//! between consecutive stages. Boundaries carry **exact byte sizes**
//! (typically from `lens_space::StagedPlan::boundaries`), and the
//! fleet prices each hop through the fixed-point
//! [`lens_wireless::TransferModel`], so stage arrival times stay on the
//! engine's integer-microsecond clock and the bit-identity contract
//! survives pipelining — see docs/PIPELINES.md.
//!
//! Stage numbering is 1-based: a spec with `boundaries.len() == n` has
//! depth `n + 1`; stage 1 is the first remote segment and a stage-`k`
//! completion (`k < depth`) spawns the stage-`k + 1` arrival after the
//! `k`-th boundary's transfer. A spec with **no** boundaries has depth 1
//! and is structurally identical to the monolithic offload path (the
//! zero-transfer equivalence pin in `tests/split_pipeline.rs`).

use lens_nn::units::Mbps;
use lens_wireless::TransferModel;

/// Deepest pipeline a scenario may configure. Stages multiply serving
/// work, and every chain must drain in the post-horizon flush; eight
/// hops is already far past the paper's single split point.
pub const MAX_PIPELINE_DEPTH: usize = 8;

/// A staged split-inference workload: the activation-tensor byte sizes
/// crossing each boundary between consecutive remote stages.
///
/// The spec is deliberately minimal — segment compute cost is already
/// captured by the deployment option the device selected; what the
/// fleet needs is *how many stages* each offload becomes and *how many
/// bytes* move between them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PipelineSpec {
    /// Bytes crossing boundary `k` (between stage `k` and stage
    /// `k + 1`), 0-indexed.
    boundaries: Vec<u64>,
}

impl PipelineSpec {
    /// A spec from explicit per-boundary activation sizes (bytes).
    pub fn new(boundaries: Vec<u64>) -> Self {
        PipelineSpec { boundaries }
    }

    /// A spec from a compiled `lens_space::StagedPlan`'s boundary list
    /// (any iterator of byte sizes works; this is just the idiomatic
    /// bridge: `PipelineSpec::from_boundary_bytes(plan.boundaries().iter().map(|b| b.bytes()))`).
    pub fn from_boundary_bytes(bytes: impl IntoIterator<Item = u64>) -> Self {
        PipelineSpec {
            boundaries: bytes.into_iter().collect(),
        }
    }

    /// The per-boundary activation sizes (bytes).
    pub fn boundaries(&self) -> &[u64] {
        &self.boundaries
    }

    /// Number of remote stages each offload becomes
    /// (`boundaries.len() + 1`).
    pub fn depth(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Whether this spec actually stages work (depth > 1). A depth-1
    /// spec is the monolithic path.
    pub fn is_staged(&self) -> bool {
        !self.boundaries.is_empty()
    }

    /// Validates the spec's invariants.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the pipeline is deeper than
    /// [`MAX_PIPELINE_DEPTH`].
    pub fn validate(&self) -> Result<(), String> {
        if self.depth() > MAX_PIPELINE_DEPTH {
            return Err(format!(
                "pipeline depth {} exceeds the maximum of {MAX_PIPELINE_DEPTH}",
                self.depth()
            ));
        }
        Ok(())
    }
}

/// Transfer prices for one scenario, precomputed at engine build:
/// integer microseconds per `(origin region, boundary)` pair, plus the
/// float totals the fluid tier charges — **derived from** the integers,
/// never computed independently, so both fidelities price the same hop
/// identically.
///
/// Hops are priced on the request's *origin* region even after
/// failover: the activation leaves the device's network, and keeping
/// the price a pure function of `(origin, boundary)` keeps stage
/// arrival times shard-invariant.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PipelinePricing {
    /// Stages per offload (`boundaries + 1`), cached as `u32` for the
    /// request structs.
    pub depth: u32,
    /// `transfer_us[origin_region][boundary]` — the exact hop cost.
    pub transfer_us: Vec<Vec<u64>>,
    /// Per-origin-region sum of all hop costs, in ms, derived from the
    /// integer microsecond total (what the fluid tier charges a
    /// device's end-to-end latency).
    pub total_ms: Vec<f64>,
}

impl PipelinePricing {
    /// Prices `spec` for every origin region's uplink. Inter-stage hops
    /// ride the region's access network (its Table I uplink); no RTT
    /// term is added — the serving tier's own queueing already stands
    /// in for backbone latency.
    pub(crate) fn new(spec: &PipelineSpec, uplinks: &[Mbps]) -> Self {
        let transfer_us: Vec<Vec<u64>> = uplinks
            .iter()
            .map(|&uplink| {
                let model = TransferModel::new(uplink);
                spec.boundaries()
                    .iter()
                    .map(|&bytes| model.cost_us(bytes))
                    .collect()
            })
            .collect();
        let total_ms = transfer_us
            .iter()
            .map(|hops| {
                let total_us: u64 = hops.iter().fold(0u64, |acc, &us| acc.saturating_add(us));
                total_us as f64 / 1000.0
            })
            .collect();
        PipelinePricing {
            depth: spec.depth() as u32,
            transfer_us,
            total_ms,
        }
    }

    /// The hop cost (µs) for `boundary` (0-indexed: the hop *after*
    /// stage `boundary + 1`) from `origin` region.
    pub(crate) fn hop_us(&self, origin: usize, boundary: usize) -> u64 {
        self.transfer_us[origin][boundary]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_counts_boundaries_plus_one() {
        assert_eq!(PipelineSpec::default().depth(), 1);
        assert!(!PipelineSpec::default().is_staged());
        let spec = PipelineSpec::new(vec![4_096, 1_024]);
        assert_eq!(spec.depth(), 3);
        assert!(spec.is_staged());
        assert_eq!(spec.boundaries(), &[4_096, 1_024]);
    }

    #[test]
    fn from_boundary_bytes_bridges_iterators() {
        let spec = PipelineSpec::from_boundary_bytes([100u64, 200]);
        assert_eq!(spec, PipelineSpec::new(vec![100, 200]));
    }

    #[test]
    fn validate_caps_depth() {
        let ok = PipelineSpec::new(vec![1; MAX_PIPELINE_DEPTH - 1]);
        assert!(ok.validate().is_ok());
        let too_deep = PipelineSpec::new(vec![1; MAX_PIPELINE_DEPTH]);
        let why = too_deep.validate().unwrap_err();
        assert!(why.contains("depth"), "{why}");
    }

    #[test]
    fn pricing_matches_the_transfer_model_per_hop() {
        let spec = PipelineSpec::new(vec![150_528, 86_528]);
        let uplinks = [Mbps::new(7.5), Mbps::new(0.7)];
        let pricing = PipelinePricing::new(&spec, &uplinks);
        assert_eq!(pricing.depth, 3);
        for (r, &uplink) in uplinks.iter().enumerate() {
            let model = TransferModel::new(uplink);
            assert_eq!(pricing.hop_us(r, 0), model.cost_us(150_528));
            assert_eq!(pricing.hop_us(r, 1), model.cost_us(86_528));
            let total_us = model.cost_us(150_528) + model.cost_us(86_528);
            assert!((pricing.total_ms[r] - total_us as f64 / 1000.0).abs() < 1e-12);
        }
        // The poor link pays strictly more for the same activations.
        assert!(pricing.total_ms[1] > pricing.total_ms[0]);
    }

    #[test]
    fn pricing_is_deterministic() {
        let spec = PipelineSpec::new(vec![123_456]);
        let uplinks = [Mbps::new(16.1)];
        assert_eq!(
            PipelinePricing::new(&spec, &uplinks),
            PipelinePricing::new(&spec, &uplinks)
        );
    }
}
