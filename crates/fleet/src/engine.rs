//! The sharded discrete-event engine.
//!
//! [`FleetEngine::new`] does the design-time work once per scenario —
//! network analysis, per-cohort option enumeration and dominance maps —
//! and [`FleetEngine::run`] executes the population: devices are split
//! into contiguous shards, each shard owns an event queue keyed by
//! integer microseconds (an O(1) sorted ring under periodic arrivals, a
//! binary heap under Poisson — `EventQueue` below) plus an epoch-major
//! arena of its devices' throughput samples, and shards synchronize with
//! the shared cloud only at epoch barriers (see the crate-level docs for
//! the determinism contract and the one-epoch contention lag).
//!
//! At each barrier the engine runs the serving tier's **batch-close
//! events** in fluid form: merged offload counts are admitted per region,
//! dispatched across that region's backends by (cost-weighted)
//! water-filling, and each backend closes batches of the size its backlog
//! and arrival rate imply, draining at the batch-amortized rate. The
//! barrier phases are strictly ordered — **drain → scale → publish** —
//! in both fidelity modes: autoscalers adjust live slot counts *before*
//! the next epoch's [`RegionSignal`]s (per-class waits, the admission
//! controller's shed fraction, and the marginal serving cost) are
//! published, so devices always read post-scale capacity. Regions are
//! independent between the shard drain and the publish, so each region
//! replays its barrier on its own worker — in parallel when the
//! scenario's [`ReplayMode`](crate::scenario::ReplayMode) resolves so —
//! with results merged in fixed region order (see `src/replay.rs`).

use crate::cloud::{CloudSimFidelity, OffloadRequest, QueueDiscipline, RegionSignal};
use crate::device::{Device, ServeContext};
use crate::pipeline::PipelinePricing;
use crate::replay::{
    replay_in_parallel, run_barrier, FluidRegionReplay, PerRequestRegionReplay, RegionBarrierOutput,
};
use crate::report::{BackendReport, FleetReport};
use crate::scenario::{ArrivalModel, FleetPolicy, FleetScenario, WorkloadCurve};
use crate::{mix_seed, Cohort, FleetError};
use lens_device::profile_network;
use lens_nn::units::Mbps;
use lens_runtime::{DeploymentPlanner, DominanceMap};
use lens_telemetry::metrics::to_fp;
use lens_telemetry::{
    BarrierPhase, EngineProfile, FlightRecorder, MetricsRegistry, NullSink, PhaseCounters,
    PhaseProbe, RunTelemetry, SeriesId, Sink, TraceEvent, METRIC_FP_SCALE,
};
use lens_wireless::{ThroughputTrace, WirelessLink};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Latency histogram resolution: 10 ms bins up to 20 s, overflow beyond.
const LATENCY_BIN_MS: f64 = 10.0;
/// Energy histogram resolution: 5 mJ bins up to 10 J, overflow beyond.
const ENERGY_BIN_MJ: f64 = 5.0;
const NUM_BINS: usize = 2_000;

/// Runs [`FleetScenario`]s. Construction performs the design-time
/// analysis; [`run`](FleetEngine::run) is stateless and can be called
/// repeatedly (two runs of the same engine produce identical reports).
#[derive(Debug, Clone)]
pub struct FleetEngine {
    scenario: FleetScenario,
    cohorts: Vec<Cohort>,
    /// Cumulative cohort weights over `[0, 1]` for deterministic
    /// proportional assignment of device ids to cohorts.
    cumulative: Vec<f64>,
}

struct ShardState {
    devices: Vec<Device>,
    /// Pending events keyed by (event time µs, local device index).
    queue: EventQueue,
    /// Epoch-major throughput-sample arena: `samples[e * n + local]` is
    /// device `local`'s sample for epoch `e`, so all of one epoch's reads
    /// land in a single contiguous row instead of chasing every device's
    /// own trace allocation per event.
    samples: Vec<Mbps>,
    report: FleetReport,
    /// Global id of this shard's first device (`local + base_id` is the
    /// stable, shard-count-invariant device id).
    base_id: usize,
    /// Reusable per-epoch scratch, cleared and refilled in place by
    /// `advance_shard` so the request/event buffers stay warm.
    epoch: ShardEpochOutput,
}

/// What one shard contributes to an epoch barrier.
pub(crate) struct ShardEpochOutput {
    /// Per-region (high, low) offload counts — the fluid tier's feed.
    pub(crate) arrivals: Vec<(u64, u64)>,
    /// Per-destination-region offloaded requests, in shard-local event
    /// order — each run is therefore already sorted by the unique
    /// `(arrival_us, device_id, stage)` key, which is what lets the barrier
    /// k-way merge runs instead of re-sorting
    /// ([`crate::replay::merge_requests`]). Empty under fluid fidelity.
    pub(crate) requests: Vec<Vec<OffloadRequest>>,
    /// Device-side trace events in shard-local event order (empty when
    /// untraced); the barrier merges them by `(time_us, device_id)`.
    pub(crate) events: Vec<TraceEvent>,
    /// Shard-step work counters (zero when untraced).
    pub(crate) counters: PhaseCounters,
}

/// A shard's pending-event queue, keyed on `(time µs, local index)`.
///
/// Periodic arrivals admit the degenerate radix case: every live device
/// keeps exactly one pending event and re-arms it exactly one period `P`
/// later, so a ring sorted by the key stays sorted under pop-front /
/// push-back. When `(t₀, l₀)` pops, every event still pending was armed
/// by a pop at or before `(t₀, l₀)` (or is an initial offset `< P`), so
/// its time is at most `t₀ + P`, and ties at exactly `t₀ + P` were armed
/// in ascending local order — the re-armed `(t₀ + P, l₀)` always belongs
/// at the back. Every heap op becomes an O(1) ring op on contiguous
/// memory. Poisson re-arms by variable draws, so it keeps the heap.
enum EventQueue {
    Ring(VecDeque<(u64, u32)>),
    Heap(BinaryHeap<Reverse<(u64, u32)>>),
}

impl EventQueue {
    fn new(arrival: &ArrivalModel, mut seeds: Vec<(u64, u32)>) -> Self {
        match arrival {
            ArrivalModel::Periodic { .. } => {
                seeds.sort_unstable();
                EventQueue::Ring(VecDeque::from(seeds))
            }
            ArrivalModel::Poisson { .. } => {
                EventQueue::Heap(seeds.into_iter().map(Reverse).collect())
            }
        }
    }

    /// Pops the earliest pending event strictly before `bound`, if any.
    #[inline]
    fn pop_before(&mut self, bound: u64) -> Option<(u64, u32)> {
        match self {
            EventQueue::Ring(ring) => match ring.front() {
                Some(&key) if key.0 < bound => ring.pop_front(),
                _ => None,
            },
            EventQueue::Heap(heap) => match heap.peek() {
                Some(&Reverse(key)) if key.0 < bound => {
                    heap.pop();
                    Some(key)
                }
                _ => None,
            },
        }
    }

    /// Schedules `key`. Ring pushes must respect the sort invariant —
    /// guaranteed by the fixed re-arm period, asserted in debug builds.
    #[inline]
    fn push(&mut self, key: (u64, u32)) {
        match self {
            EventQueue::Ring(ring) => {
                debug_assert!(ring.back().is_none_or(|&back| back < key));
                ring.push_back(key);
            }
            EventQueue::Heap(heap) => heap.push(Reverse(key)),
        }
    }
}

/// The per-event re-arm step, resolved once per epoch instead of once
/// per event (the periodic ms→µs conversion is loop-invariant).
#[derive(Clone, Copy)]
enum ArrivalStep {
    /// Periodic arrivals: a fixed integer-µs step.
    Fixed(u64),
    /// Poisson arrivals: a fresh exponential draw per event (mean µs).
    Poisson(f64),
}

impl ArrivalStep {
    fn of(arrival: &ArrivalModel) -> Self {
        match *arrival {
            ArrivalModel::Periodic { period } => ArrivalStep::Fixed(to_us(period.get())),
            ArrivalModel::Poisson { mean_interarrival } => {
                ArrivalStep::Poisson(mean_interarrival.get() * 1000.0)
            }
        }
    }

    #[inline]
    fn next(self, device: &mut Device) -> u64 {
        match self {
            ArrivalStep::Fixed(period_us) => period_us,
            ArrivalStep::Poisson(mean_us) => device.draw_interarrival_us(mean_us),
        }
    }
}

impl FleetEngine {
    /// Builds the design-time artifacts for every (region, technology)
    /// cohort in the scenario mix.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Network`] if the scenario network fails to
    /// analyze, [`FleetError::Runtime`] if option enumeration or
    /// dominance-map construction fails, and
    /// [`FleetError::InvalidScenario`] if a fixed policy names a
    /// deployment kind some cohort does not have, or admission control is
    /// enabled while some cohort has no cloud-free option to shed to.
    pub fn new(scenario: FleetScenario) -> Result<Self, FleetError> {
        let analysis = scenario
            .network
            .analyze()
            .map_err(|e| FleetError::Network(e.to_string()))?;
        let perf = profile_network(&analysis, &scenario.device_profile);
        // Admission shedding, workload-curve suppression, and tail
        // retreats all land requests on the device's local-only option —
        // each needs the cloud-free fallback to exist.
        let sheds = scenario.serving.admission != crate::cloud::AdmissionPolicy::Open
            || scenario.workload().is_some()
            || scenario.tail_deadline().is_some();

        let mut cohorts = Vec::new();
        let mut weights = Vec::new();
        for (region_index, share) in scenario.regions.iter().enumerate() {
            // lens-analyzer: allow(float-accumulation): build-time fold over the scenario's declared technology order — single-threaded, never merged across shards
            let tech_total: f64 = share.technologies.iter().map(|(_, w)| w).sum();
            for (tech, tech_weight) in &share.technologies {
                let planner =
                    DeploymentPlanner::new(WirelessLink::new(*tech, share.region.uplink()));
                let options = planner.enumerate(&analysis, &perf)?;
                let map = DominanceMap::build(&options, scenario.metric)?;
                let local_index = DeploymentPlanner::local_fallback(
                    &options,
                    scenario.metric,
                    share.region.uplink(),
                )
                .ok();
                if sheds && local_index.is_none() {
                    return Err(FleetError::InvalidScenario(format!(
                        "admission control, workload curves, and tail deadlines need a local fallback, but cohort {}/{tech} has no cloud-free option",
                        share.region.name()
                    )));
                }
                let mut cohort = Cohort {
                    region_index,
                    region: share.region.clone(),
                    technology: *tech,
                    options,
                    map,
                    fixed_index: None,
                    local_index,
                };
                if let FleetPolicy::Fixed(kind) = &scenario.policy {
                    cohort.fixed_index = Some(cohort.resolve_fixed(kind)?);
                }
                cohorts.push(cohort);
                weights.push(share.weight * tech_weight / tech_total);
            }
        }
        // lens-analyzer: allow(float-accumulation): build-time normalization in fixed region/technology declaration order; the cumulative thresholds are computed once, before any shard forks
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                // lens-analyzer: allow(float-accumulation): same build-time prefix sum — sequential by construction, identical for every shard count
                acc += w / total;
                acc
            })
            .collect();
        Ok(FleetEngine {
            scenario,
            cohorts,
            cumulative,
        })
    }

    /// The scenario this engine runs.
    pub fn scenario(&self) -> &FleetScenario {
        &self.scenario
    }

    /// The (region, technology) cohorts, in region-major order.
    pub fn cohorts(&self) -> &[Cohort] {
        &self.cohorts
    }

    /// The cohort a device id belongs to — deterministic proportional
    /// assignment, independent of the shard count.
    pub fn cohort_of(&self, device_id: usize) -> usize {
        let position = (device_id as f64 + 0.5) / self.scenario.population as f64;
        self.cumulative
            .iter()
            .position(|&c| position <= c)
            .unwrap_or(self.cumulative.len() - 1)
    }

    fn build_device(&self, device_id: usize, num_samples: usize) -> Device {
        let scenario = &self.scenario;
        let cohort_idx = self.cohort_of(device_id);
        let cohort = &self.cohorts[cohort_idx];
        let dseed = mix_seed(scenario.seed, device_id as u64);
        let high_priority = match scenario.serving.discipline {
            QueueDiscipline::Fifo => false,
            QueueDiscipline::Priority { high_fraction } => {
                (mix_seed(dseed, 0xF00D) as f64 / u64::MAX as f64) < high_fraction
            }
        };
        let trace = ThroughputTrace::synthesize(
            &cohort.region,
            cohort.technology,
            num_samples,
            scenario.trace_interval,
            mix_seed(dseed, 1),
        );
        let mut device = Device::new(
            cohort_idx as u32,
            high_priority,
            trace,
            scenario.tracker_alpha,
            mix_seed(dseed, 2),
            0,
        );
        device.next_event_us = match scenario.arrival {
            ArrivalModel::Periodic { period } => {
                let period_us = to_us(period.get());
                mix_seed(dseed, 3) % period_us
            }
            ArrivalModel::Poisson { mean_interarrival } => {
                device.draw_interarrival_us(mean_interarrival.get() * 1000.0)
            }
        };
        device
    }

    /// Runs the scenario to completion and returns the merged report,
    /// dispatching on the scenario's [`CloudSimFidelity`].
    ///
    /// This is the untraced path: it instantiates the engine with the
    /// [`NullSink`], whose `ENABLED = false` const-folds every telemetry
    /// block away, so it costs exactly what it did before the
    /// observability layer existed. `tests/fleet_sim.rs` pins that this
    /// report is bit-identical to [`run_traced`](FleetEngine::run_traced)'s.
    ///
    /// # Errors
    ///
    /// Currently infallible after [`FleetEngine::new`] succeeds; the
    /// `Result` reserves room for resource limits.
    pub fn run(&self) -> Result<FleetReport, FleetError> {
        Ok(self.run_with(&mut NullSink)?.0)
    }

    /// Runs the scenario with the flight recorder attached, returning the
    /// report together with the run's [`RunTelemetry`] (event trace,
    /// per-epoch metrics timelines, and the per-phase engine profile).
    ///
    /// Recording observes the run without perturbing it: the report is
    /// bit-identical to [`run`](FleetEngine::run)'s, and the telemetry
    /// artifacts are themselves bit-identical across shard counts.
    ///
    /// # Errors
    ///
    /// Same contract as [`run`](FleetEngine::run).
    pub fn run_traced(&self) -> Result<(FleetReport, RunTelemetry), FleetError> {
        let mut recorder = FlightRecorder::new(self.scenario.telemetry.event_capacity());
        let (report, metrics, profile) = self.run_with(&mut recorder)?;
        Ok((
            report,
            RunTelemetry {
                recorder,
                metrics,
                profile,
            },
        ))
    }

    /// The shared run loop, generic over the event sink.
    fn run_with<S: Sink>(
        &self,
        sink: &mut S,
    ) -> Result<(FleetReport, MetricsRegistry, EngineProfile), FleetError> {
        match self.scenario.fidelity {
            CloudSimFidelity::Fluid => self.run_fluid(sink),
            CloudSimFidelity::PerRequest => self.run_per_request(sink),
        }
    }

    /// The fluid path (PR 3): offloads are merged as counts and the
    /// serving tier drains them as epoch aggregates.
    fn run_fluid<S: Sink>(
        &self,
        sink: &mut S,
    ) -> Result<(FleetReport, MetricsRegistry, EngineProfile), FleetError> {
        let scenario = &self.scenario;
        let num_regions = scenario.regions.len();
        let region_names = scenario.region_names();
        let horizon_us = to_us(scenario.horizon.get());
        let epoch_us = to_us(scenario.trace_interval.get());
        let num_epochs = horizon_us.div_ceil(epoch_us) as usize;

        // Build shards; each constructs its own contiguous slice of the
        // population (device state depends only on the device id and the
        // scenario seed, never on the shard).
        let mut shard_states = self.build_shards(num_epochs);
        let pricing = self.pipeline_pricing();

        let parallel = replay_in_parallel(scenario.replay(), num_regions);
        let mut workers: Vec<FluidRegionReplay> = (0..num_regions)
            .map(|_| FluidRegionReplay::new(&scenario.serving, num_epochs))
            .collect();
        // Barrier-published per-region signals, one epoch behind.
        let mut signals = vec![RegionSignal::default(); num_regions];
        let mut wait_series = vec![Vec::with_capacity(num_epochs); num_regions];

        let mut metrics = MetricsRegistry::new(epoch_us);
        let mut profile = EngineProfile::new();
        let series = self.register_series::<S>(&mut metrics, &region_names);
        let mut curve_telemetry = self.register_curve_series::<S>(&mut metrics, &region_names);

        for epoch in 0..num_epochs {
            let epoch_start = epoch as u64 * epoch_us;
            let epoch_end = ((epoch + 1) as u64 * epoch_us).min(horizon_us);
            for (region, s) in wait_series.iter_mut().zip(&signals) {
                region.push(s.wait_low_ms);
            }

            self.advance_epoch(
                &mut shard_states,
                &signals,
                pricing.as_ref(),
                epoch,
                epoch_end,
                S::ENABLED,
            );
            merge_shard_trace::<S>(
                sink,
                &mut profile,
                &mut shard_states,
                epoch_end,
                epoch as u64,
            );

            // Barrier: each region's worker admits the merged offload
            // demand (integer sums, so the result is independent of the
            // shard count), runs the serving tier's batch-close events,
            // scales, then publishes next epoch's signal — strictly in
            // that order, so published waits and shed fractions price the
            // post-scale capacity. Regions are independent between the
            // shard drain and the publish, so the workers replay
            // region-major — in parallel when the replay mode resolves so
            // — and buffer telemetry per (region, phase); the flush below
            // re-serializes it phase-major in fixed region order,
            // bit-identical to a sequential per-phase sweep.
            let epoch_ms = (epoch_end - epoch_start) as f64 / 1000.0;
            let shard_epochs: Vec<&ShardEpochOutput> =
                shard_states.iter().map(|state| &state.epoch).collect();
            let mut outputs = run_barrier(&mut workers, parallel, |region, worker| {
                worker.barrier(region, &shard_epochs, epoch_ms, epoch_end, S::ENABLED)
            });
            flush_barrier_outputs::<S>(sink, &mut profile, &mut outputs, epoch_end, epoch as u64);
            for (signal, output) in signals.iter_mut().zip(&outputs) {
                *signal = output.signal;
            }
            if S::ENABLED {
                profile.bump_epochs();
                for region in 0..num_regions {
                    let serving = &workers[region].serving;
                    metrics.push(series.depth[region], to_fp(serving.depth()));
                    metrics.push(series.shed[region], to_fp(signals[region].shed_fraction));
                    for (backend, &id) in series.slots[region].iter().enumerate() {
                        let live = serving.live_slots()[backend];
                        metrics.push(id, live as i64 * METRIC_FP_SCALE);
                    }
                }
                sample_curve(
                    sink,
                    &mut metrics,
                    &mut curve_telemetry,
                    self.scenario.workload(),
                    epoch_start,
                    epoch_end,
                );
            }
        }

        let mut report = FleetReport::empty(LATENCY_BIN_MS, ENERGY_BIN_MJ, NUM_BINS, &region_names);
        for state in &shard_states {
            report.merge(&state.report);
        }
        let depth_series = workers
            .iter_mut()
            .map(|worker| std::mem::take(&mut worker.depth_series))
            .collect();
        report.set_queue_series(depth_series, wait_series);
        let horizon_ms = horizon_us as f64 / 1000.0;
        let mut backend_reports = Vec::new();
        for (region, worker) in workers.iter().enumerate() {
            for stats in worker.serving.backend_stats() {
                backend_reports.push(BackendReport {
                    region: region_names[region].clone(),
                    backend: stats.name,
                    slots: stats.slots,
                    served_jobs: stats.served_jobs,
                    batches: stats.batches,
                    busy_ms: stats.busy_ms,
                    utilization: stats.busy_ms / horizon_ms,
                    batch_sizes: stats.batch_sizes,
                    sojourn_ms: stats.sojourn_ms,
                    slot_timeline: stats.slot_timeline,
                    scaling_events: stats.scale_events,
                    cost_fp: stats.cost_fp,
                    cloud_energy_mj: stats.cloud_energy_mj,
                });
            }
        }
        report.set_backend_reports(backend_reports);
        Ok((report, metrics, profile))
    }

    /// The per-request path: every offloaded request becomes a discrete
    /// event inside its serving region's [`RegionMicrosim`].
    ///
    /// Shards still advance a whole epoch in parallel — an offload only
    /// *joins the cloud queue*, it cannot influence any other device
    /// within the epoch — so at the barrier the engine merges each
    /// region's requests from all shards, sorts them by the
    /// shard-count-invariant `(arrival_us, device_id, stage)` key, and replays
    /// the epoch through the microsim's event heap, interleaving device
    /// arrival events with batch-close and slot-free events in global
    /// time order. Completions (whenever they land) finish the deferred
    /// device records: end-to-end latency = the device-side latency
    /// captured at arrival + the exact cloud sojourn.
    fn run_per_request<S: Sink>(
        &self,
        sink: &mut S,
    ) -> Result<(FleetReport, MetricsRegistry, EngineProfile), FleetError> {
        let scenario = &self.scenario;
        let num_regions = scenario.regions.len();
        let region_names = scenario.region_names();
        let horizon_us = to_us(scenario.horizon.get());
        let epoch_us = to_us(scenario.trace_interval.get());
        let num_epochs = horizon_us.div_ceil(epoch_us) as usize;

        let mut shard_states = self.build_shards(num_epochs);

        let parallel = replay_in_parallel(scenario.replay(), num_regions);
        // Offloaded records are deferred to completion; each region's
        // worker accumulates its own report partial and sojourn histogram,
        // merged with the shard partials at the end (fixed-point sums make
        // the merge order irrelevant — even for failovers, which land a
        // record in another region's partial).
        let empty_report =
            FleetReport::empty(LATENCY_BIN_MS, ENERGY_BIN_MJ, NUM_BINS, &region_names);
        let pricing = self.pipeline_pricing();
        let mut workers: Vec<PerRequestRegionReplay> = (0..num_regions)
            .map(|_| {
                PerRequestRegionReplay::new(
                    &scenario.serving,
                    &empty_report,
                    num_epochs,
                    pricing.clone(),
                )
            })
            .collect();
        let mut signals = vec![RegionSignal::default(); num_regions];
        let mut wait_series = vec![Vec::with_capacity(num_epochs); num_regions];

        let mut metrics = MetricsRegistry::new(epoch_us);
        let mut profile = EngineProfile::new();
        let mut probe = self.make_probe::<S>();
        let series = self.register_series::<S>(&mut metrics, &region_names);
        let mut curve_telemetry = self.register_curve_series::<S>(&mut metrics, &region_names);
        let p99_series: Vec<SeriesId> = if S::ENABLED {
            region_names
                .iter()
                .map(|name| metrics.series(&format!("p99_ms/{name}")))
                .collect()
        } else {
            Vec::new()
        };

        for epoch in 0..num_epochs {
            let epoch_start = epoch as u64 * epoch_us;
            let epoch_end = ((epoch + 1) as u64 * epoch_us).min(horizon_us);
            for (region, s) in wait_series.iter_mut().zip(&signals) {
                region.push(s.wait_low_ms);
            }

            self.advance_epoch(
                &mut shard_states,
                &signals,
                pricing.as_ref(),
                epoch,
                epoch_end,
                S::ENABLED,
            );
            merge_shard_trace::<S>(
                sink,
                &mut profile,
                &mut shard_states,
                epoch_end,
                epoch as u64,
            );

            // Barrier: each region's worker k-way merges the shards'
            // request runs, replays them through its microsim, scales,
            // then publishes — region-major, in parallel when the replay
            // mode resolves so. Regions are independent between the shard
            // drain and the publish, so this is behavior-preserving, and
            // the phase-major flush below reproduces the sequential
            // sweep's telemetry stream bit for bit.
            let shard_epochs: Vec<&ShardEpochOutput> =
                shard_states.iter().map(|state| &state.epoch).collect();
            let mut outputs = run_barrier(&mut workers, parallel, |region, worker| {
                worker.barrier(
                    region,
                    &shard_epochs,
                    epoch_start,
                    epoch_end,
                    epoch + 1 == num_epochs,
                    S::ENABLED,
                )
            });
            flush_barrier_outputs::<S>(sink, &mut profile, &mut outputs, epoch_end, epoch as u64);
            for (signal, output) in signals.iter_mut().zip(&outputs) {
                *signal = output.signal;
            }
            if S::ENABLED {
                profile.bump_epochs();
                for region in 0..num_regions {
                    let worker = &workers[region];
                    metrics.push(series.depth[region], to_fp(worker.sim.depth()));
                    metrics.push(series.shed[region], to_fp(signals[region].shed_fraction));
                    for (backend, &id) in series.slots[region].iter().enumerate() {
                        let live = worker.sim.live_slots()[backend];
                        metrics.push(id, live as i64 * METRIC_FP_SCALE);
                    }
                    // Cumulative tail so far — the closed-loop signal the
                    // flash-crowd work wants to watch epoch by epoch.
                    metrics.push(
                        p99_series[region],
                        to_fp(worker.sim.region_sojourn().percentile(99.0)),
                    );
                }
                sample_curve(
                    sink,
                    &mut metrics,
                    &mut curve_telemetry,
                    self.scenario.workload(),
                    epoch_start,
                    epoch_end,
                );
            }
        }

        // The cloud drains its backlog past the horizon so every admitted
        // request completes and the tails account for the whole fleet.
        // The post-horizon work lands in one final drain-phase record
        // (sequential: it is one sweep, not per-epoch work).
        for (region, worker) in workers.iter_mut().enumerate() {
            worker.flush(region, &mut probe);
        }
        flush_probe::<S>(
            sink,
            &mut profile,
            &mut probe,
            BarrierPhase::Drain,
            horizon_us,
            num_epochs as u64,
        );

        let mut report = FleetReport::empty(LATENCY_BIN_MS, ENERGY_BIN_MJ, NUM_BINS, &region_names);
        for state in &shard_states {
            report.merge(&state.report);
        }
        for worker in &workers {
            report.merge(&worker.report);
        }
        let depth_series = workers
            .iter_mut()
            .map(|worker| std::mem::take(&mut worker.depth_series))
            .collect();
        report.set_queue_series(depth_series, wait_series);
        let horizon_ms = horizon_us as f64 / 1000.0;
        let mut backend_reports = Vec::new();
        for (region, worker) in workers.iter().enumerate() {
            for stats in worker.sim.backend_stats() {
                backend_reports.push(BackendReport {
                    region: region_names[region].clone(),
                    backend: stats.name,
                    slots: stats.slots,
                    served_jobs: stats.served_jobs,
                    batches: stats.batches,
                    busy_ms: stats.busy_ms,
                    utilization: stats.busy_ms / horizon_ms,
                    batch_sizes: stats.batch_sizes,
                    sojourn_ms: stats.sojourn_ms,
                    slot_timeline: stats.slot_timeline,
                    scaling_events: stats.scale_events,
                    cost_fp: stats.cost_fp,
                    cloud_energy_mj: stats.cloud_energy_mj,
                });
            }
        }
        report.set_backend_reports(backend_reports);
        report.set_cloud_sojourn(
            workers
                .into_iter()
                .map(|mut worker| worker.sim.take_region_sojourn())
                .collect(),
        );
        Ok((report, metrics, profile))
    }

    /// Transfer prices for the scenario's staged pipeline, if it has one
    /// that actually stages work (depth > 1): integer microseconds per
    /// `(origin region, boundary)`, from each region's Table I uplink.
    fn pipeline_pricing(&self) -> Option<PipelinePricing> {
        self.scenario.staged_pipeline().map(|spec| {
            let uplinks: Vec<Mbps> = self
                .scenario
                .regions
                .iter()
                .map(|share| share.region.uplink())
                .collect();
            PipelinePricing::new(spec, &uplinks)
        })
    }

    /// The barrier-thread probe: recording iff the sink is enabled.
    fn make_probe<S: Sink>(&self) -> PhaseProbe {
        if S::ENABLED {
            PhaseProbe::enabled()
        } else {
            PhaseProbe::disabled()
        }
    }

    /// Registers the per-region timelines sampled at every barrier, in
    /// fixed scenario order (region-major, then backend) so the registry
    /// layout — and its digest — is independent of the shard count.
    fn register_series<S: Sink>(
        &self,
        metrics: &mut MetricsRegistry,
        region_names: &[String],
    ) -> EpochSeries {
        let mut series = EpochSeries {
            depth: Vec::new(),
            shed: Vec::new(),
            slots: Vec::new(),
        };
        if !S::ENABLED {
            return series;
        }
        for name in region_names {
            series
                .depth
                .push(metrics.series(&format!("queue_depth/{name}")));
            series
                .shed
                .push(metrics.series(&format!("shed_fraction/{name}")));
        }
        for name in region_names {
            series.slots.push(
                self.scenario
                    .serving
                    .backends
                    .iter()
                    .map(|b| metrics.series(&format!("slots/{name}/{}", b.name)))
                    .collect(),
            );
        }
        series
    }

    /// Registers the per-region workload-curve multiplier timelines, or
    /// `None` when the sink is disabled or the scenario has no curve.
    fn register_curve_series<S: Sink>(
        &self,
        metrics: &mut MetricsRegistry,
        region_names: &[String],
    ) -> Option<CurveTelemetry> {
        if !S::ENABLED || self.scenario.workload().is_none() {
            return None;
        }
        Some(CurveTelemetry {
            series: region_names
                .iter()
                .map(|name| metrics.series(&format!("curve_multiplier_fp/{name}")))
                .collect(),
            last: vec![None; region_names.len()],
        })
    }

    /// Phase A: every shard advances its event queue to the barrier in
    /// parallel, filling its reusable epoch scratch in place. `trace`
    /// asks shards to also emit device events and work counters.
    fn advance_epoch(
        &self,
        shard_states: &mut [ShardState],
        signals: &[RegionSignal],
        pricing: Option<&PipelinePricing>,
        epoch_index: usize,
        epoch_end: u64,
        trace: bool,
    ) {
        let scenario = &self.scenario;
        let num_regions = scenario.regions.len();
        let horizon_us = to_us(scenario.horizon.get());
        let step = ArrivalStep::of(&scenario.arrival);
        // Loop-invariant serve context, built once per epoch instead of
        // once per event. Only the fluid tier prices pipeline stages at
        // the device (the per-request barrier chains real stage
        // requests instead).
        let ctx = ServeContext {
            policy: &scenario.policy,
            metric: scenario.metric,
            failover: scenario.serving.failover,
            fidelity: scenario.fidelity,
            dispatch: scenario.serving.dispatch,
            curve: scenario.workload(),
            tail_deadline_ms: scenario.tail_deadline().map(|d| d.get()),
            pipeline: pricing
                .filter(|_| scenario.fidelity == CloudSimFidelity::Fluid)
                .map(|p| (p.depth, p.total_ms.as_slice())),
        };
        if let [state] = shard_states {
            // Single shard: skip the per-epoch spawn/join round trip —
            // the loop body is identical either way.
            advance_shard(
                state,
                &self.cohorts,
                ctx,
                signals,
                num_regions,
                epoch_index,
                epoch_end,
                horizon_us,
                step,
                trace,
            );
            return;
        }
        std::thread::scope(|scope| {
            for state in shard_states.iter_mut() {
                scope.spawn(move || {
                    advance_shard(
                        state,
                        &self.cohorts,
                        ctx,
                        signals,
                        num_regions,
                        epoch_index,
                        epoch_end,
                        horizon_us,
                        step,
                        trace,
                    )
                });
            }
        });
    }

    fn build_shards(&self, num_samples: usize) -> Vec<ShardState> {
        let scenario = &self.scenario;
        let region_names = scenario.region_names();
        let num_regions = scenario.regions.len();
        let per_request = scenario.fidelity == CloudSimFidelity::PerRequest;
        let population = scenario.population;
        let shards = scenario.shards;
        let base = population / shards;
        let remainder = population % shards;
        let mut bounds = Vec::with_capacity(shards);
        let mut start = 0usize;
        for shard in 0..shards {
            let len = base + usize::from(shard < remainder);
            bounds.push((start, start + len));
            start += len;
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = bounds
                .into_iter()
                .map(|(lo, hi)| {
                    let region_names = &region_names;
                    scope.spawn(move || {
                        let n = hi - lo;
                        let mut devices = Vec::with_capacity(n);
                        let mut seeds = Vec::with_capacity(n);
                        for (local, id) in (lo..hi).enumerate() {
                            let device = self.build_device(id, num_samples);
                            seeds.push((device.next_event_us, local as u32));
                            devices.push(device);
                        }
                        // Epoch-major sample arena: row `e` holds every
                        // device's sample for epoch `e`, contiguously.
                        let mut samples = Vec::with_capacity(num_samples * n);
                        for e in 0..num_samples {
                            samples.extend(devices.iter().map(|d| d.trace().samples()[e]));
                        }
                        ShardState {
                            devices,
                            queue: EventQueue::new(&scenario.arrival, seeds),
                            samples,
                            report: FleetReport::empty(
                                LATENCY_BIN_MS,
                                ENERGY_BIN_MJ,
                                NUM_BINS,
                                region_names,
                            ),
                            base_id: lo,
                            epoch: ShardEpochOutput {
                                arrivals: vec![(0, 0); num_regions],
                                requests: vec![
                                    Vec::new();
                                    if per_request { num_regions } else { 0 }
                                ],
                                events: Vec::new(),
                                counters: PhaseCounters::default(),
                            },
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard builder panicked"))
                .collect()
        })
    }
}

/// Converts scenario milliseconds to integer event-clock microseconds.
///
/// Scenario validation rejects non-finite or negative durations at build
/// time, so a bad value reaching this cast is an engine bug — fail loudly
/// instead of letting `as u64` silently saturate a NaN or a negative
/// duration to 0 µs (which would quietly collapse the event clock).
fn to_us(ms: f64) -> u64 {
    assert!(
        ms.is_finite() && ms >= 0.0,
        "duration must be a finite, non-negative ms value, got {ms}"
    );
    (ms * 1000.0).round() as u64
}

/// The barrier-sampled timeline handles, region-major.
struct EpochSeries {
    depth: Vec<SeriesId>,
    shed: Vec<SeriesId>,
    slots: Vec<Vec<SeriesId>>,
}

/// Barrier-sampled workload-curve telemetry: one multiplier timeline per
/// region, plus a [`TraceEvent::CurvePhase`] whenever a region's plateau
/// moves (the first barrier always records the opening plateau).
struct CurveTelemetry {
    series: Vec<SeriesId>,
    last: Vec<Option<i64>>,
}

/// Samples the curve at the epoch that just ran (its start instant — the
/// plateau the epoch's devices drew against, up to a phase boundary inside
/// the epoch) and emits a phase-change event per region whose plateau
/// moved. Multipliers are already micro-unit fixed point, so they land in
/// the metrics timeline unconverted.
fn sample_curve<S: Sink>(
    sink: &mut S,
    metrics: &mut MetricsRegistry,
    telemetry: &mut Option<CurveTelemetry>,
    curve: Option<&WorkloadCurve>,
    epoch_start: u64,
    epoch_end: u64,
) {
    let (Some(t), Some(curve)) = (telemetry.as_mut(), curve) else {
        return;
    };
    for (region, (&id, last)) in t.series.iter().zip(t.last.iter_mut()).enumerate() {
        let multiplier_fp = curve.multiplier_fp(epoch_start, region);
        metrics.push(id, multiplier_fp);
        if *last != Some(multiplier_fp) {
            *last = Some(multiplier_fp);
            sink.record(TraceEvent::CurvePhase {
                time_us: epoch_end,
                region: region as u64,
                multiplier_fp: multiplier_fp as u64,
            });
        }
    }
}

/// Merges the shards' device events into the sink in shard-count-
/// invariant order and folds their work counters into the shard-step
/// phase. A no-op (and fully const-folded) when the sink is disabled.
///
/// The merge sort is **stable** on `(time_us, device_id)`: equal keys
/// only ever come from the same device (failover + dispatch at one
/// instant), and a stable sort preserves that device's emission order
/// regardless of which shard the device landed in.
fn merge_shard_trace<S: Sink>(
    sink: &mut S,
    profile: &mut EngineProfile,
    states: &mut [ShardState],
    epoch_end: u64,
    epoch: u64,
) {
    if !S::ENABLED {
        return;
    }
    let mut counters = PhaseCounters::default();
    let mut events: Vec<TraceEvent> = Vec::new();
    for state in states.iter_mut() {
        counters.add(&state.epoch.counters);
        events.append(&mut state.epoch.events);
    }
    events.sort_by_key(|e| e.merge_key());
    for event in events {
        sink.record(event);
    }
    profile.record(BarrierPhase::ShardStep, &counters);
    sink.record(TraceEvent::Phase {
        time_us: epoch_end,
        epoch,
        phase: BarrierPhase::ShardStep,
    });
}

/// Drains the probe into the sink and profile at a phase boundary:
/// buffered barrier events first, then the phase-transition marker.
/// A no-op (and fully const-folded) when the sink is disabled.
fn flush_probe<S: Sink>(
    sink: &mut S,
    profile: &mut EngineProfile,
    probe: &mut PhaseProbe,
    phase: BarrierPhase,
    time_us: u64,
    epoch: u64,
) {
    if !S::ENABLED {
        return;
    }
    let (events, counters) = probe.take();
    for event in events {
        sink.record(event);
    }
    profile.record(phase, &counters);
    sink.record(TraceEvent::Phase {
        time_us,
        epoch,
        phase,
    });
}

/// Flushes the barrier workers' buffered telemetry phase-major — every
/// region's drain output, then every region's scale output, then the
/// publish marker — in fixed region order. That re-serialization makes
/// the event stream and phase counters byte-identical to the sequential
/// per-phase sweeps the engine used to run, independent of shard count
/// and replay mode. A no-op (fully const-folded) when the sink is
/// disabled.
fn flush_barrier_outputs<S: Sink>(
    sink: &mut S,
    profile: &mut EngineProfile,
    outputs: &mut [RegionBarrierOutput],
    epoch_end: u64,
    epoch: u64,
) {
    if !S::ENABLED {
        return;
    }
    for phase in [BarrierPhase::Drain, BarrierPhase::Scale] {
        let mut counters = PhaseCounters::default();
        for output in outputs.iter_mut() {
            let buffered = match phase {
                BarrierPhase::Drain => &mut output.drain,
                _ => &mut output.scale,
            };
            counters.add(&buffered.1);
            for event in buffered.0.drain(..) {
                sink.record(event);
            }
        }
        profile.record(phase, &counters);
        sink.record(TraceEvent::Phase {
            time_us: epoch_end,
            epoch,
            phase,
        });
    }
    // Publishing emits no probe work — it copies signals — but the
    // profile and trace still record the phase boundary.
    profile.record(BarrierPhase::Publish, &PhaseCounters::default());
    sink.record(TraceEvent::Phase {
        time_us: epoch_end,
        epoch,
        phase: BarrierPhase::Publish,
    });
}

/// Advances one shard's event queue to `epoch_end`, filling the shard's
/// epoch scratch with the per-region (high, low) offload counts this
/// epoch contributed — failed over requests count toward their
/// *destination* region's queue — and, under per-request fidelity, the
/// offloaded requests themselves (their records are deferred until the
/// microsim completes them).
#[allow(clippy::too_many_arguments)]
fn advance_shard(
    state: &mut ShardState,
    cohorts: &[Cohort],
    ctx: ServeContext<'_>,
    signals: &[RegionSignal],
    num_regions: usize,
    epoch_index: usize,
    epoch_end: u64,
    horizon_us: u64,
    step: ArrivalStep,
    trace: bool,
) {
    let per_request = ctx.fidelity == CloudSimFidelity::PerRequest;
    let ShardState {
        devices,
        queue,
        samples,
        report,
        base_id,
        epoch: output,
    } = state;
    debug_assert_eq!(output.arrivals.len(), num_regions);
    output.arrivals.fill((0, 0));
    for requests in &mut output.requests {
        requests.clear();
    }
    output.events.clear();
    output.counters = PhaseCounters::default();
    let n = devices.len();
    // Every event in this epoch reads the same trace-sample row: the
    // sample index is `time_us / interval_us`, the interval *is* the
    // epoch length, and the queue never holds an event before the
    // current epoch — so the division is loop-invariant.
    let row = &samples[epoch_index * n..(epoch_index + 1) * n];
    while let Some((time, local)) = queue.pop_before(epoch_end) {
        if trace {
            output.counters.events_popped += 1;
            output.counters.heap_ops += 1;
        }
        let device = &mut devices[local as usize];
        let cohort = &cohorts[device.cohort_index()];
        let served = device.serve_with_sample(cohort, ctx, signals, time, row[local as usize]);
        if trace {
            crate::device::trace_serve_events(
                &served,
                (*base_id + local as usize) as u64,
                cohort.region_index as u64,
                device.high_priority(),
                time,
                &mut output.events,
            );
        }
        if !(per_request && served.offloaded) {
            report.record(cohort.region_index, &served);
            // Fluid staged offloads resolve their whole chain here: the
            // device already charged per-stage waits and transfers, so
            // the stage ledger and transfer total book the same event
            // (`ctx.pipeline` is `None` under per-request fidelity —
            // there the barrier books each chained stage exactly).
            if served.offloaded {
                if let Some((depth, transfer_total_ms)) = ctx.pipeline {
                    for stage in 1..=depth {
                        report.record_stage_completion(stage, None);
                    }
                    report.record_transfer_ms(transfer_total_ms[cohort.region_index]);
                }
            }
        }
        if served.offloaded {
            let dest = served
                .failover_region
                .map_or(cohort.region_index, |r| r as usize);
            if per_request {
                output.requests[dest].push(OffloadRequest {
                    arrival_us: time,
                    device_id: (*base_id + local as usize) as u64,
                    stage: 1,
                    high_priority: device.high_priority(),
                    origin_region: cohort.region_index as u32,
                    failed_over: served.failover_region.is_some(),
                    base_latency_ms: served.latency_ms,
                    energy_mj: served.energy_mj,
                    switched: served.switched,
                });
            } else {
                // A staged offload occupies the fluid queue once per
                // stage — the whole chain lands in this epoch's
                // aggregate demand (stages = 1 when monolithic).
                let stages = ctx.pipeline.map_or(1u64, |(depth, _)| u64::from(depth));
                let slot = &mut output.arrivals[dest];
                if device.high_priority() {
                    slot.0 += stages;
                } else {
                    slot.1 += stages;
                }
            }
        }
        let next = time + step.next(device);
        if next < horizon_us {
            queue.push((next, local));
            if trace {
                output.counters.heap_ops += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::{
        AdmissionPolicy, BackendConfig, CloudCapacity, CloudServing, FailoverPolicy,
    };
    use crate::scenario::RegionShare;
    use lens_nn::units::{Mbps, Millis};
    use lens_runtime::{DeploymentKind, Metric};
    use lens_wireless::{Region, WirelessTechnology};

    fn small_scenario(shards: usize) -> FleetScenario {
        FleetScenario::builder()
            .population(300)
            .horizon(Millis::new(600_000.0))
            .trace_interval(Millis::new(60_000.0))
            .cloud(CloudCapacity::new(4, 10.0))
            .shards(shards)
            .seed(42)
            .build()
            .unwrap()
    }

    #[test]
    fn same_seed_same_shards_identical_reports() {
        let engine = FleetEngine::new(small_scenario(3)).unwrap();
        let a = engine.run().unwrap();
        let b = engine.run().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_seeds_differ() {
        let mut s1 = small_scenario(2);
        s1.seed = 1;
        let mut s2 = small_scenario(2);
        s2.seed = 2;
        let a = FleetEngine::new(s1).unwrap().run().unwrap();
        let b = FleetEngine::new(s2).unwrap().run().unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn reports_survive_resharding_bit_for_bit() {
        // The hard contract fixes the shard count, but fixed-point sums
        // and integer counts make the whole report shard-count invariant —
        // verify that stronger property end to end.
        let a = FleetEngine::new(small_scenario(1)).unwrap().run().unwrap();
        let b = FleetEngine::new(small_scenario(4)).unwrap().run().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn every_device_serves_every_period() {
        let engine = FleetEngine::new(small_scenario(2)).unwrap();
        let report = engine.run().unwrap();
        // 300 devices × 10 one-minute periods in a 10-minute horizon.
        assert_eq!(report.inferences(), 3000);
        assert_eq!(
            report.regions().iter().map(|r| r.inferences).sum::<u64>(),
            3000
        );
        assert_eq!(report.queue_depth().len(), 3);
        assert_eq!(report.queue_depth()[0].len(), 10);
        assert_eq!(report.queue_wait_ms()[0].len(), 10);
        // One default backend per region, with utilization accounted.
        assert_eq!(report.backends().len(), 3);
        assert!(report.backends().iter().all(|b| b.backend == "default"));
    }

    #[test]
    fn cohort_assignment_is_proportional() {
        let engine = FleetEngine::new(small_scenario(1)).unwrap();
        let mut counts = vec![0usize; engine.cohorts().len()];
        for id in 0..300 {
            counts[engine.cohort_of(id)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 300);
        // Largest region (USA, weight 0.5) × largest tech (LTE 0.6) ≈ 90.
        let usa_lte = engine
            .cohorts()
            .iter()
            .position(|c| c.region.name() == "USA" && c.technology == WirelessTechnology::Lte)
            .unwrap();
        assert!((80..=100).contains(&counts[usa_lte]), "{}", counts[usa_lte]);
    }

    #[test]
    fn fixed_all_cloud_congests_small_cloud() {
        let mut scenario = small_scenario(2);
        scenario.policy = FleetPolicy::Fixed(DeploymentKind::AllCloud);
        let report = FleetEngine::new(scenario).unwrap().run().unwrap();
        assert_eq!(report.offloaded(), report.inferences());
        // 300 devices per minute against 4 slots × 10 ms builds a backlog…
        let max_depth = report
            .queue_depth()
            .iter()
            .flat_map(|r| r.iter())
            .fold(0.0f64, |a, &b| a.max(b));
        assert!(max_depth > 0.0, "expected queue buildup, got none");
        // …and queue waits show up in the latency tail but never in energy.
        assert_eq!(report.switches(), 0);
    }

    #[test]
    fn fixed_all_edge_never_touches_cloud() {
        let mut scenario = small_scenario(2);
        scenario.policy = FleetPolicy::Fixed(DeploymentKind::AllEdge);
        let report = FleetEngine::new(scenario).unwrap().run().unwrap();
        assert_eq!(report.offloaded(), 0);
        for region in report.queue_depth() {
            assert!(region.iter().all(|&d| d == 0.0));
        }
        assert!(report.backends().iter().all(|b| b.served_jobs == 0.0));
    }

    #[test]
    fn dynamic_energy_beats_every_fixed_policy() {
        let kinds: Vec<DeploymentKind> = {
            let engine = FleetEngine::new(small_scenario(1)).unwrap();
            engine.cohorts()[0]
                .options
                .iter()
                .map(|o| o.kind().clone())
                .collect()
        };
        let dynamic = {
            let mut s = small_scenario(2);
            s.policy = FleetPolicy::Dynamic;
            s.metric = Metric::Energy;
            FleetEngine::new(s).unwrap().run().unwrap()
        };
        for kind in kinds {
            let mut s = small_scenario(2);
            s.metric = Metric::Energy;
            s.policy = FleetPolicy::Fixed(kind.clone());
            let fixed = FleetEngine::new(s).unwrap().run().unwrap();
            assert!(
                dynamic.total_energy_mj() <= fixed.total_energy_mj() + 1e-6,
                "dynamic lost to fixed {kind} on energy"
            );
        }
    }

    #[test]
    fn priority_class_lowers_fleet_latency_under_congestion() {
        // 400 all-cloud devices per epoch against 2 slots × 1 s service
        // (drain budget 120/epoch) saturate the queue hard.
        let congested = |discipline_priority: bool| {
            let cloud = if discipline_priority {
                CloudCapacity::new(2, 1000.0).with_priority(0.2)
            } else {
                CloudCapacity::new(2, 1000.0)
            };
            let scenario = FleetScenario::builder()
                .population(400)
                .horizon(Millis::new(600_000.0))
                .regions(vec![RegionShare::new(
                    Region::new("USA", Mbps::new(7.5)),
                    1.0,
                )])
                .cloud(cloud)
                .policy(FleetPolicy::Fixed(DeploymentKind::AllCloud))
                .metric(Metric::Latency)
                .shards(2)
                .seed(9)
                .build()
                .unwrap();
            FleetEngine::new(scenario).unwrap().run().unwrap()
        };
        let fifo = congested(false);
        let priority = congested(true);
        let max_wait = fifo.queue_wait_ms()[0]
            .iter()
            .fold(0.0f64, |a, &b| a.max(b));
        assert!(
            max_wait > 1000.0,
            "expected congestion, max wait {max_wait}"
        );
        // The 20% high-priority class skips the low backlog, so the fleet's
        // mean latency must drop relative to pure FIFO.
        assert!(
            priority.latency().mean() < fifo.latency().mean(),
            "priority {} !< fifo {}",
            priority.latency().mean(),
            fifo.latency().mean()
        );
    }

    #[test]
    fn batching_drains_congestion_a_single_queue_cannot() {
        // 400 all-cloud devices per minute against 2 slots × 1 s base
        // service: unbatched drain is 120/epoch (hopeless); a 32-deep
        // batcher amortizes the base cost to ~1.03 s per 32 jobs.
        let run = |serving: CloudServing| {
            let scenario = FleetScenario::builder()
                .population(400)
                .horizon(Millis::new(600_000.0))
                .regions(vec![RegionShare::new(
                    Region::new("USA", Mbps::new(7.5)),
                    1.0,
                )])
                .serving(serving)
                .policy(FleetPolicy::Fixed(DeploymentKind::AllCloud))
                .metric(Metric::Latency)
                .shards(2)
                .seed(9)
                .build()
                .unwrap();
            FleetEngine::new(scenario).unwrap().run().unwrap()
        };
        let unbatched = run(CloudServing::new(vec![BackendConfig::new(
            "gpu", 2, 1000.0, 1.0,
        )]));
        let batched = run(CloudServing::new(vec![BackendConfig::new(
            "gpu", 2, 1000.0, 1.0,
        )
        .with_batching(32, 250.0)]));
        assert!(
            batched.latency().mean() < unbatched.latency().mean() / 2.0,
            "batched {} !<< unbatched {}",
            batched.latency().mean(),
            unbatched.latency().mean()
        );
        let b = &batched.backends()[0];
        assert!(
            b.mean_batch() > 4.0,
            "expected real batches, got {}",
            b.mean_batch()
        );
        assert!(b.batch_sizes.count() > 0);
        assert!(b.utilization > 0.0 && b.utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn deadline_admission_sheds_to_local_and_bounds_latency() {
        let run = |admission: AdmissionPolicy| {
            let serving = CloudServing::new(vec![BackendConfig::new("gpu", 2, 1000.0, 1.0)])
                .with_admission(admission);
            let scenario = FleetScenario::builder()
                .population(400)
                .horizon(Millis::new(600_000.0))
                .regions(vec![RegionShare::new(
                    Region::new("USA", Mbps::new(7.5)),
                    1.0,
                )])
                .serving(serving)
                .policy(FleetPolicy::Fixed(DeploymentKind::AllCloud))
                .metric(Metric::Latency)
                .shards(2)
                .seed(9)
                .build()
                .unwrap();
            FleetEngine::new(scenario).unwrap().run().unwrap()
        };
        let open = run(AdmissionPolicy::Open);
        let shedding = run(AdmissionPolicy::Deadline {
            max_wait_ms: 5_000.0,
        });
        assert_eq!(open.shed_to_local(), 0);
        assert!(shedding.shed_to_local() > 0, "deadline must shed");
        assert_eq!(
            shedding.regions()[0].shed_to_local,
            shedding.shed_to_local(),
            "single-region scenario sheds in region 0"
        );
        assert!(
            shedding.latency().mean() < open.latency().mean(),
            "shedding to local should bound mean latency: {} !< {}",
            shedding.latency().mean(),
            open.latency().mean()
        );
        // Shed inferences do not occupy cloud capacity.
        assert!(shedding.offloaded() < open.offloaded());
    }

    #[test]
    fn sibling_failover_spills_into_the_least_loaded_region() {
        // Two regions, only the USA floods (its devices are all-cloud); a
        // deadline controller with sibling failover must push overflow
        // into the second region's queue.
        let serving = CloudServing::new(vec![BackendConfig::new("gpu", 2, 1000.0, 1.0)])
            .with_admission(AdmissionPolicy::Deadline {
                max_wait_ms: 5_000.0,
            })
            .with_failover(FailoverPolicy::SiblingRegion { penalty_ms: 60.0 });
        let scenario = FleetScenario::builder()
            .population(400)
            .horizon(Millis::new(600_000.0))
            .regions(vec![
                RegionShare::new(Region::new("USA", Mbps::new(7.5)), 0.9),
                RegionShare::new(Region::new("S. Korea", Mbps::new(16.1)), 0.1),
            ])
            .serving(serving)
            .policy(FleetPolicy::Fixed(DeploymentKind::AllCloud))
            .metric(Metric::Latency)
            .shards(2)
            .seed(9)
            .build()
            .unwrap();
        let report = FleetEngine::new(scenario).unwrap().run().unwrap();
        assert!(report.failed_over() > 0, "expected failover traffic");
        let usa = &report.regions()[0];
        let korea = &report.regions()[1];
        assert!(usa.failed_over > 0);
        assert_eq!(korea.failover_in, usa.failed_over);
        assert_eq!(usa.failover_in, korea.failed_over);
        // Failed-over inferences still count as offloaded.
        assert_eq!(
            report.offloaded() + report.shed_to_local(),
            report.inferences()
        );
    }

    fn per_request(mut scenario: FleetScenario) -> FleetScenario {
        scenario.fidelity = CloudSimFidelity::PerRequest;
        scenario
    }

    #[test]
    fn per_request_same_seed_same_shards_identical_reports() {
        let engine = FleetEngine::new(per_request(small_scenario(3))).unwrap();
        let a = engine.run().unwrap();
        let b = engine.run().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn per_request_reports_survive_resharding_bit_for_bit() {
        let a = FleetEngine::new(per_request(small_scenario(1)))
            .unwrap()
            .run()
            .unwrap();
        let b = FleetEngine::new(per_request(small_scenario(4)))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn per_request_accounts_every_inference_and_exposes_tails() {
        let scenario = per_request(small_scenario(2));
        let report = FleetEngine::new(scenario).unwrap().run().unwrap();
        // The cloud drains past the horizon, so nothing goes missing.
        assert_eq!(report.inferences(), 3000);
        assert_eq!(
            report.regions().iter().map(|r| r.inferences).sum::<u64>(),
            3000
        );
        // Per-request sojourns exist exactly where offloads landed…
        let total_sojourns: u64 = report.cloud_sojourn().iter().map(|h| h.count()).sum();
        assert_eq!(total_sojourns, report.offloaded());
        assert!(report.offloaded() > 0, "default mix should offload");
        // …and every tail summary is monotone.
        for region in 0..report.regions().len() {
            assert!(report.region_tail(region).is_monotone());
        }
        for backend in report.backends() {
            assert_eq!(backend.sojourn_ms.count(), backend.served_jobs as u64);
            assert!(backend.tail().is_monotone());
        }
    }

    #[test]
    fn fluid_and_per_request_agree_on_decisions_but_not_tails() {
        // Open admission + a policy that ignores waits (dynamic on
        // energy): both fidelities make identical device decisions, so
        // energy and offload counts match exactly; only the latency
        // accounting differs.
        let fluid = FleetEngine::new(small_scenario(2)).unwrap().run().unwrap();
        let discrete = FleetEngine::new(per_request(small_scenario(2)))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(fluid.inferences(), discrete.inferences());
        assert_eq!(fluid.offloaded(), discrete.offloaded());
        assert_eq!(fluid.switches(), discrete.switches());
        assert_eq!(fluid.total_energy_mj(), discrete.total_energy_mj());
        // Fluid mode has no per-request story at all.
        assert!(fluid.cloud_sojourn().iter().all(|h| h.count() == 0));
        assert!(discrete.cloud_sojourn().iter().any(|h| h.count() > 0));
    }

    #[test]
    fn per_request_contention_builds_a_real_tail() {
        // USA hosts ~150 all-cloud devices/min against one 300 ms slot —
        // about 75% utilized. The discrete queue must spread sojourns
        // well beyond the median: bursts queue behind each other, which
        // is exactly the structure the fluid model averages away.
        let mut scenario = small_scenario(2);
        scenario.policy = FleetPolicy::Fixed(DeploymentKind::AllCloud);
        scenario.serving = CloudServing::new(vec![BackendConfig::new("gpu", 1, 300.0, 0.0)]);
        scenario.fidelity = CloudSimFidelity::PerRequest;
        let report = FleetEngine::new(scenario).unwrap().run().unwrap();
        let tail = report.region_tail(1); // USA, the most loaded region
        assert!(tail.is_monotone());
        assert!(
            tail.p99 > 2.0 * tail.p50.max(1.0),
            "contention should stretch the tail: {tail:?}"
        );
    }

    #[test]
    fn autoscaled_run_reports_timelines_costs_and_reproduces() {
        // An all-cloud flood against a priced, autoscaled pool: slots must
        // climb, the report must carry the per-epoch slot timeline,
        // scaling-event counts, and fixed-point cost/energy totals, and
        // two runs must agree bit-for-bit — in both fidelity modes.
        use crate::cloud::{Autoscaler, ScalingSignal};
        for fidelity in [CloudSimFidelity::Fluid, CloudSimFidelity::PerRequest] {
            let serving = CloudServing::new(vec![BackendConfig::new("gpu", 1, 400.0, 1.0)
                .with_price(2.5)
                .with_energy(0.5)
                .with_autoscaler(
                    Autoscaler::new(ScalingSignal::Utilization, 0.7, 0.2, 1, 16)
                        .with_step(2)
                        .with_cooldown(0),
                )]);
            let mut scenario = small_scenario(2);
            scenario.policy = FleetPolicy::Fixed(DeploymentKind::AllCloud);
            scenario.serving = serving;
            scenario.fidelity = fidelity;
            let engine = FleetEngine::new(scenario).unwrap();
            let report = engine.run().unwrap();
            assert_eq!(report, engine.run().unwrap(), "{fidelity:?}");
            assert!(report.scaling_events() > 0, "{fidelity:?} never scaled");
            assert!(report.provision_cost() > 0.0);
            assert!(report.cloud_energy_mj() > 0.0);
            assert!(report.price_energy() > 0.0);
            assert!(
                report
                    .backends()
                    .iter()
                    .any(|b| b.slot_timeline.iter().max() > Some(&1)),
                "{fidelity:?}: the loaded region should scale beyond 1 slot"
            );
            for b in report.backends() {
                // One timeline entry per epoch (10 one-minute epochs).
                assert_eq!(b.slot_timeline.len(), 10, "{fidelity:?}");
                assert!(*b.slot_timeline.iter().max().unwrap() <= 16);
                assert_eq!(b.final_slots(), *b.slot_timeline.last().unwrap() as usize);
                // Cost is exactly Σ slots · price in micro-units.
                let slot_epochs: u64 = b.slot_timeline.iter().map(|&s| s as u64).sum();
                assert!((b.provision_cost() - slot_epochs as f64 * 2.5).abs() < 1e-9);
                assert!((b.cloud_energy_mj() - b.served_jobs * 0.5).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn poisson_arrivals_roughly_match_rate() {
        let scenario = FleetScenario::builder()
            .population(500)
            .horizon(Millis::new(600_000.0))
            .arrival(ArrivalModel::Poisson {
                mean_interarrival: Millis::new(60_000.0),
            })
            .shards(2)
            .seed(3)
            .build()
            .unwrap();
        let report = FleetEngine::new(scenario).unwrap().run().unwrap();
        // Expectation: 500 devices × 10 epochs = 5000 events; Poisson noise
        // over 5000 draws stays well within ±10%.
        let n = report.inferences() as f64;
        assert!((4500.0..=5500.0).contains(&n), "unexpected event count {n}");
    }

    #[test]
    fn to_us_rounds_to_integer_microseconds() {
        assert_eq!(to_us(60_000.0), 60_000_000);
        assert_eq!(to_us(0.0015), 2);
        assert_eq!(to_us(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "finite, non-negative")]
    fn to_us_rejects_nan() {
        to_us(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite, non-negative")]
    fn to_us_rejects_negative_durations() {
        to_us(-60_000.0);
    }

    #[test]
    fn ring_queue_pops_in_heap_order_under_periodic_rearm() {
        // The ring's sort invariant: pop-front/push-back under a fixed
        // re-arm period must reproduce the binary heap's (time, local)
        // pop order exactly, including ties resolved by local index.
        let period = 1_000u64;
        let horizon = 10_000u64;
        let seeds: Vec<(u64, u32)> = (0..32u32)
            .map(|local| (mix_seed(7, local as u64) % period, local))
            .collect();
        let mut ring = EventQueue::new(
            &ArrivalModel::Periodic {
                period: Millis::new(1.0),
            },
            seeds.clone(),
        );
        let mut heap = EventQueue::Heap(seeds.into_iter().map(Reverse).collect());
        loop {
            let a = ring.pop_before(horizon);
            let b = heap.pop_before(horizon);
            assert_eq!(a, b);
            let Some((time, local)) = a else { break };
            let next = time + period;
            if next < horizon {
                ring.push((next, local));
                heap.push((next, local));
            }
        }
    }

    #[test]
    fn replay_modes_are_bit_identical_in_both_fidelities() {
        use crate::scenario::ReplayMode;
        for fidelity in [CloudSimFidelity::Fluid, CloudSimFidelity::PerRequest] {
            let mut sequential = small_scenario(2);
            sequential.fidelity = fidelity;
            sequential.replay = ReplayMode::Sequential;
            let mut forced = small_scenario(2);
            forced.fidelity = fidelity;
            forced.replay = ReplayMode::Parallel;
            let a = FleetEngine::new(sequential).unwrap().run().unwrap();
            let b = FleetEngine::new(forced).unwrap().run().unwrap();
            assert_eq!(a, b, "{fidelity:?}");
            assert_eq!(a.digest(), b.digest());
        }
    }
}
