//! Per-device sessions and the cohorts that share design-time artifacts.
//!
//! Every device composes a synthesized per-device [`ThroughputTrace`], an
//! online [`ThroughputTracker`], and a deployment policy over its cohort's
//! shared [`DominanceMap`]. A [`Cohort`] is one (region, technology) cell
//! of the scenario mix: all its devices see the same deployment options and
//! dominance structure (those depend only on the network, hardware, and
//! radio technology), while each device wanders through its own throughput
//! trajectory.
//!
//! Devices also implement the *execution side* of admission control: when
//! their region's published [`RegionSignal`] carries a non-zero shed
//! fraction, each offloading device decides deterministically (from a
//! stateless per-device hash stream, so shard assignment cannot perturb
//! it) whether its request is shed — and a shed request either fails over
//! to the least-loaded sibling region or falls back to the device's
//! local-only deployment option.

use crate::cloud::{CloudSimFidelity, DispatchPolicy, FailoverPolicy, RegionSignal};
use crate::scenario::{FleetPolicy, WorkloadCurve, CURVE_FP_SCALE};
use crate::{mix_seed, FleetError};
use lens_nn::units::Mbps;
use lens_runtime::{DeploymentOption, DeploymentPlanner, DominanceMap, Metric, ThroughputTracker};
use lens_telemetry::TraceEvent;
use lens_wireless::{Region, ThroughputTrace, WirelessTechnology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;

/// One (region, technology) cell of the fleet mix, holding the design-time
/// artifacts every member device shares.
#[derive(Debug, Clone, PartialEq)]
pub struct Cohort {
    /// Index into the scenario's region list.
    pub region_index: usize,
    /// The region profile devices synthesize traces around.
    pub region: Region,
    /// The radio technology (fixes the power model and RTT).
    pub technology: WirelessTechnology,
    /// The enumerated deployment options.
    pub options: Vec<DeploymentOption>,
    /// Dominance map over `options` for the scenario metric.
    pub map: DominanceMap,
    /// Resolved option index for [`FleetPolicy::Fixed`], if that policy is
    /// active.
    pub fixed_index: Option<usize>,
    /// The cheapest cloud-free option (All-Edge for every paper network) —
    /// what a shed request falls back to.
    pub local_index: Option<usize>,
}

impl Cohort {
    /// Resolves a fixed deployment kind to its option index.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidScenario`] when no option of this kind
    /// exists in the cohort.
    pub fn resolve_fixed(&self, kind: &lens_runtime::DeploymentKind) -> Result<usize, FleetError> {
        self.options
            .iter()
            .position(|o| o.kind() == kind)
            .ok_or_else(|| {
                FleetError::InvalidScenario(format!(
                    "cohort {}/{} has no {kind} option",
                    self.region.name(),
                    self.technology
                ))
            })
    }
}

/// The scenario-wide knobs every [`Device::serve`] call needs: the
/// switching policy, the metric it optimizes, where shed requests go, and
/// which cloud model prices the queueing.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ServeContext<'a> {
    pub policy: &'a FleetPolicy,
    pub metric: Metric,
    pub failover: FailoverPolicy,
    /// Under [`CloudSimFidelity::Fluid`] the device charges the published
    /// epoch wait to its offloaded latency; under
    /// [`CloudSimFidelity::PerRequest`] it leaves the cloud part out — the
    /// microsimulation supplies the exact per-request sojourn at the
    /// barrier, and the engine completes the record then.
    pub fidelity: CloudSimFidelity,
    /// The serving tier's dispatch policy. Under
    /// [`DispatchPolicy::CostAware`], sibling failover targets the region
    /// with the smallest published marginal cost (wait breaks ties)
    /// instead of the smallest wait.
    pub dispatch: DispatchPolicy,
    /// The scenario's time-varying workload curve, if any: devices
    /// evaluate it at each request's arrival time and suppress offload
    /// intent deterministically (a suppressed request runs the local-only
    /// option).
    pub curve: Option<&'a WorkloadCurve>,
    /// The tail deadline budget (ms), if set: while the region's published
    /// epoch p99 exceeds it, offload-bound requests retreat to the
    /// local-only option (a hash-spread fraction still probes the tier).
    pub tail_deadline_ms: Option<f64>,
    /// Staged-pipeline pricing for the **fluid** tier, when the scenario
    /// stages offloads: `(depth, per-origin-region total transfer ms)`.
    /// A fluid offload then charges the published wait once per stage
    /// plus its origin region's summed hop transfers. `None` under the
    /// per-request fidelity even when the scenario is staged — there the
    /// barrier chains real stage requests and prices each hop exactly.
    pub pipeline: Option<(u32, &'a [f64])>,
}

/// What one served inference cost, for aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Served {
    pub latency_ms: f64,
    pub energy_mj: f64,
    /// Whether the inference occupied cloud capacity (its own region's or,
    /// after failover, a sibling's).
    pub offloaded: bool,
    pub switched: bool,
    /// Admission control shed the offload and the device ran its
    /// local-only option instead.
    pub shed_to_local: bool,
    /// Admission control shed the offload here and a sibling region's
    /// cloud absorbed it.
    pub failover_region: Option<u32>,
    /// The device retreated an offload-bound request to its local-only
    /// option because the region's published epoch p99 exceeded the tail
    /// deadline budget.
    pub retreated: bool,
}

/// Emits the flight-recorder events for one serve outcome. Local serves
/// that were never shed emit nothing — tracing every periodic local
/// inference would flood the ring with events that carry no scheduling
/// information. A failed-over offload emits two events at the same
/// `(time_us, device_id)` key (failover, then dispatch at the sibling);
/// the barrier's *stable* merge sort preserves that emission order.
pub(crate) fn trace_serve_events(
    served: &Served,
    device_id: u64,
    origin_region: u64,
    high_priority: bool,
    time_us: u64,
    out: &mut Vec<TraceEvent>,
) {
    if served.shed_to_local {
        out.push(TraceEvent::Shed {
            time_us,
            device_id,
            region: origin_region,
        });
        return;
    }
    if served.retreated {
        out.push(TraceEvent::Retreat {
            time_us,
            device_id,
            region: origin_region,
        });
        return;
    }
    if let Some(dest) = served.failover_region {
        out.push(TraceEvent::Failover {
            time_us,
            device_id,
            from_region: origin_region,
            to_region: u64::from(dest),
        });
    }
    if served.offloaded {
        out.push(TraceEvent::Dispatch {
            time_us,
            device_id,
            region: served.failover_region.map_or(origin_region, u64::from),
            high_priority,
            failed_over: served.failover_region.is_some(),
        });
    }
}

/// Maps a SplitMix64 output to `[0, 1)` with 53 bits of precision.
fn unit_from(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Salt separating the failover draw from the shed draw at the same event
/// time.
const FAILOVER_SALT: u64 = 0x51B1_1E57;

/// Salt separating the workload-curve suppression draw from the shed and
/// failover draws at the same event time.
const CURVE_SALT: u64 = 0xC0A5_7C04;

/// Salt separating the tail-retreat re-probe draw from every other stream.
const RETREAT_SALT: u64 = 0x7A11_BAC0;

/// One in this many retreat-bound offloads still probes the tier while the
/// published p99 exceeds the deadline budget, so the fleet observes the
/// tail recovering instead of abandoning the region forever.
const RETREAT_REPROBE_DIV: u64 = 16;

/// One device session: trace + tracker + policy state.
#[derive(Debug, Clone)]
pub struct Device {
    pub(crate) cohort: u32,
    pub(crate) high_priority: bool,
    pub(crate) trace: ThroughputTrace,
    pub(crate) tracker: ThroughputTracker,
    pub(crate) current_option: Option<u32>,
    pub(crate) next_event_us: u64,
    pub(crate) rng: StdRng,
    /// Seed of the stateless shed/failover decision stream — hashed with
    /// the event time rather than drawn from `rng`, so admission decisions
    /// cannot perturb the arrival stream.
    pub(crate) shed_seed: u64,
}

impl Device {
    pub(crate) fn new(
        cohort: u32,
        high_priority: bool,
        trace: ThroughputTrace,
        tracker_alpha: f64,
        seed: u64,
        first_event_us: u64,
    ) -> Self {
        Device {
            cohort,
            high_priority,
            trace,
            tracker: ThroughputTracker::new(tracker_alpha),
            current_option: None,
            next_event_us: first_event_us,
            rng: StdRng::seed_from_u64(seed),
            shed_seed: mix_seed(seed, 0x5EED),
        }
    }

    /// The cohort this device belongs to.
    pub fn cohort_index(&self) -> usize {
        self.cohort as usize
    }

    /// Whether this device is in the cloud queue's high-priority class.
    pub fn high_priority(&self) -> bool {
        self.high_priority
    }

    /// The device's synthesized throughput trajectory.
    pub fn trace(&self) -> &ThroughputTrace {
        &self.trace
    }

    /// Draws the next exponential inter-arrival time (µs) for Poisson
    /// arrivals from the device's own seeded stream.
    pub(crate) fn draw_interarrival_us(&mut self, mean_us: f64) -> u64 {
        // Inverse-CDF sampling; u is in [0, 1), so 1-u is in (0, 1].
        let u: f64 = self.rng.gen();
        let dt = -mean_us * (1.0 - u).ln();
        // Never schedule two events at the same microsecond.
        (dt as u64).max(1)
    }

    /// Serves one inference at `time_us`: observe the current trace sample,
    /// select an option per `policy`, apply the region's published
    /// admission signal (shedding to a sibling region or the local-only
    /// option), and price the inference at the *actual* throughput (the
    /// tracker only steers the choice, as in the Fig 5 loop).
    ///
    /// `signals` is the barrier-published per-region state for this epoch:
    /// queue waits are charged to the realized latency of offloaded
    /// options, congestion-aware policies also weigh them during selection
    /// on the latency metric, and the shed fraction gates admission.
    ///
    /// The engine feeds samples from its epoch-major arena via
    /// [`Device::serve_with_sample`]; this per-device lookup wrapper
    /// remains for unit tests exercising a single device.
    #[cfg(test)]
    pub(crate) fn serve(
        &mut self,
        cohort: &Cohort,
        ctx: ServeContext<'_>,
        signals: &[RegionSignal],
        time_us: u64,
        interval_us: u64,
    ) -> Served {
        let idx = ((time_us / interval_us) as usize).min(self.trace.len() - 1);
        let tu = self.trace.samples()[idx];
        self.serve_with_sample(cohort, ctx, signals, time_us, tu)
    }

    /// [`Device::serve`] with the trace sample supplied by the caller.
    ///
    /// The engine's shard step keeps every device's samples in one
    /// epoch-major arena (all of an epoch's reads land in one contiguous
    /// row) and feeds the sample in directly, instead of chasing each
    /// device's own trace allocation per event.
    pub(crate) fn serve_with_sample(
        &mut self,
        cohort: &Cohort,
        ctx: ServeContext<'_>,
        signals: &[RegionSignal],
        time_us: u64,
        tu: Mbps,
    ) -> Served {
        self.tracker.observe(tu);
        let estimate = self.tracker.estimate().expect("just observed");
        let own = &signals[cohort.region_index];
        let queue_wait_ms = own.wait_ms(self.high_priority);
        // Fluid staged pipelines experience the published wait once per
        // stage; `1.0` (monolithic, or per-request fidelity) multiplies
        // exactly, so the historical arithmetic is bit-identical.
        let fluid_stages = match ctx.pipeline {
            Some((depth, _)) if ctx.fidelity == CloudSimFidelity::Fluid => f64::from(depth),
            _ => 1.0,
        };

        let choice = match ctx.policy {
            FleetPolicy::Fixed(_) => cohort.fixed_index.expect("resolved at engine build"),
            FleetPolicy::Dynamic => cohort.map.best_at(estimate),
            FleetPolicy::DynamicCongestionAware => {
                if ctx.metric == Metric::Latency && queue_wait_ms > 0.0 {
                    DeploymentPlanner::best_at_with_cloud_penalty(
                        &cohort.options,
                        ctx.metric,
                        estimate,
                        queue_wait_ms,
                    )
                    .expect("cohort has options")
                    .0
                } else {
                    // Queue waits cost the edge no energy, so the penalty
                    // only shifts latency-mode selection.
                    cohort.map.best_at(estimate)
                }
            }
        };
        let switched = self
            .current_option
            .is_some_and(|prev| prev != choice as u32);
        self.current_option = Some(choice as u32);

        let option = &cohort.options[choice];
        let mut offloaded = option.uses_cloud();
        let mut latency_ms = option.latency_at(tu).get();
        let mut energy_mj = option.energy_at(tu).get();
        let mut shed_to_local = false;
        let mut failover_region = None;
        let mut retreated = false;

        // Time-varying workload: the curve scales this device's offload
        // intent at the request's arrival time. A suppressed request runs
        // the local-only option silently — it never wanted the cloud this
        // phase, so it is neither a shed nor a retreat. The draw is an
        // integer comparison in the curve's own micro-unit scale: no float
        // enters the decision.
        if offloaded {
            if let Some(curve) = ctx.curve {
                let multiplier_fp = curve.multiplier_fp(time_us, cohort.region_index);
                let suppressed = multiplier_fp < CURVE_FP_SCALE
                    && mix_seed(mix_seed(self.shed_seed, CURVE_SALT), time_us)
                        % (CURVE_FP_SCALE as u64)
                        >= multiplier_fp as u64;
                if suppressed {
                    let local = cohort
                        .local_index
                        .expect("validated at engine build: local fallback exists");
                    let fallback = &cohort.options[local];
                    latency_ms = fallback.latency_at(tu).get();
                    energy_mj = fallback.energy_at(tu).get();
                    offloaded = false;
                }
            }
        }

        // Tail retreat: while the region's published epoch p99 exceeds the
        // deadline budget, offload-bound requests retreat to the local-only
        // option before admission. A hash-spread 1-in-N still probes the
        // tier so devices notice when the tail recovers. A `None` p99 (the
        // fluid tier, or an idle microsim epoch) is *no signal* — never a
        // stale zero — and must not trigger a retreat.
        if offloaded {
            if let (Some(budget_ms), Some(p99_ms)) = (ctx.tail_deadline_ms, own.p99_ms) {
                if p99_ms > budget_ms {
                    let probes = mix_seed(self.shed_seed ^ RETREAT_SALT, time_us)
                        .is_multiple_of(RETREAT_REPROBE_DIV);
                    if !probes {
                        let local = cohort
                            .local_index
                            .expect("validated at engine build: local fallback exists");
                        let fallback = &cohort.options[local];
                        latency_ms = fallback.latency_at(tu).get();
                        energy_mj = fallback.energy_at(tu).get();
                        offloaded = false;
                        retreated = true;
                    }
                }
            }
        }

        if offloaded {
            let shed = own.shed_fraction > 0.0
                && unit_from(mix_seed(self.shed_seed, time_us)) < own.shed_fraction;
            if !shed {
                // Per-request fidelity: the microsim computes the exact
                // sojourn at the barrier instead of the fluid estimate.
                if ctx.fidelity == CloudSimFidelity::Fluid {
                    latency_ms += queue_wait_ms * fluid_stages;
                }
            } else {
                // Shed: try a sibling region if configured, else run local.
                let sibling = match ctx.failover {
                    FailoverPolicy::ToDevice => None,
                    FailoverPolicy::SiblingRegion { penalty_ms } => signals
                        .iter()
                        .enumerate()
                        .filter(|&(r, _)| r != cohort.region_index)
                        .filter(|(r, s)| {
                            // Each sibling applies its own admission gate
                            // *before* selection (per-device, per-region
                            // stateless draw): a cheapest-but-shedding
                            // sibling must fall through to the next viable
                            // one, not block failover entirely.
                            s.shed_fraction <= 0.0
                                || unit_from(mix_seed(
                                    self.shed_seed ^ *r as u64,
                                    time_us ^ FAILOVER_SALT,
                                )) >= s.shed_fraction
                        })
                        .min_by(|(ra, a), (rb, b)| {
                            // Cost-aware tiers shed toward the *cheapest*
                            // viable sibling (published marginal cost);
                            // otherwise — and on cost ties — the least
                            // wait wins. Ties (several idle siblings at
                            // wait 0) are spread by a per-device,
                            // per-event hash so the overflow does not
                            // pile onto the lowest index.
                            let by_cost = if ctx.dispatch == DispatchPolicy::CostAware {
                                a.marginal_cost
                                    .partial_cmp(&b.marginal_cost)
                                    .expect("finite marginal costs")
                            } else {
                                Ordering::Equal
                            };
                            by_cost
                                .then_with(|| {
                                    a.wait_ms(self.high_priority)
                                        .partial_cmp(&b.wait_ms(self.high_priority))
                                        .expect("finite waits")
                                })
                                .then_with(|| {
                                    mix_seed(self.shed_seed ^ *ra as u64, time_us)
                                        .cmp(&mix_seed(self.shed_seed ^ *rb as u64, time_us))
                                })
                        })
                        .map(|(r, s)| {
                            // Fluid mode prices the sibling's published
                            // wait here; per-request mode only charges the
                            // inter-region penalty — the request joins the
                            // sibling's microsim queue for the rest.
                            let wait = match ctx.fidelity {
                                CloudSimFidelity::Fluid => s.wait_ms(self.high_priority),
                                CloudSimFidelity::PerRequest => 0.0,
                            };
                            // Staged fluid offloads wait at every stage;
                            // the inter-region penalty is paid once (the
                            // whole chain serves in the sibling).
                            (r, wait * fluid_stages + penalty_ms)
                        }),
                };
                match sibling {
                    Some((dest, extra_ms)) => {
                        latency_ms += extra_ms;
                        failover_region = Some(dest as u32);
                    }
                    None => {
                        let local = cohort
                            .local_index
                            .expect("validated at engine build: local fallback exists");
                        let fallback = &cohort.options[local];
                        latency_ms = fallback.latency_at(tu).get();
                        energy_mj = fallback.energy_at(tu).get();
                        offloaded = false;
                        shed_to_local = true;
                    }
                }
            }
        }
        // A staged fluid offload also pays its origin region's summed
        // inter-stage transfers (priced on the origin uplink even after
        // failover — the activations leave the device's network).
        if offloaded {
            if let Some((_, transfer_total_ms)) = ctx.pipeline {
                if ctx.fidelity == CloudSimFidelity::Fluid {
                    latency_ms += transfer_total_ms[cohort.region_index];
                }
            }
        }
        Served {
            latency_ms,
            energy_mj,
            offloaded,
            switched,
            shed_to_local,
            failover_region,
            retreated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lens_device::{profile_network, DeviceProfile};
    use lens_nn::units::{Mbps, Millis};
    use lens_nn::zoo;
    use lens_runtime::DeploymentKind;
    use lens_wireless::WirelessLink;

    fn cohort(metric: Metric) -> Cohort {
        let analysis = zoo::alexnet().analyze().unwrap();
        let perf = profile_network(&analysis, &DeviceProfile::jetson_tx2_cpu());
        let planner =
            DeploymentPlanner::new(WirelessLink::new(WirelessTechnology::Lte, Mbps::new(8.0)));
        let options = planner.enumerate(&analysis, &perf).unwrap();
        let map = DominanceMap::build(&options, metric).unwrap();
        let local_index = DeploymentPlanner::local_fallback(&options, metric, Mbps::new(8.0)).ok();
        Cohort {
            region_index: 0,
            region: Region::new("USA", Mbps::new(7.5)),
            technology: WirelessTechnology::Lte,
            options,
            map,
            fixed_index: None,
            local_index,
        }
    }

    fn flat_trace(mbps: f64, n: usize) -> ThroughputTrace {
        ThroughputTrace::new(vec![Mbps::new(mbps); n], Millis::new(60_000.0)).unwrap()
    }

    fn calm(regions: usize) -> Vec<RegionSignal> {
        vec![RegionSignal::default(); regions]
    }

    fn waiting(wait_ms: f64) -> Vec<RegionSignal> {
        vec![RegionSignal {
            wait_high_ms: wait_ms,
            wait_low_ms: wait_ms,
            ..RegionSignal::default()
        }]
    }

    fn shedding(fraction: f64) -> RegionSignal {
        RegionSignal {
            shed_fraction: fraction,
            ..RegionSignal::default()
        }
    }

    #[test]
    fn resolve_fixed_finds_kinds() {
        let c = cohort(Metric::Energy);
        assert!(c.resolve_fixed(&DeploymentKind::AllEdge).is_ok());
        assert!(c.resolve_fixed(&DeploymentKind::AllCloud).is_ok());
        let missing = DeploymentKind::Split {
            layer_index: 999,
            layer_name: "nope".into(),
        };
        assert!(matches!(
            c.resolve_fixed(&missing),
            Err(FleetError::InvalidScenario(_))
        ));
    }

    #[test]
    fn dynamic_serve_matches_dominance_map() {
        let c = cohort(Metric::Energy);
        let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, 1, 0);
        let served = d.serve(
            &c,
            ServeContext {
                policy: &FleetPolicy::Dynamic,
                metric: Metric::Energy,
                failover: FailoverPolicy::ToDevice,
                fidelity: CloudSimFidelity::Fluid,
                dispatch: DispatchPolicy::LeastWorkLeft,
                curve: None,
                tail_deadline_ms: None,
                pipeline: None,
            },
            &calm(1),
            0,
            60_000_000,
        );
        let expected = c.map.best_at(Mbps::new(8.0));
        assert_eq!(d.current_option, Some(expected as u32));
        let opt = &c.options[expected];
        assert!((served.energy_mj - opt.energy_at(Mbps::new(8.0)).get()).abs() < 1e-12);
        assert_eq!(served.offloaded, opt.uses_cloud());
        assert!(!served.switched, "first inference cannot switch");
    }

    #[test]
    fn queue_wait_charged_to_offloaded_latency_only() {
        let c = cohort(Metric::Latency);
        let mut fixed_cloud = c.clone();
        fixed_cloud.fixed_index = Some(
            fixed_cloud
                .resolve_fixed(&DeploymentKind::AllCloud)
                .unwrap(),
        );
        let mut fixed_edge = c.clone();
        fixed_edge.fixed_index = Some(fixed_edge.resolve_fixed(&DeploymentKind::AllEdge).unwrap());

        let policy = FleetPolicy::Fixed(DeploymentKind::AllCloud); // kind irrelevant post-resolve
        let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, 1, 0);
        let base = d.serve(
            &fixed_cloud,
            ServeContext {
                policy: &policy,
                metric: Metric::Latency,
                failover: FailoverPolicy::ToDevice,
                fidelity: CloudSimFidelity::Fluid,
                dispatch: DispatchPolicy::LeastWorkLeft,
                curve: None,
                tail_deadline_ms: None,
                pipeline: None,
            },
            &calm(1),
            0,
            60_000_000,
        );
        let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, 1, 0);
        let queued = d.serve(
            &fixed_cloud,
            ServeContext {
                policy: &policy,
                metric: Metric::Latency,
                failover: FailoverPolicy::ToDevice,
                fidelity: CloudSimFidelity::Fluid,
                dispatch: DispatchPolicy::LeastWorkLeft,
                curve: None,
                tail_deadline_ms: None,
                pipeline: None,
            },
            &waiting(500.0),
            0,
            60_000_000,
        );
        assert!((queued.latency_ms - base.latency_ms - 500.0).abs() < 1e-9);
        assert!((queued.energy_mj - base.energy_mj).abs() < 1e-12);

        let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, 1, 0);
        let edge = d.serve(
            &fixed_edge,
            ServeContext {
                policy: &policy,
                metric: Metric::Latency,
                failover: FailoverPolicy::ToDevice,
                fidelity: CloudSimFidelity::Fluid,
                dispatch: DispatchPolicy::LeastWorkLeft,
                curve: None,
                tail_deadline_ms: None,
                pipeline: None,
            },
            &waiting(500.0),
            0,
            60_000_000,
        );
        let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, 1, 0);
        let edge_q = d.serve(
            &fixed_edge,
            ServeContext {
                policy: &policy,
                metric: Metric::Latency,
                failover: FailoverPolicy::ToDevice,
                fidelity: CloudSimFidelity::Fluid,
                dispatch: DispatchPolicy::LeastWorkLeft,
                curve: None,
                tail_deadline_ms: None,
                pipeline: None,
            },
            &calm(1),
            0,
            60_000_000,
        );
        assert!((edge.latency_ms - edge_q.latency_ms).abs() < 1e-12);
    }

    #[test]
    fn congestion_aware_routes_around_saturated_cloud() {
        let c = cohort(Metric::Latency);
        // At a high rate the base latency argmin offloads…
        let mut d = Device::new(0, false, flat_trace(50.0, 4), 1.0, 1, 0);
        let served = d.serve(
            &c,
            ServeContext {
                policy: &FleetPolicy::DynamicCongestionAware,
                metric: Metric::Latency,
                failover: FailoverPolicy::ToDevice,
                fidelity: CloudSimFidelity::Fluid,
                dispatch: DispatchPolicy::LeastWorkLeft,
                curve: None,
                tail_deadline_ms: None,
                pipeline: None,
            },
            &calm(1),
            0,
            60_000_000,
        );
        assert!(served.offloaded, "uncongested fast link should offload");
        // …but an hour-long queue forces All-Edge.
        let mut d = Device::new(0, false, flat_trace(50.0, 4), 1.0, 1, 0);
        let served = d.serve(
            &c,
            ServeContext {
                policy: &FleetPolicy::DynamicCongestionAware,
                metric: Metric::Latency,
                failover: FailoverPolicy::ToDevice,
                fidelity: CloudSimFidelity::Fluid,
                dispatch: DispatchPolicy::LeastWorkLeft,
                curve: None,
                tail_deadline_ms: None,
                pipeline: None,
            },
            &waiting(3.6e6),
            0,
            60_000_000,
        );
        assert!(
            !served.offloaded,
            "congestion-aware policy must dodge the queue"
        );
    }

    #[test]
    fn full_shedding_to_device_runs_the_local_option() {
        let mut c = cohort(Metric::Latency);
        c.fixed_index = Some(c.resolve_fixed(&DeploymentKind::AllCloud).unwrap());
        let local = c.local_index.unwrap();
        let policy = FleetPolicy::Fixed(DeploymentKind::AllCloud);
        let signals = vec![shedding(1.0)];
        let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, 1, 0);
        let served = d.serve(
            &c,
            ServeContext {
                policy: &policy,
                metric: Metric::Latency,
                failover: FailoverPolicy::ToDevice,
                fidelity: CloudSimFidelity::Fluid,
                dispatch: DispatchPolicy::LeastWorkLeft,
                curve: None,
                tail_deadline_ms: None,
                pipeline: None,
            },
            &signals,
            0,
            60_000_000,
        );
        assert!(served.shed_to_local);
        assert!(!served.offloaded);
        assert_eq!(served.failover_region, None);
        let fallback = &c.options[local];
        assert!((served.latency_ms - fallback.latency_at(Mbps::new(8.0)).get()).abs() < 1e-12);
        assert!((served.energy_mj - fallback.energy_at(Mbps::new(8.0)).get()).abs() < 1e-12);
    }

    #[test]
    fn full_shedding_fails_over_to_least_loaded_sibling() {
        let mut c = cohort(Metric::Latency);
        c.fixed_index = Some(c.resolve_fixed(&DeploymentKind::AllCloud).unwrap());
        let policy = FleetPolicy::Fixed(DeploymentKind::AllCloud);
        // Own region (index 0) sheds everything; region 2 is least loaded.
        let signals = vec![shedding(1.0), waiting(900.0)[0], waiting(200.0)[0]];
        let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, 1, 0);
        let base = {
            let mut d2 = Device::new(0, false, flat_trace(8.0, 4), 1.0, 1, 0);
            d2.serve(
                &c,
                ServeContext {
                    policy: &policy,
                    metric: Metric::Latency,
                    failover: FailoverPolicy::ToDevice,
                    fidelity: CloudSimFidelity::Fluid,
                    dispatch: DispatchPolicy::LeastWorkLeft,
                    curve: None,
                    tail_deadline_ms: None,
                    pipeline: None,
                },
                &calm(3),
                0,
                60_000_000,
            )
        };
        let served = d.serve(
            &c,
            ServeContext {
                policy: &policy,
                metric: Metric::Latency,
                failover: FailoverPolicy::SiblingRegion { penalty_ms: 40.0 },
                fidelity: CloudSimFidelity::Fluid,
                dispatch: DispatchPolicy::LeastWorkLeft,
                curve: None,
                tail_deadline_ms: None,
                pipeline: None,
            },
            &signals,
            0,
            60_000_000,
        );
        assert_eq!(served.failover_region, Some(2));
        assert!(served.offloaded, "failover still occupies cloud capacity");
        assert!(!served.shed_to_local);
        // Charged the sibling's wait plus the inter-region penalty.
        assert!((served.latency_ms - base.latency_ms - 240.0).abs() < 1e-9);
        assert!((served.energy_mj - base.energy_mj).abs() < 1e-12);
    }

    #[test]
    fn cost_aware_failover_sheds_to_the_cheapest_viable_sibling() {
        let mut c = cohort(Metric::Latency);
        c.fixed_index = Some(c.resolve_fixed(&DeploymentKind::AllCloud).unwrap());
        let policy = FleetPolicy::Fixed(DeploymentKind::AllCloud);
        // Own region (0) sheds everything. Sibling 1 is idle but pricey;
        // sibling 2 carries a 400 ms wait but costs 6× less per job.
        let pricey = RegionSignal {
            marginal_cost: 6.0,
            ..RegionSignal::default()
        };
        let cheap_but_busy = RegionSignal {
            wait_high_ms: 400.0,
            wait_low_ms: 400.0,
            marginal_cost: 1.0,
            ..RegionSignal::default()
        };
        let signals = vec![shedding(1.0), pricey, cheap_but_busy];
        let serve = |dispatch| {
            let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, 1, 0);
            d.serve(
                &c,
                ServeContext {
                    policy: &policy,
                    metric: Metric::Latency,
                    failover: FailoverPolicy::SiblingRegion { penalty_ms: 40.0 },
                    fidelity: CloudSimFidelity::Fluid,
                    dispatch,
                    curve: None,
                    tail_deadline_ms: None,
                    pipeline: None,
                },
                &signals,
                0,
                60_000_000,
            )
        };
        // Least-work dispatch keeps the least-wait choice…
        let least_work = serve(DispatchPolicy::LeastWorkLeft);
        assert_eq!(least_work.failover_region, Some(1));
        // …cost-aware failover pays the wait to shed to the cheap region.
        let cost_aware = serve(DispatchPolicy::CostAware);
        assert_eq!(cost_aware.failover_region, Some(2));
        assert!(cost_aware.offloaded);
        assert!(
            cost_aware.latency_ms > least_work.latency_ms,
            "the cheap sibling charges its 400 ms wait"
        );
    }

    #[test]
    fn fully_shedding_cheapest_sibling_falls_through_to_next_viable() {
        // Viability gates run *before* selection: when the cheapest
        // sibling sheds everything, failover must land on the
        // next-cheapest viable sibling — not collapse to local fallback
        // because the blocked region kept winning the cost comparison.
        let mut c = cohort(Metric::Latency);
        c.fixed_index = Some(c.resolve_fixed(&DeploymentKind::AllCloud).unwrap());
        let policy = FleetPolicy::Fixed(DeploymentKind::AllCloud);
        let cheap_but_shedding = RegionSignal {
            marginal_cost: 1.0,
            shed_fraction: 1.0,
            ..RegionSignal::default()
        };
        let pricey_but_open = RegionSignal {
            marginal_cost: 6.0,
            ..RegionSignal::default()
        };
        let signals = vec![shedding(1.0), cheap_but_shedding, pricey_but_open];
        let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, 1, 0);
        let served = d.serve(
            &c,
            ServeContext {
                policy: &policy,
                metric: Metric::Latency,
                failover: FailoverPolicy::SiblingRegion { penalty_ms: 40.0 },
                fidelity: CloudSimFidelity::Fluid,
                dispatch: DispatchPolicy::CostAware,
                curve: None,
                tail_deadline_ms: None,
                pipeline: None,
            },
            &signals,
            0,
            60_000_000,
        );
        assert_eq!(served.failover_region, Some(2), "{served:?}");
        assert!(served.offloaded);
        assert!(!served.shed_to_local);
    }

    #[test]
    fn shedding_sibling_pushes_failover_back_to_device() {
        let mut c = cohort(Metric::Latency);
        c.fixed_index = Some(c.resolve_fixed(&DeploymentKind::AllCloud).unwrap());
        let policy = FleetPolicy::Fixed(DeploymentKind::AllCloud);
        let signals = vec![shedding(1.0), shedding(1.0)];
        let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, 1, 0);
        let served = d.serve(
            &c,
            ServeContext {
                policy: &policy,
                metric: Metric::Latency,
                failover: FailoverPolicy::SiblingRegion { penalty_ms: 40.0 },
                fidelity: CloudSimFidelity::Fluid,
                dispatch: DispatchPolicy::LeastWorkLeft,
                curve: None,
                tail_deadline_ms: None,
                pipeline: None,
            },
            &signals,
            0,
            60_000_000,
        );
        assert!(served.shed_to_local, "both regions shedding → local");
        assert!(!served.offloaded);
    }

    #[test]
    fn partial_shedding_is_deterministic_and_proportional() {
        let mut c = cohort(Metric::Latency);
        c.fixed_index = Some(c.resolve_fixed(&DeploymentKind::AllCloud).unwrap());
        let policy = FleetPolicy::Fixed(DeploymentKind::AllCloud);
        let signals = vec![shedding(0.3)];
        let run = || {
            let mut shed = 0u32;
            for dev in 0..400u64 {
                let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, dev, 0);
                let s = d.serve(
                    &c,
                    ServeContext {
                        policy: &policy,
                        metric: Metric::Latency,
                        failover: FailoverPolicy::ToDevice,
                        fidelity: CloudSimFidelity::Fluid,
                        dispatch: DispatchPolicy::LeastWorkLeft,
                        curve: None,
                        tail_deadline_ms: None,
                        pipeline: None,
                    },
                    &signals,
                    0,
                    60_000_000,
                );
                shed += s.shed_to_local as u32;
            }
            shed
        };
        let a = run();
        assert_eq!(a, run(), "shed decisions must be deterministic");
        assert!(
            (60..=180).contains(&a),
            "≈30% of 400 offloads should shed, got {a}"
        );
    }

    #[test]
    fn switching_is_counted_on_change() {
        let c = cohort(Metric::Energy);
        // A trace that jumps between a rate favouring All-Edge and one
        // favouring offload must produce a switch.
        let samples = vec![Mbps::new(0.2), Mbps::new(40.0), Mbps::new(0.2)];
        let trace = ThroughputTrace::new(samples, Millis::new(60_000.0)).unwrap();
        let mut d = Device::new(0, false, trace, 1.0, 1, 0);
        let mut switches = 0;
        for i in 0..3u64 {
            let s = d.serve(
                &c,
                ServeContext {
                    policy: &FleetPolicy::Dynamic,
                    metric: Metric::Energy,
                    failover: FailoverPolicy::ToDevice,
                    fidelity: CloudSimFidelity::Fluid,
                    dispatch: DispatchPolicy::LeastWorkLeft,
                    curve: None,
                    tail_deadline_ms: None,
                    pipeline: None,
                },
                &calm(1),
                i * 60_000_000,
                60_000_000,
            );
            switches += s.switched as u32;
        }
        assert_eq!(switches, 2);
    }

    #[test]
    fn poisson_draws_are_positive_and_deterministic() {
        let mut a = Device::new(0, false, flat_trace(8.0, 4), 1.0, 9, 0);
        let mut b = Device::new(0, false, flat_trace(8.0, 4), 1.0, 9, 0);
        for _ in 0..100 {
            let da = a.draw_interarrival_us(1000.0);
            assert_eq!(da, b.draw_interarrival_us(1000.0));
            assert!(da >= 1);
        }
    }

    #[test]
    fn serve_outcomes_map_to_the_expected_trace_events() {
        let base = Served {
            latency_ms: 10.0,
            energy_mj: 5.0,
            offloaded: false,
            switched: false,
            shed_to_local: false,
            failover_region: None,
            retreated: false,
        };
        let events_for = |served: &Served| {
            let mut out = Vec::new();
            trace_serve_events(served, 7, 0, true, 1_000, &mut out);
            out
        };
        // Plain local serve: silent.
        assert!(events_for(&base).is_empty());
        // Shed to local: one shed event at the origin region.
        let shed = Served {
            shed_to_local: true,
            ..base
        };
        assert_eq!(
            events_for(&shed),
            [TraceEvent::Shed {
                time_us: 1_000,
                device_id: 7,
                region: 0,
            }]
        );
        // Plain offload: one dispatch at the origin.
        let offloaded = Served {
            offloaded: true,
            ..base
        };
        assert_eq!(
            events_for(&offloaded),
            [TraceEvent::Dispatch {
                time_us: 1_000,
                device_id: 7,
                region: 0,
                high_priority: true,
                failed_over: false,
            }]
        );
        // Failover: failover then dispatch at the sibling, same key.
        let failed_over = Served {
            offloaded: true,
            failover_region: Some(2),
            ..base
        };
        assert_eq!(
            events_for(&failed_over),
            [
                TraceEvent::Failover {
                    time_us: 1_000,
                    device_id: 7,
                    from_region: 0,
                    to_region: 2,
                },
                TraceEvent::Dispatch {
                    time_us: 1_000,
                    device_id: 7,
                    region: 2,
                    high_priority: true,
                    failed_over: true,
                }
            ]
        );
        // Tail retreat: one retreat event at the origin, nothing else.
        let retreated = Served {
            retreated: true,
            ..base
        };
        assert_eq!(
            events_for(&retreated),
            [TraceEvent::Retreat {
                time_us: 1_000,
                device_id: 7,
                region: 0,
            }]
        );
    }

    fn all_cloud(metric: Metric) -> (Cohort, FleetPolicy) {
        let mut c = cohort(metric);
        c.fixed_index = Some(c.resolve_fixed(&DeploymentKind::AllCloud).unwrap());
        (c, FleetPolicy::Fixed(DeploymentKind::AllCloud))
    }

    fn ctx_with<'a>(
        policy: &'a FleetPolicy,
        curve: Option<&'a WorkloadCurve>,
        tail_deadline_ms: Option<f64>,
    ) -> ServeContext<'a> {
        ServeContext {
            policy,
            metric: Metric::Latency,
            failover: FailoverPolicy::ToDevice,
            fidelity: CloudSimFidelity::Fluid,
            dispatch: DispatchPolicy::LeastWorkLeft,
            curve,
            tail_deadline_ms,
            pipeline: None,
        }
    }

    #[test]
    fn tail_retreat_pins_each_p99_branch() {
        let (c, policy) = all_cloud(Metric::Latency);
        let serve_one = |p99_ms: Option<f64>, deadline: Option<f64>, seed: u64| {
            let signals = vec![RegionSignal {
                p99_ms,
                ..RegionSignal::default()
            }];
            let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, seed, 0);
            d.serve(
                &c,
                ctx_with(&policy, None, deadline),
                &signals,
                0,
                60_000_000,
            )
        };
        // No published tail (fluid mode, or an idle microsim epoch): the
        // deadline policy must treat `None` as no signal, never as zero.
        let s = serve_one(None, Some(50.0), 1);
        assert!(s.offloaded && !s.retreated, "None p99 must not retreat");
        // A published tail under budget: no retreat either.
        let s = serve_one(Some(40.0), Some(50.0), 1);
        assert!(
            s.offloaded && !s.retreated,
            "under-budget p99 must not retreat"
        );
        // No deadline configured: even a blown tail changes nothing.
        let s = serve_one(Some(5_000.0), None, 1);
        assert!(s.offloaded && !s.retreated, "no deadline means no retreat");
        // Over budget: most devices retreat, a deterministic hash-spread
        // fraction still probes the tier so recovery is observable.
        let run = || {
            let (mut retreats, mut probes) = (0u32, 0u32);
            for dev in 0..400u64 {
                let s = serve_one(Some(5_000.0), Some(50.0), dev);
                retreats += s.retreated as u32;
                probes += s.offloaded as u32;
                assert!(!s.shed_to_local, "retreat is not a shed");
            }
            (retreats, probes)
        };
        let (retreats, probes) = run();
        assert_eq!(
            (retreats, probes),
            run(),
            "retreat draws must be deterministic"
        );
        assert_eq!(retreats + probes, 400, "every offload retreats or probes");
        assert!(
            (1..=80).contains(&probes),
            "≈1/16 of 400 should re-probe, got {probes}"
        );
    }

    #[test]
    fn fluid_pipeline_charges_per_stage_waits_and_origin_transfers() {
        let (c, policy) = all_cloud(Metric::Latency);
        let transfer_total_ms = [12.5f64];
        let serve_one = |pipeline: Option<(u32, &[f64])>, signals: &[RegionSignal]| {
            let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, 1, 0);
            d.serve(
                &c,
                ServeContext {
                    policy: &policy,
                    metric: Metric::Latency,
                    failover: FailoverPolicy::ToDevice,
                    fidelity: CloudSimFidelity::Fluid,
                    dispatch: DispatchPolicy::LeastWorkLeft,
                    curve: None,
                    tail_deadline_ms: None,
                    pipeline,
                },
                signals,
                0,
                60_000_000,
            )
        };
        // Idle tier: the staged offload only pays its transfers.
        let mono = serve_one(None, &calm(1));
        let staged = serve_one(Some((3, &transfer_total_ms)), &calm(1));
        assert!(staged.offloaded && mono.offloaded);
        assert!((staged.latency_ms - mono.latency_ms - 12.5).abs() < 1e-9);
        // A 100 ms published wait is charged once per stage (3×), plus
        // the transfers; the monolithic path pays it once.
        let mono_q = serve_one(None, &waiting(100.0));
        let staged_q = serve_one(Some((3, &transfer_total_ms)), &waiting(100.0));
        assert!((mono_q.latency_ms - mono.latency_ms - 100.0).abs() < 1e-9);
        assert!((staged_q.latency_ms - staged.latency_ms - 300.0).abs() < 1e-9);
        // Depth 1 with zero transfers is bit-identical to monolithic.
        let degenerate = serve_one(Some((1, &[0.0])), &waiting(100.0));
        assert_eq!(degenerate, mono_q);
    }

    #[test]
    fn workload_curve_suppression_is_deterministic_and_proportional() {
        let (c, policy) = all_cloud(Metric::Latency);
        // A single-phase curve at 30% intent: ≈30% of devices offload, the
        // rest run local — silently (neither shed nor retreated).
        let curve = WorkloadCurve::from_phases_fp(vec![(0, 300_000)]);
        let run = |curve: &WorkloadCurve| {
            let mut offloads = 0u32;
            for dev in 0..400u64 {
                let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, dev, 0);
                let s = d.serve(
                    &c,
                    ctx_with(&policy, Some(curve), None),
                    &calm(1),
                    0,
                    60_000_000,
                );
                assert!(!s.shed_to_local && !s.retreated);
                offloads += s.offloaded as u32;
            }
            offloads
        };
        let a = run(&curve);
        assert_eq!(a, run(&curve), "curve draws must be deterministic");
        assert!(
            (60..=180).contains(&a),
            "≈30% of 400 should keep offloading, got {a}"
        );
        // Full intent never suppresses: the draw is skipped entirely.
        let full = WorkloadCurve::from_phases_fp(vec![(0, CURVE_FP_SCALE)]);
        assert_eq!(run(&full), 400);
        // Zero intent suppresses everything.
        let none = WorkloadCurve::from_phases_fp(vec![(0, 0)]);
        assert_eq!(run(&none), 0);
    }
}
