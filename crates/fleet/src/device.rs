//! Per-device sessions and the cohorts that share design-time artifacts.
//!
//! Every device composes a synthesized per-device [`ThroughputTrace`], an
//! online [`ThroughputTracker`], and a deployment policy over its cohort's
//! shared [`DominanceMap`]. A [`Cohort`] is one (region, technology) cell
//! of the scenario mix: all its devices see the same deployment options and
//! dominance structure (those depend only on the network, hardware, and
//! radio technology), while each device wanders through its own throughput
//! trajectory.

use crate::scenario::FleetPolicy;
use crate::FleetError;
use lens_runtime::{DeploymentOption, DeploymentPlanner, DominanceMap, Metric, ThroughputTracker};
use lens_wireless::{Region, ThroughputTrace, WirelessTechnology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One (region, technology) cell of the fleet mix, holding the design-time
/// artifacts every member device shares.
#[derive(Debug, Clone, PartialEq)]
pub struct Cohort {
    /// Index into the scenario's region list.
    pub region_index: usize,
    /// The region profile devices synthesize traces around.
    pub region: Region,
    /// The radio technology (fixes the power model and RTT).
    pub technology: WirelessTechnology,
    /// The enumerated deployment options.
    pub options: Vec<DeploymentOption>,
    /// Dominance map over `options` for the scenario metric.
    pub map: DominanceMap,
    /// Resolved option index for [`FleetPolicy::Fixed`], if that policy is
    /// active.
    pub fixed_index: Option<usize>,
}

impl Cohort {
    /// Resolves a fixed deployment kind to its option index.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidScenario`] when no option of this kind
    /// exists in the cohort.
    pub fn resolve_fixed(&self, kind: &lens_runtime::DeploymentKind) -> Result<usize, FleetError> {
        self.options
            .iter()
            .position(|o| o.kind() == kind)
            .ok_or_else(|| {
                FleetError::InvalidScenario(format!(
                    "cohort {}/{} has no {kind} option",
                    self.region.name(),
                    self.technology
                ))
            })
    }
}

/// What one served inference cost, for aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Served {
    pub latency_ms: f64,
    pub energy_mj: f64,
    pub offloaded: bool,
    pub switched: bool,
}

/// One device session: trace + tracker + policy state.
#[derive(Debug, Clone)]
pub struct Device {
    pub(crate) cohort: u32,
    pub(crate) high_priority: bool,
    pub(crate) trace: ThroughputTrace,
    pub(crate) tracker: ThroughputTracker,
    pub(crate) current_option: Option<u32>,
    pub(crate) next_event_us: u64,
    pub(crate) rng: StdRng,
}

impl Device {
    pub(crate) fn new(
        cohort: u32,
        high_priority: bool,
        trace: ThroughputTrace,
        tracker_alpha: f64,
        seed: u64,
        first_event_us: u64,
    ) -> Self {
        Device {
            cohort,
            high_priority,
            trace,
            tracker: ThroughputTracker::new(tracker_alpha),
            current_option: None,
            next_event_us: first_event_us,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The cohort this device belongs to.
    pub fn cohort_index(&self) -> usize {
        self.cohort as usize
    }

    /// Whether this device is in the cloud queue's high-priority class.
    pub fn high_priority(&self) -> bool {
        self.high_priority
    }

    /// The device's synthesized throughput trajectory.
    pub fn trace(&self) -> &ThroughputTrace {
        &self.trace
    }

    /// Draws the next exponential inter-arrival time (µs) for Poisson
    /// arrivals from the device's own seeded stream.
    pub(crate) fn draw_interarrival_us(&mut self, mean_us: f64) -> u64 {
        // Inverse-CDF sampling; u is in [0, 1), so 1-u is in (0, 1].
        let u: f64 = self.rng.gen();
        let dt = -mean_us * (1.0 - u).ln();
        // Never schedule two events at the same microsecond.
        (dt as u64).max(1)
    }

    /// Serves one inference at `time_us`: observe the current trace sample,
    /// select an option per `policy`, and price the inference at the
    /// *actual* throughput (the tracker only steers the choice, as in the
    /// Fig 5 loop). `queue_wait_ms` is the region's published cloud wait
    /// for this epoch (for this device's priority class); it is charged to
    /// the realized latency of offloaded options, and congestion-aware
    /// policies also weigh it during selection on the latency metric.
    pub(crate) fn serve(
        &mut self,
        cohort: &Cohort,
        policy: &FleetPolicy,
        metric: Metric,
        queue_wait_ms: f64,
        time_us: u64,
        interval_us: u64,
    ) -> Served {
        let idx = ((time_us / interval_us) as usize).min(self.trace.len() - 1);
        let tu = self.trace.samples()[idx];
        self.tracker.observe(tu);
        let estimate = self.tracker.estimate().expect("just observed");

        let choice = match policy {
            FleetPolicy::Fixed(_) => cohort.fixed_index.expect("resolved at engine build"),
            FleetPolicy::Dynamic => cohort.map.best_at(estimate),
            FleetPolicy::DynamicCongestionAware => {
                if metric == Metric::Latency && queue_wait_ms > 0.0 {
                    DeploymentPlanner::best_at_with_cloud_penalty(
                        &cohort.options,
                        metric,
                        estimate,
                        queue_wait_ms,
                    )
                    .expect("cohort has options")
                    .0
                } else {
                    // Queue waits cost the edge no energy, so the penalty
                    // only shifts latency-mode selection.
                    cohort.map.best_at(estimate)
                }
            }
        };
        let switched = self
            .current_option
            .is_some_and(|prev| prev != choice as u32);
        self.current_option = Some(choice as u32);

        let option = &cohort.options[choice];
        let offloaded = option.uses_cloud();
        let mut latency_ms = option.latency_at(tu).get();
        if offloaded {
            latency_ms += queue_wait_ms;
        }
        Served {
            latency_ms,
            energy_mj: option.energy_at(tu).get(),
            offloaded,
            switched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lens_device::{profile_network, DeviceProfile};
    use lens_nn::units::{Mbps, Millis};
    use lens_nn::zoo;
    use lens_runtime::DeploymentKind;
    use lens_wireless::WirelessLink;

    fn cohort(metric: Metric) -> Cohort {
        let analysis = zoo::alexnet().analyze().unwrap();
        let perf = profile_network(&analysis, &DeviceProfile::jetson_tx2_cpu());
        let planner =
            DeploymentPlanner::new(WirelessLink::new(WirelessTechnology::Lte, Mbps::new(8.0)));
        let options = planner.enumerate(&analysis, &perf).unwrap();
        let map = DominanceMap::build(&options, metric).unwrap();
        Cohort {
            region_index: 0,
            region: Region::new("USA", Mbps::new(7.5)),
            technology: WirelessTechnology::Lte,
            options,
            map,
            fixed_index: None,
        }
    }

    fn flat_trace(mbps: f64, n: usize) -> ThroughputTrace {
        ThroughputTrace::new(vec![Mbps::new(mbps); n], Millis::new(60_000.0)).unwrap()
    }

    #[test]
    fn resolve_fixed_finds_kinds() {
        let c = cohort(Metric::Energy);
        assert!(c.resolve_fixed(&DeploymentKind::AllEdge).is_ok());
        assert!(c.resolve_fixed(&DeploymentKind::AllCloud).is_ok());
        let missing = DeploymentKind::Split {
            layer_index: 999,
            layer_name: "nope".into(),
        };
        assert!(matches!(
            c.resolve_fixed(&missing),
            Err(FleetError::InvalidScenario(_))
        ));
    }

    #[test]
    fn dynamic_serve_matches_dominance_map() {
        let c = cohort(Metric::Energy);
        let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, 1, 0);
        let served = d.serve(
            &c,
            &FleetPolicy::Dynamic,
            Metric::Energy,
            0.0,
            0,
            60_000_000,
        );
        let expected = c.map.best_at(Mbps::new(8.0));
        assert_eq!(d.current_option, Some(expected as u32));
        let opt = &c.options[expected];
        assert!((served.energy_mj - opt.energy_at(Mbps::new(8.0)).get()).abs() < 1e-12);
        assert_eq!(served.offloaded, opt.uses_cloud());
        assert!(!served.switched, "first inference cannot switch");
    }

    #[test]
    fn queue_wait_charged_to_offloaded_latency_only() {
        let c = cohort(Metric::Latency);
        let mut fixed_cloud = c.clone();
        fixed_cloud.fixed_index = Some(
            fixed_cloud
                .resolve_fixed(&DeploymentKind::AllCloud)
                .unwrap(),
        );
        let mut fixed_edge = c.clone();
        fixed_edge.fixed_index = Some(fixed_edge.resolve_fixed(&DeploymentKind::AllEdge).unwrap());

        let policy = FleetPolicy::Fixed(DeploymentKind::AllCloud); // kind irrelevant post-resolve
        let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, 1, 0);
        let base = d.serve(&fixed_cloud, &policy, Metric::Latency, 0.0, 0, 60_000_000);
        let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, 1, 0);
        let queued = d.serve(&fixed_cloud, &policy, Metric::Latency, 500.0, 0, 60_000_000);
        assert!((queued.latency_ms - base.latency_ms - 500.0).abs() < 1e-9);
        assert!((queued.energy_mj - base.energy_mj).abs() < 1e-12);

        let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, 1, 0);
        let edge = d.serve(&fixed_edge, &policy, Metric::Latency, 500.0, 0, 60_000_000);
        let mut d = Device::new(0, false, flat_trace(8.0, 4), 1.0, 1, 0);
        let edge_q = d.serve(&fixed_edge, &policy, Metric::Latency, 0.0, 0, 60_000_000);
        assert!((edge.latency_ms - edge_q.latency_ms).abs() < 1e-12);
    }

    #[test]
    fn congestion_aware_routes_around_saturated_cloud() {
        let c = cohort(Metric::Latency);
        // At a high rate the base latency argmin offloads…
        let mut d = Device::new(0, false, flat_trace(50.0, 4), 1.0, 1, 0);
        let served = d.serve(
            &c,
            &FleetPolicy::DynamicCongestionAware,
            Metric::Latency,
            0.0,
            0,
            60_000_000,
        );
        assert!(served.offloaded, "uncongested fast link should offload");
        // …but an hour-long queue forces All-Edge.
        let mut d = Device::new(0, false, flat_trace(50.0, 4), 1.0, 1, 0);
        let served = d.serve(
            &c,
            &FleetPolicy::DynamicCongestionAware,
            Metric::Latency,
            3.6e6,
            0,
            60_000_000,
        );
        assert!(
            !served.offloaded,
            "congestion-aware policy must dodge the queue"
        );
    }

    #[test]
    fn switching_is_counted_on_change() {
        let c = cohort(Metric::Energy);
        // A trace that jumps between a rate favouring All-Edge and one
        // favouring offload must produce a switch.
        let samples = vec![Mbps::new(0.2), Mbps::new(40.0), Mbps::new(0.2)];
        let trace = ThroughputTrace::new(samples, Millis::new(60_000.0)).unwrap();
        let mut d = Device::new(0, false, trace, 1.0, 1, 0);
        let mut switches = 0;
        for i in 0..3u64 {
            let s = d.serve(
                &c,
                &FleetPolicy::Dynamic,
                Metric::Energy,
                0.0,
                i * 60_000_000,
                60_000_000,
            );
            switches += s.switched as u32;
        }
        assert_eq!(switches, 2);
    }

    #[test]
    fn poisson_draws_are_positive_and_deterministic() {
        let mut a = Device::new(0, false, flat_trace(8.0, 4), 1.0, 9, 0);
        let mut b = Device::new(0, false, flat_trace(8.0, 4), 1.0, 9, 0);
        for _ in 0..100 {
            let da = a.draw_interarrival_us(1000.0);
            assert_eq!(da, b.draw_interarrival_us(1000.0));
            assert!(da >= 1);
        }
    }
}
