//! The shared cloud tier: a per-region *serving tier* of heterogeneous
//! batched backends behind an admission controller.
//!
//! The paper idealizes the cloud as infinitely fast (`L_cloud = 0`); at
//! fleet scale that assumption breaks first. PR 2 modeled each region as a
//! single fluid FIFO/priority queue; this module grows that into a serving
//! tier:
//!
//! * [`BackendConfig`] — one pool of identical executors (e.g. a GPU pool
//!   vs. a CPU pool) with an affine batch cost
//!   `T(b) = base_service_ms + per_item_ms · b`, so the per-item cost
//!   `T(b)/b` falls as batches grow — exactly the amortization LCP
//!   (Hadidi et al. 2020) exploits for communication.
//! * [`BatchPolicy`] — a dynamic batcher per backend: batches close at
//!   `max_batch` items or when `linger_ms` expires, whichever comes first.
//! * [`AdmissionPolicy`] — queue-depth or deadline-based shedding. The
//!   controller publishes a *shed fraction* at each epoch barrier; devices
//!   apply it (deterministically, from their own seeded streams) to the
//!   offloads of the **next** epoch, preserving the one-epoch contention
//!   lag that keeps epochs embarrassingly parallel.
//! * [`FailoverPolicy`] — what a shed request does: fail over to the
//!   least-loaded sibling region (paying an inter-region penalty), or fall
//!   back to on-device execution, charged at the device's local-only
//!   deployment option.
//!
//! All queue state advances deterministically at epoch barriers in fluid
//! form: arrivals are admitted as job counts, dispatched across backends by
//! least-work-left water-filling, and each backend drains at the rate its
//! current batch size implies. [`CloudCapacity`] — the PR 2 configuration
//! surface — is kept as the degenerate single-backend, unbatched case and
//! converts losslessly via [`CloudServing::from`].

use crate::report::Histogram;
use std::fmt;

/// Queueing discipline for a region's cloud slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueDiscipline {
    /// Single class: every offloaded inference waits behind the full
    /// backlog.
    Fifo,
    /// Two classes: the given fraction of devices (chosen per-device,
    /// seeded) is high-priority and waits only behind other high-priority
    /// work; everyone else waits behind everything.
    Priority {
        /// Fraction of devices in the high-priority class, in `[0, 1]`.
        high_fraction: f64,
    },
}

/// Capacity description for the PR 2 single-queue cloud, applied per
/// region. Retained as the simple configuration surface: it converts into
/// a one-backend, unbatched [`CloudServing`] with identical drain
/// behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudCapacity {
    /// Concurrent inference slots per region.
    pub slots_per_region: usize,
    /// Cloud-side service time per offloaded inference (ms).
    pub service_ms: f64,
    /// Queue discipline.
    pub discipline: QueueDiscipline,
}

impl CloudCapacity {
    /// FIFO capacity with the given slots and per-inference service time.
    ///
    /// # Panics
    ///
    /// Panics if `slots_per_region` is zero or `service_ms` is not
    /// positive/finite.
    pub fn new(slots_per_region: usize, service_ms: f64) -> Self {
        assert!(slots_per_region > 0, "cloud needs at least one slot");
        assert!(
            service_ms.is_finite() && service_ms > 0.0,
            "service_ms must be positive and finite"
        );
        CloudCapacity {
            slots_per_region,
            service_ms,
            discipline: QueueDiscipline::Fifo,
        }
    }

    /// Switches to the two-class priority discipline.
    ///
    /// # Panics
    ///
    /// Panics if `high_fraction` is outside `[0, 1]`.
    pub fn with_priority(mut self, high_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&high_fraction),
            "high_fraction must be in [0, 1]"
        );
        self.discipline = QueueDiscipline::Priority { high_fraction };
        self
    }

    /// Jobs one region can complete per millisecond.
    pub fn drain_rate_per_ms(&self) -> f64 {
        self.slots_per_region as f64 / self.service_ms
    }
}

/// When a backend's dynamic batcher closes a batch: at `max_batch` items,
/// or when the oldest queued item has lingered `linger_ms`, whichever
/// comes first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Largest batch a single executor runs (≥ 1).
    pub max_batch: usize,
    /// Longest a request may wait for its batch to fill (ms, ≥ 0).
    pub linger_ms: f64,
}

impl BatchPolicy {
    /// No batching: every request is its own batch.
    pub fn none() -> Self {
        BatchPolicy {
            max_batch: 1,
            linger_ms: 0.0,
        }
    }

    /// A batcher closing at `max_batch` items or after `linger_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero or `linger_ms` is negative or
    /// non-finite.
    pub fn new(max_batch: usize, linger_ms: f64) -> Self {
        assert!(max_batch > 0, "max_batch must be at least 1");
        assert!(
            linger_ms.is_finite() && linger_ms >= 0.0,
            "linger_ms must be non-negative and finite"
        );
        BatchPolicy {
            max_batch,
            linger_ms,
        }
    }
}

/// One pool of identical executors inside a region's serving tier, with an
/// affine batch cost: a batch of `b` items occupies one executor for
/// `base_service_ms + per_item_ms · b` milliseconds, so the per-item cost
/// is sub-linear in `b` and large batches amortize the fixed part.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendConfig {
    /// Display name (`"gpu"`, `"cpu"`, …), unique within the region.
    pub name: String,
    /// Concurrent batch executors in this pool.
    pub slots: usize,
    /// Fixed cost per batch (ms) — the part batching amortizes.
    pub base_service_ms: f64,
    /// Marginal cost per batched item (ms).
    pub per_item_ms: f64,
    /// The dynamic batcher in front of this pool.
    pub batching: BatchPolicy,
}

impl BackendConfig {
    /// An unbatched backend: `slots` executors at
    /// `base_service_ms + per_item_ms` per single-item request.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero, either cost is negative or non-finite,
    /// or the single-item service time `base_service_ms + per_item_ms` is
    /// not positive.
    pub fn new(name: &str, slots: usize, base_service_ms: f64, per_item_ms: f64) -> Self {
        assert!(slots > 0, "backend needs at least one slot");
        assert!(
            base_service_ms.is_finite() && base_service_ms >= 0.0,
            "base_service_ms must be non-negative and finite"
        );
        assert!(
            per_item_ms.is_finite() && per_item_ms >= 0.0,
            "per_item_ms must be non-negative and finite"
        );
        assert!(
            base_service_ms + per_item_ms > 0.0,
            "single-item service time must be positive"
        );
        BackendConfig {
            name: name.to_string(),
            slots,
            base_service_ms,
            per_item_ms,
            batching: BatchPolicy::none(),
        }
    }

    /// Puts a dynamic batcher in front of the pool.
    pub fn with_batching(mut self, max_batch: usize, linger_ms: f64) -> Self {
        self.batching = BatchPolicy::new(max_batch, linger_ms);
        self
    }

    /// Service time of one batch of (fluid) size `b` on one executor (ms).
    pub fn batch_service_ms(&self, b: f64) -> f64 {
        self.base_service_ms + self.per_item_ms * b
    }

    /// Jobs per millisecond this pool completes when every batch closes
    /// full — the backend's peak throughput, used as its dispatch weight.
    pub fn full_batch_rate_per_ms(&self) -> f64 {
        let b = self.batching.max_batch as f64;
        self.slots as f64 * b / self.batch_service_ms(b)
    }
}

/// Load shedding at a region's front door. The controller looks at the
/// queue state at each epoch barrier and publishes the fraction of the
/// *next* epoch's offloads to shed, sized so that admitted work drains at
/// the configured bound in steady state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// Admit everything (the PR 2 behavior).
    Open,
    /// Shed when the region's total backlog exceeds `max_jobs`.
    QueueDepth {
        /// Backlog bound (jobs) above which arrivals are shed.
        max_jobs: f64,
    },
    /// Shed when the low-priority-class wait exceeds `max_wait_ms`.
    Deadline {
        /// Wait bound (ms) above which arrivals are shed.
        max_wait_ms: f64,
    },
}

impl AdmissionPolicy {
    /// The fraction of next-epoch offloads to shed, given the post-drain
    /// queue state: `0` while within bounds, approaching `1` as the
    /// overload grows (`1 − bound/observed`, the fluid fraction that
    /// brings admitted load back to the bound in steady state).
    pub fn shed_fraction(&self, depth_jobs: f64, wait_low_ms: f64) -> f64 {
        let overload = |observed: f64, bound: f64| {
            if observed <= bound || observed <= 0.0 {
                0.0
            } else {
                (1.0 - bound / observed).clamp(0.0, 1.0)
            }
        };
        match *self {
            AdmissionPolicy::Open => 0.0,
            AdmissionPolicy::QueueDepth { max_jobs } => overload(depth_jobs, max_jobs),
            AdmissionPolicy::Deadline { max_wait_ms } => overload(wait_low_ms, max_wait_ms),
        }
    }
}

/// Where a shed request goes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailoverPolicy {
    /// Straight back to the device: the request runs the device's
    /// local-only deployment option (charged at that option's latency and
    /// energy — see `DeploymentPlanner::local_fallback`).
    ToDevice,
    /// Try the sibling region with the smallest published wait first,
    /// paying `penalty_ms` of inter-region latency; if that region is
    /// shedding too (per its own published fraction), fall back to the
    /// device.
    SiblingRegion {
        /// Extra round-trip latency charged to failed-over requests (ms).
        penalty_ms: f64,
    },
}

/// A region's full serving-tier description: heterogeneous backends, the
/// queue discipline, admission control, and failover. Every region in a
/// scenario hosts one instance of this template.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudServing {
    /// The backend pools (at least one).
    pub backends: Vec<BackendConfig>,
    /// Queue discipline, shared by all backends in the region.
    pub discipline: QueueDiscipline,
    /// Load shedding at the region's front door.
    pub admission: AdmissionPolicy,
    /// Where shed requests go.
    pub failover: FailoverPolicy,
}

impl CloudServing {
    /// A serving tier with the given backends, FIFO discipline, open
    /// admission, and to-device failover.
    pub fn new(backends: Vec<BackendConfig>) -> Self {
        CloudServing {
            backends,
            discipline: QueueDiscipline::Fifo,
            admission: AdmissionPolicy::Open,
            failover: FailoverPolicy::ToDevice,
        }
    }

    /// Switches to the two-class priority discipline.
    ///
    /// # Panics
    ///
    /// Panics if `high_fraction` is outside `[0, 1]`.
    pub fn with_priority(mut self, high_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&high_fraction),
            "high_fraction must be in [0, 1]"
        );
        self.discipline = QueueDiscipline::Priority { high_fraction };
        self
    }

    /// Sets the admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Sets the failover policy.
    pub fn with_failover(mut self, failover: FailoverPolicy) -> Self {
        self.failover = failover;
        self
    }

    /// Validates the cross-field constraints a scenario build enforces.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the tier has no backends,
    /// duplicate backend names, or a non-positive admission bound or
    /// failover penalty.
    pub fn validate(&self) -> Result<(), String> {
        if self.backends.is_empty() {
            return Err("serving tier needs at least one backend".to_string());
        }
        for (i, b) in self.backends.iter().enumerate() {
            if self.backends[..i].iter().any(|o| o.name == b.name) {
                return Err(format!(
                    "duplicate backend name {:?} in serving tier",
                    b.name
                ));
            }
        }
        match self.admission {
            AdmissionPolicy::QueueDepth { max_jobs }
                if !(max_jobs.is_finite() && max_jobs > 0.0) =>
            {
                return Err("admission max_jobs must be positive and finite".to_string());
            }
            AdmissionPolicy::Deadline { max_wait_ms }
                if !(max_wait_ms.is_finite() && max_wait_ms > 0.0) =>
            {
                return Err("admission max_wait_ms must be positive and finite".to_string());
            }
            _ => {}
        }
        if let FailoverPolicy::SiblingRegion { penalty_ms } = self.failover {
            if !(penalty_ms.is_finite() && penalty_ms >= 0.0) {
                return Err("failover penalty_ms must be non-negative and finite".to_string());
            }
        }
        Ok(())
    }
}

impl From<CloudCapacity> for CloudServing {
    /// The PR 2 single-queue cloud as a degenerate serving tier: one
    /// unbatched backend whose drain rate is exactly
    /// `slots_per_region / service_ms`.
    fn from(capacity: CloudCapacity) -> Self {
        CloudServing {
            backends: vec![BackendConfig::new(
                "default",
                capacity.slots_per_region,
                capacity.service_ms,
                0.0,
            )],
            discipline: capacity.discipline,
            admission: AdmissionPolicy::Open,
            failover: FailoverPolicy::ToDevice,
        }
    }
}

/// The barrier-published state shards read for a whole epoch (one-epoch
/// contention lag): per-class waits and the admission controller's shed
/// fraction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegionSignal {
    /// Wait (ms) a high-priority arrival experiences.
    pub wait_high_ms: f64,
    /// Wait (ms) a low-priority (FIFO-class) arrival experiences.
    pub wait_low_ms: f64,
    /// Fraction of next-epoch offloads the admission controller sheds.
    pub shed_fraction: f64,
}

impl RegionSignal {
    /// The wait for a device's priority class.
    pub fn wait_ms(&self, high_priority: bool) -> f64 {
        if high_priority {
            self.wait_high_ms
        } else {
            self.wait_low_ms
        }
    }
}

/// Per-backend fluid queue state.
#[derive(Debug, Clone, PartialEq)]
struct BackendQueue {
    backlog_high: f64,
    backlog_low: f64,
    /// Jobs dispatched to this backend in the current epoch (for the
    /// linger fill-rate estimate).
    epoch_arrivals: f64,
    /// Drain rate (jobs/ms) realized in the last [`RegionServing::drain`],
    /// used to publish waits. Starts at the unbatched rate.
    rate_per_ms: f64,
    /// Expected extra wait from the batcher lingering for items (ms),
    /// realized in the last drain.
    linger_wait_ms: f64,
    // Cumulative serving stats.
    served_jobs: f64,
    batches: f64,
    busy_ms: f64,
    batch_sizes: Histogram,
}

/// How many bins backend batch-size histograms carry (width 1.0 — batch
/// sizes above this land in the overflow bucket).
const BATCH_HIST_BINS: usize = 1_024;

/// Cumulative serving stats for one backend, as accumulated across a
/// run's epoch barriers ([`RegionServing::backend_stats`]); the engine
/// stamps these with the region name and horizon-normalized utilization
/// to form the report's `BackendReport`s.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendStats {
    /// Backend name from the serving tier.
    pub name: String,
    /// Executor slots in the pool.
    pub slots: usize,
    /// Jobs completed (fluid count).
    pub served_jobs: f64,
    /// Batches closed (fluid count).
    pub batches: f64,
    /// Per-slot busy time accumulated over the run (ms).
    pub busy_ms: f64,
    /// Distribution of closed batch sizes (width-1 bins).
    pub batch_sizes: Histogram,
}

/// One region's deterministic serving-tier state: per-backend fluid queues
/// fed by least-work-left dispatch, drained at batch-amortized rates, with
/// cumulative per-backend stats for the report.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionServing {
    serving: CloudServing,
    queues: Vec<BackendQueue>,
    /// EWMA-damped shed fraction: the raw `1 − bound/observed` target
    /// over-corrects under the one-epoch lag (a fully-shed epoch drains
    /// the queue, the wait crashes to zero, the next epoch floods —
    /// bang-bang oscillation); halving toward the target each barrier
    /// settles near the fluid fixed point instead.
    shed_fraction: f64,
}

impl RegionServing {
    /// An empty serving tier instantiated from the region template.
    ///
    /// # Panics
    ///
    /// Panics if `serving` fails [`CloudServing::validate`].
    pub fn new(serving: &CloudServing) -> Self {
        if let Err(why) = serving.validate() {
            panic!("invalid serving tier: {why}");
        }
        let queues = serving
            .backends
            .iter()
            .map(|b| BackendQueue {
                backlog_high: 0.0,
                backlog_low: 0.0,
                epoch_arrivals: 0.0,
                rate_per_ms: b.slots as f64 * 1.0 / b.batch_service_ms(1.0),
                linger_wait_ms: 0.0,
                served_jobs: 0.0,
                batches: 0.0,
                busy_ms: 0.0,
                batch_sizes: Histogram::new(1.0, BATCH_HIST_BINS),
            })
            .collect();
        RegionServing {
            serving: serving.clone(),
            queues,
            shed_fraction: 0.0,
        }
    }

    /// The serving-tier template this region runs.
    pub fn serving(&self) -> &CloudServing {
        &self.serving
    }

    /// Admits one epoch's offloaded inferences (split by priority class)
    /// and dispatches them across backends by least-work-left
    /// water-filling: arrivals fill backends so their expected completion
    /// times equalize, which is what an ideal least-loaded load balancer
    /// achieves in the fluid limit.
    pub fn admit(&mut self, high: u64, low: u64) {
        let total = (high + low) as f64;
        if total <= 0.0 {
            return;
        }
        let assignments = self.water_fill(total);
        let high_share = high as f64 / total;
        for (queue, a) in self.queues.iter_mut().zip(&assignments) {
            queue.backlog_high += a * high_share;
            queue.backlog_low += a * (1.0 - high_share);
            queue.epoch_arrivals += a;
        }
    }

    /// Splits `total` arriving jobs across backends so that the resulting
    /// completion times `(backlog_i + a_i) / capacity_i` equalize where
    /// possible (classic water-filling over per-backend peak rates).
    fn water_fill(&self, total: f64) -> Vec<f64> {
        let caps: Vec<f64> = self
            .serving
            .backends
            .iter()
            .map(|b| b.full_batch_rate_per_ms())
            .collect();
        if caps.len() == 1 {
            return vec![total];
        }
        let depths: Vec<f64> = self
            .queues
            .iter()
            .map(|q| q.backlog_high + q.backlog_low)
            .collect();
        // Sort backend indices by current completion time (depth/cap).
        let mut order: Vec<usize> = (0..caps.len()).collect();
        order.sort_by(|&a, &b| {
            (depths[a] / caps[a])
                .partial_cmp(&(depths[b] / caps[b]))
                .expect("finite completion times")
                .then(a.cmp(&b))
        });
        // Raise the water level: each step pulls the next backend's
        // completion time into the active set, until the arrivals are
        // absorbed. The last step's `next_level` is ∞, so the loop always
        // terminates with `remaining` fully absorbed.
        let mut remaining = total;
        let mut active_cap = 0.0;
        let mut level = depths[order[0]] / caps[order[0]];
        for (k, &i) in order.iter().enumerate() {
            active_cap += caps[i];
            let next_level = if k + 1 < order.len() {
                let j = order[k + 1];
                depths[j] / caps[j]
            } else {
                f64::INFINITY
            };
            let absorbable = (next_level - level) * active_cap;
            if absorbable >= remaining {
                level += remaining / active_cap;
                break;
            }
            remaining -= absorbable;
            level = next_level;
        }
        // Everyone at or below the water level gets topped up to it.
        let mut assignments: Vec<f64> = (0..caps.len())
            .map(|j| (caps[j] * level - depths[j]).max(0.0))
            .collect();
        // Conserve jobs exactly: hand the float residual (≈ 1 ulp of
        // rounding per step) to the least-loaded backend.
        let assigned: f64 = assignments.iter().sum();
        assignments[order[0]] += total - assigned;
        assignments
    }

    /// Drains every backend for `epoch_ms` of wall-clock. Each backend's
    /// batcher closes batches of the fluid size its backlog and arrival
    /// rate imply (`min(max_batch, max(1, depth/slots, rate·linger))`),
    /// serving high-priority work first, and records batch-close and
    /// utilization stats.
    pub fn drain(&mut self, epoch_ms: f64) {
        for (config, queue) in self.serving.backends.iter().zip(&mut self.queues) {
            let depth = queue.backlog_high + queue.backlog_low;
            let arrival_rate = queue.epoch_arrivals / epoch_ms;
            let max_batch = config.batching.max_batch as f64;
            let b = if config.batching.max_batch <= 1 {
                1.0
            } else {
                // Two fluid regimes: a backlog carried over from earlier
                // epochs closes batches straight off the queue, while in
                // the keeping-up regime batches grow to whatever the
                // arrival flow accumulates within the linger window.
                let carried = (depth - queue.epoch_arrivals).max(0.0);
                let backlog_fill = carried / config.slots as f64;
                let linger_fill = arrival_rate * config.batching.linger_ms;
                backlog_fill.max(linger_fill).clamp(1.0, max_batch)
            };
            let batch_ms = config.batch_service_ms(b);
            let rate = config.slots as f64 * b / batch_ms;
            let budget = rate * epoch_ms;
            let served_high = queue.backlog_high.min(budget);
            queue.backlog_high -= served_high;
            let served_low = queue.backlog_low.min(budget - served_high);
            queue.backlog_low -= served_low;
            let served = served_high + served_low;

            // The extra wait the batcher itself adds: batches fed from a
            // standing backlog close instantly, but batches filled from
            // the arrival flow make items wait on average half the fill
            // time (bounded by the linger window). Scale by the fraction
            // of the batch the flow must supply.
            queue.linger_wait_ms = if config.batching.max_batch <= 1 {
                0.0
            } else {
                let carried = (depth - queue.epoch_arrivals).max(0.0);
                let from_flow = (1.0 - carried / (b * config.slots as f64)).clamp(0.0, 1.0);
                let fill_ms = if arrival_rate > 0.0 {
                    (b / arrival_rate).min(config.batching.linger_ms)
                } else {
                    config.batching.linger_ms
                };
                from_flow * fill_ms / 2.0
            };

            let batches = if b > 0.0 { served / b } else { 0.0 };
            queue.rate_per_ms = rate;
            queue.served_jobs += served;
            queue.batches += batches;
            queue.busy_ms += batches * batch_ms / config.slots as f64;
            let closed = batches.round() as u64;
            if closed > 0 {
                queue.batch_sizes.record_n(b, closed);
            }
            queue.epoch_arrivals = 0.0;
        }
        let target = self
            .serving
            .admission
            .shed_fraction(self.depth(), self.wait_ms(false));
        self.shed_fraction = 0.5 * (self.shed_fraction + target);
        if self.shed_fraction < 1e-6 {
            // Snap the geometric tail to zero so open tiers publish exact 0.
            self.shed_fraction = 0.0;
        }
    }

    /// The wait (ms) a new arrival of the given class experiences: the
    /// least-loaded backend's backlog-ahead drain time, plus that
    /// backend's batcher linger.
    pub fn wait_ms(&self, high_priority: bool) -> f64 {
        self.queues
            .iter()
            .map(|q| {
                let ahead = if high_priority {
                    q.backlog_high
                } else {
                    q.backlog_high + q.backlog_low
                };
                ahead / q.rate_per_ms + q.linger_wait_ms
            })
            .fold(f64::INFINITY, f64::min)
            .max(0.0)
    }

    /// Total queued jobs across all backends.
    pub fn depth(&self) -> f64 {
        self.queues
            .iter()
            .map(|q| q.backlog_high + q.backlog_low)
            .sum()
    }

    /// The barrier signal shards read next epoch: per-class waits and the
    /// admission controller's damped shed fraction.
    pub fn signal(&self) -> RegionSignal {
        RegionSignal {
            wait_high_ms: self.wait_ms(true),
            wait_low_ms: self.wait_ms(false),
            shed_fraction: self.shed_fraction,
        }
    }

    /// Per-backend cumulative stats, in backend order.
    pub fn backend_stats(&self) -> Vec<BackendStats> {
        self.serving
            .backends
            .iter()
            .zip(&self.queues)
            .map(|(b, q)| BackendStats {
                name: b.name.clone(),
                slots: b.slots,
                served_jobs: q.served_jobs,
                batches: q.batches,
                busy_ms: q.busy_ms,
                batch_sizes: q.batch_sizes.clone(),
            })
            .collect()
    }
}

impl fmt::Display for RegionServing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "serving tier: {} backend(s), {:.1} jobs queued, wait {:.1} ms",
            self.queues.len(),
            self.depth(),
            self.wait_ms(false)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capacity() -> CloudCapacity {
        CloudCapacity::new(10, 10.0) // 1 job/ms drain rate
    }

    fn single_queue() -> RegionServing {
        RegionServing::new(&CloudServing::from(capacity()))
    }

    #[test]
    fn empty_tier_has_no_wait() {
        let q = single_queue();
        assert_eq!(q.wait_ms(false), 0.0);
        assert_eq!(q.depth(), 0.0);
    }

    #[test]
    fn overload_accumulates_backlog_and_wait() {
        let mut q = single_queue();
        // 1 job/ms drain; admit 2000 jobs per 1000 ms epoch -> +1000 backlog.
        q.admit(0, 2000);
        q.drain(1000.0);
        assert!((q.depth() - 1000.0).abs() < 1e-9);
        assert!((q.wait_ms(false) - 1000.0).abs() < 1e-9);
        // Underload drains it back down.
        q.admit(0, 0);
        q.drain(1000.0);
        assert_eq!(q.depth(), 0.0);
    }

    #[test]
    fn adequate_capacity_keeps_queue_empty() {
        let mut q = single_queue();
        for _ in 0..10 {
            q.admit(0, 500); // half the epoch's drain budget
            q.drain(1000.0);
            assert_eq!(q.depth(), 0.0);
        }
    }

    #[test]
    fn priority_class_waits_only_behind_high_backlog() {
        let mut q = single_queue();
        q.admit(300, 3000);
        // Before draining: high sees 300 jobs ahead, low sees all 3300.
        assert!((q.wait_ms(true) - 300.0).abs() < 1e-9);
        assert!((q.wait_ms(false) - 3300.0).abs() < 1e-9);
        // Draining serves the high class first.
        q.drain(300.0);
        assert!(q.wait_ms(true) < 1e-9);
        assert!((q.wait_ms(false) - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn drain_is_work_conserving_across_classes() {
        let mut q = single_queue();
        q.admit(100, 100);
        q.drain(150.0); // budget 150: 100 high + 50 low
        assert!(q.wait_ms(true) < 1e-9);
        assert!((q.depth() - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        CloudCapacity::new(0, 5.0);
    }

    #[test]
    #[should_panic(expected = "high_fraction")]
    fn bad_priority_fraction_rejected() {
        CloudCapacity::new(1, 5.0).with_priority(1.5);
    }

    #[test]
    fn capacity_converts_to_equivalent_backend() {
        let serving = CloudServing::from(capacity().with_priority(0.25));
        assert_eq!(serving.backends.len(), 1);
        let b = &serving.backends[0];
        assert_eq!(b.slots, 10);
        assert_eq!(b.batching.max_batch, 1);
        // Peak rate equals the old drain rate bit-for-bit.
        assert_eq!(b.full_batch_rate_per_ms(), capacity().drain_rate_per_ms());
        assert_eq!(
            serving.discipline,
            QueueDiscipline::Priority {
                high_fraction: 0.25
            }
        );
    }

    #[test]
    fn batching_amortizes_base_cost() {
        // base 32 ms + 1 ms/item, batch 32: per-item cost 2 ms vs 33 ms.
        let unbatched = BackendConfig::new("gpu", 1, 32.0, 1.0);
        let batched = unbatched.clone().with_batching(32, 100.0);
        assert!((unbatched.full_batch_rate_per_ms() - 1.0 / 33.0).abs() < 1e-12);
        assert!((batched.full_batch_rate_per_ms() - 32.0 / 64.0).abs() < 1e-12);

        // Under the same overload the batched tier drains ~16.5x faster:
        // two 10 s epochs clear all 10 000 jobs, while the unbatched
        // backend has served only ~600.
        let mut plain = RegionServing::new(&CloudServing::new(vec![unbatched]));
        let mut tier = RegionServing::new(&CloudServing::new(vec![batched]));
        plain.admit(0, 10_000);
        tier.admit(0, 10_000);
        for _ in 0..2 {
            plain.drain(10_000.0);
            tier.drain(10_000.0);
        }
        assert_eq!(tier.depth(), 0.0, "batched tier should have cleared");
        assert!(
            plain.depth() > 9_000.0,
            "unbatched backlog should persist, got {}",
            plain.depth()
        );
    }

    #[test]
    fn sparse_traffic_batches_by_linger_fill() {
        // 0.2 jobs/ms arriving, linger 40 ms => fluid batches of ~8, and
        // at batch 8 the backend keeps up (rate 8/18 ≈ 0.44 jobs/ms).
        let config = BackendConfig::new("gpu", 1, 10.0, 1.0).with_batching(64, 40.0);
        let mut tier = RegionServing::new(&CloudServing::new(vec![config]));
        tier.admit(0, 200);
        tier.drain(1000.0);
        assert_eq!(tier.depth(), 0.0, "batch 8 keeps up with 0.2 jobs/ms");
        let stats = tier.backend_stats().remove(0);
        assert_eq!(stats.served_jobs, 200.0);
        let mean_batch = stats.served_jobs / stats.batches;
        let hist = stats.batch_sizes;
        assert!(
            (7.0..=9.0).contains(&mean_batch),
            "linger fill should set batch ≈ 8, got {mean_batch}"
        );
        assert!(hist.count() > 0);
        // Sparse batches linger: the published wait includes the linger tax.
        assert!(tier.wait_ms(false) > 0.0);
    }

    #[test]
    fn water_fill_prefers_least_loaded_backend() {
        let fast = BackendConfig::new("fast", 4, 10.0, 0.0);
        let slow = BackendConfig::new("slow", 1, 10.0, 0.0);
        let mut tier = RegionServing::new(&CloudServing::new(vec![fast, slow]));
        // Equal completion times at start: arrivals split 4:1 by capacity.
        tier.admit(0, 1000);
        let depths: Vec<f64> = tier
            .queues
            .iter()
            .map(|q| q.backlog_high + q.backlog_low)
            .collect();
        assert!((depths[0] - 800.0).abs() < 1e-6, "fast got {}", depths[0]);
        assert!((depths[1] - 200.0).abs() < 1e-6, "slow got {}", depths[1]);
        // Completion times equalize.
        assert!((depths[0] / 0.4 - depths[1] / 0.1).abs() < 1e-6);
    }

    #[test]
    fn water_fill_tops_up_emptier_backend_first() {
        let a = BackendConfig::new("a", 1, 10.0, 0.0);
        let b = BackendConfig::new("b", 1, 10.0, 0.0);
        let mut tier = RegionServing::new(&CloudServing::new(vec![a, b]));
        tier.admit(0, 100);
        tier.drain(0.0); // no drain budget; just close the epoch
                         // Backend queues now hold 50/50. Push one backend ahead by hand.
        tier.queues[0].backlog_low += 30.0;
        // The next 30 jobs must all go to the emptier backend.
        tier.admit(0, 30);
        let d0 = tier.queues[0].backlog_high + tier.queues[0].backlog_low;
        let d1 = tier.queues[1].backlog_high + tier.queues[1].backlog_low;
        assert!((d0 - d1).abs() < 1e-9, "got {d0} vs {d1}");
    }

    #[test]
    fn admission_shed_fraction_tracks_overload() {
        let open = AdmissionPolicy::Open;
        assert_eq!(open.shed_fraction(1e9, 1e9), 0.0);
        let depth = AdmissionPolicy::QueueDepth { max_jobs: 100.0 };
        assert_eq!(depth.shed_fraction(50.0, 0.0), 0.0);
        assert!((depth.shed_fraction(200.0, 0.0) - 0.5).abs() < 1e-12);
        let deadline = AdmissionPolicy::Deadline {
            max_wait_ms: 1000.0,
        };
        assert_eq!(deadline.shed_fraction(0.0, 500.0), 0.0);
        assert!((deadline.shed_fraction(0.0, 4000.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn signal_reports_waits_and_shedding() {
        let config = BackendConfig::new("gpu", 10, 10.0, 0.0);
        let serving = CloudServing::new(vec![config])
            .with_admission(AdmissionPolicy::Deadline { max_wait_ms: 100.0 });
        let mut tier = RegionServing::new(&serving);
        tier.admit(50, 2000);
        tier.drain(1000.0);
        let signal = tier.signal();
        assert!(signal.wait_low_ms > 100.0);
        assert!(signal.shed_fraction > 0.0 && signal.shed_fraction < 1.0);
        assert!(signal.wait_high_ms <= signal.wait_low_ms);
        assert_eq!(signal.wait_ms(true), signal.wait_high_ms);
        assert_eq!(signal.wait_ms(false), signal.wait_low_ms);
    }

    #[test]
    fn validate_rejects_bad_tiers() {
        assert!(CloudServing::new(vec![]).validate().is_err());
        let dup = CloudServing::new(vec![
            BackendConfig::new("x", 1, 1.0, 0.0),
            BackendConfig::new("x", 1, 1.0, 0.0),
        ]);
        assert!(dup.validate().unwrap_err().contains("duplicate"));
        let bad_admission = CloudServing::new(vec![BackendConfig::new("x", 1, 1.0, 0.0)])
            .with_admission(AdmissionPolicy::QueueDepth { max_jobs: 0.0 });
        assert!(bad_admission.validate().is_err());
        let bad_failover = CloudServing::new(vec![BackendConfig::new("x", 1, 1.0, 0.0)])
            .with_failover(FailoverPolicy::SiblingRegion { penalty_ms: -1.0 });
        assert!(bad_failover.validate().is_err());
    }

    #[test]
    fn display_shows_state() {
        let mut q = single_queue();
        q.admit(5, 10);
        assert!(format!("{q}").contains("15.0 jobs"));
    }
}
